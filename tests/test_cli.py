"""The command-line interface."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture
def dot_file(tmp_path):
    path = tmp_path / "dot.dsl"
    path.write_text("for i in n:\n    s = s + x[i] * y[i]\n")
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestMachines:
    def test_lists_all_machines(self):
        code, text = _run(["machines"])
        assert code == 0
        for name in ("cydra5", "single_alu", "two_alu", "superscalar"):
            assert name in text


class TestMII:
    def test_reports_all_three_bounds(self, dot_file):
        code, text = _run(["mii", dot_file])
        assert code == 0
        assert "ResMII" in text and "RecMII" in text and "MII" in text

    def test_machine_selection_changes_bounds(self, dot_file):
        _, cydra_text = _run(["mii", dot_file, "--machine", "cydra5"])
        _, alu_text = _run(["mii", dot_file, "--machine", "single_alu"])
        assert cydra_text != alu_text

    def test_unroll_recommendation_flag(self, dot_file):
        code, text = _run(["mii", dot_file, "--recommend-unroll", "3"])
        assert code == 0
        assert "recommend" in text


class TestSchedule:
    def test_reports_ii_and_sl(self, dot_file):
        code, text = _run(["schedule", dot_file])
        assert code == 0
        assert "II=" in text and "SL=" in text

    def test_kernel_flag_prints_layout(self, dot_file):
        _, text = _run(["schedule", dot_file, "--kernel"])
        assert "kernel" in text

    def test_verify_flag_simulates(self, dot_file):
        code, text = _run(["schedule", dot_file, "--verify", "25"])
        assert code == 0
        assert "OK" in text

    def test_json_output_parses(self, dot_file):
        code, text = _run(["schedule", dot_file, "--json"])
        assert code == 0
        data = json.loads(text)
        assert data["format"] == "repro.schedule.v1"

    def test_budget_ratio_accepted(self, dot_file):
        code, _ = _run(["schedule", dot_file, "--budget-ratio", "2"])
        assert code == 0

    def test_conservative_delays_flag(self, dot_file):
        code, _ = _run(["schedule", dot_file, "--conservative-delays"])
        assert code == 0


class TestCorpus:
    def test_small_corpus_report(self):
        code, text = _run(["corpus", "--loops", "50"])
        assert code == 0
        assert "II = MII" in text
        assert "loops on" in text
        assert "engine:" in text

    def test_parallel_jobs_flag(self):
        code, text = _run(["corpus", "--loops", "70", "--jobs", "2"])
        assert code == 0
        assert "jobs=2" in text

    def test_cache_and_timings_flags(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold_json = str(tmp_path / "cold.json")
        warm_json = str(tmp_path / "warm.json")
        argv = ["corpus", "--loops", "70", "--cache-dir", cache]
        code, text = _run(argv + ["--timings", cold_json])
        assert code == 0
        assert "0 cache hits" in text
        assert "scheduling" in text  # the phase summary table
        code, text = _run(argv + ["--timings", warm_json])
        assert code == 0
        assert "0 misses" in text
        cold = json.load(open(cold_json))
        warm = json.load(open(warm_json))
        assert cold["format"] == "repro.engine-timing.v1"
        assert warm["cache"]["hits"] == warm["n_loops"]
        assert warm["phase_seconds"].get("scheduling", 0.0) == 0.0

    def test_no_cache_flag(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, text = _run(
            ["corpus", "--loops", "70", "--cache-dir", cache, "--no-cache"]
        )
        assert code == 0
        assert "cache off" in text

    def test_verify_flag(self):
        code, text = _run(["corpus", "--loops", "66", "--verify", "8"])
        assert code == 0
        assert "0 failures" in text


class TestCheck:
    def test_single_file_check_passes(self, dot_file):
        code, text = _run(["check", dot_file])
        assert code == 0
        assert "II=" in text and "no findings" in text

    def test_single_file_json_document(self, dot_file, tmp_path):
        out_path = tmp_path / "check.json"
        code, _ = _run(["check", dot_file, "--json", str(out_path)])
        assert code == 0
        data = json.load(open(out_path))
        assert data["format"] == "repro.check.v1"
        assert data["counts"]["error"] == 0

    def test_corpus_check_passes(self, tmp_path):
        out_path = tmp_path / "check.json"
        code, text = _run(
            ["check", "--loops", "66", "--jobs", "2",
             "--json", str(out_path)]
        )
        assert code == 0
        assert "0 rejection(s)" in text
        data = json.load(open(out_path))
        assert data["format"] == "repro.check.v1"
        assert data["checked"] == 66

    def test_corpus_flag_strict_mode(self):
        code, text = _run(["corpus", "--loops", "66", "--check"])
        assert code == 0
        assert "0 failures" in text

    def test_unusable_cache_dir_rejected_cleanly(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("")
        code, _ = _run(
            ["check", "--loops", "66", "--cache-dir", str(not_a_dir)]
        )
        assert code == 2
        assert "cache directory unusable" in capsys.readouterr().err


class TestLint:
    def test_single_machine_clean(self):
        code, text = _run(["lint", "--machine", "cydra5"])
        assert code == 0
        assert "no findings" in text

    def test_all_machines_clean(self):
        code, text = _run(["lint", "--all-machines"])
        assert code == 0

    def test_file_lints_graph_and_mindist(self, dot_file):
        code, text = _run(["lint", dot_file])
        assert code == 0
        assert "no findings" in text

    def test_json_document(self, tmp_path):
        out_path = tmp_path / "lint.json"
        code, _ = _run(["lint", "--all-machines", "--json", str(out_path)])
        assert code == 0
        data = json.load(open(out_path))
        assert data["format"] == "repro.check.v1"
        assert "cydra5" in data["run"]["machines"]


class TestObservability:
    def test_traced_corpus_run_covers_every_phase(self, tmp_path):
        """Acceptance: one traced run emits schema-valid repro.obs.v1
        records whose spans cover all five pipeline phases."""
        from repro.obs.check import main as check_main
        from repro.obs.schema import validate_jsonl

        path = tmp_path / "obs.jsonl"
        code, text = _run(
            ["corpus", "--loops", "66", "--jobs", "2", "--verify", "4",
             "--obs-out", str(path)]
        )
        assert code == 0
        assert "observability summary" in text
        assert validate_jsonl(path.read_text()) == []
        assert check_main([str(path)]) == 0  # the CI gate, same validator
        spans = {
            json.loads(line)["name"]
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        }
        for phase in ("frontend", "mindist", "scheduling", "codegen",
                      "simulation"):
            assert phase in spans, f"{phase} missing from {sorted(spans)}"
        assert {"corpus.evaluate", "corpus.fanout", "loop", "mii",
                "schedule.attempt"} <= spans

    def test_chrome_format_loads_as_trace_events(self, tmp_path):
        path = tmp_path / "trace.json"
        code, _ = _run(
            ["corpus", "--loops", "66", "--obs-out", str(path),
             "--obs-format", "chrome"]
        )
        assert code == 0
        data = json.load(open(path))
        assert data["traceEvents"]
        assert data["otherData"]["metrics"]["counters"]

    def test_schedule_command_traces_too(self, dot_file, tmp_path):
        from repro.obs.schema import validate_jsonl

        path = tmp_path / "sched.jsonl"
        code, text = _run(["schedule", dot_file, "--verify", "8",
                           "--obs-out", str(path)])
        assert code == 0
        assert "obs export" in text
        assert validate_jsonl(path.read_text()) == []
        spans = {
            json.loads(line)["name"]
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        }
        assert {"frontend", "mii", "schedule", "simulation"} <= spans

    def test_json_stdout_stays_pure_with_obs_out(self, dot_file, tmp_path):
        path = tmp_path / "sched.jsonl"
        code, text = _run(
            ["schedule", dot_file, "--json", "--obs-out", str(path)]
        )
        assert code == 0
        assert json.loads(text)["format"] == "repro.schedule.v1"
        assert path.exists()

    def test_unknown_format_rejected_cleanly(self, dot_file, tmp_path, capsys):
        code, _ = _run(
            ["schedule", dot_file, "--obs-out", str(tmp_path / "o"),
             "--obs-format", "protobuf"]
        )
        assert code == 2
        assert "unknown obs format" in capsys.readouterr().err

    def test_unwritable_obs_out_rejected_cleanly(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("")
        code, _ = _run(
            ["corpus", "--loops", "66",
             "--obs-out", str(not_a_dir / "obs.jsonl")]
        )
        assert code == 2
        assert "obs output path unusable" in capsys.readouterr().err


class TestErrors:
    def test_negative_jobs_rejected_cleanly(self, capsys):
        code, _ = _run(["corpus", "--loops", "66", "--jobs", "-3"])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_unusable_cache_dir_rejected_cleanly(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("")
        code, _ = _run(
            ["corpus", "--loops", "66", "--cache-dir", str(not_a_dir)]
        )
        assert code == 2
        assert "cache directory unusable" in capsys.readouterr().err

    def test_unknown_machine_rejected(self, dot_file):
        with pytest.raises(SystemExit):
            _run(["schedule", dot_file, "--machine", "pdp11"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            _run([])


class TestVisualizationFlags:
    def test_gantt_flag(self, dot_file):
        code, text = _run(["schedule", dot_file, "--gantt"])
        assert code == 0
        assert "slot" in text

    def test_diagram_flag(self, dot_file):
        code, text = _run(["schedule", dot_file, "--diagram"])
        assert code == 0
        assert "iter" in text

    def test_trace_flag(self, dot_file):
        code, text = _run(["schedule", dot_file, "--trace"])
        assert code == 0
        assert "place" in text


class TestObservatory:
    """`corpus --obs-db` recording plus the `repro obs` family on top."""

    @pytest.fixture(scope="class")
    def db(self, tmp_path_factory):
        """A store holding two recordings of the same 40-loop corpus."""
        path = str(tmp_path_factory.mktemp("obs") / "obs.db")
        for _ in range(2):
            code, text = _run(
                ["corpus", "--loops", "40", "--no-cache", "--obs-db", path]
            )
            assert code == 0
            assert "recorded in" in text
        return path

    def _run_ids(self, db):
        code, text = _run(["obs", "runs", "--db", db, "--json"])
        assert code == 0
        return [run["run_id"] for run in json.loads(text)]

    def test_corpus_records_two_distinct_runs(self, db):
        run_ids = self._run_ids(db)
        assert len(run_ids) == 2 and run_ids[0] != run_ids[1]

    def test_runs_table_mode(self, db):
        code, text = _run(["obs", "runs", "--db", db])
        assert code == 0
        assert "2 run(s)" in text
        assert "repro.obs.v2" in text

    def test_report_renders_percentiles(self, db):
        code, text = _run(["obs", "report", "--db", db])
        assert code == 0
        assert "p50" in text and "p95" in text and "p99" in text
        assert "scheduling" in text

    def test_report_json_mode(self, db):
        code, text = _run(["obs", "report", "--db", db, "--json"])
        assert code == 0
        doc = json.loads(text)
        assert doc["phases"]
        assert doc["baseline_breaches"] == []

    def test_baseline_round_trip_through_the_cli(self, db, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        code, text = _run(
            ["obs", "report", "--db", db, "--make-baseline", baseline]
        )
        assert code == 0 and "baseline written" in text
        code, text = _run(
            ["obs", "report", "--db", db, "--baseline", baseline]
        )
        assert code == 0 and "within budget" in text
        # A crushed budget must breach and exit 1.
        doc = json.load(open(baseline))
        doc["per_loop_self_seconds"] = {
            k: 0.0 for k in doc["per_loop_self_seconds"]
        }
        with open(baseline, "w") as fh:
            json.dump(doc, fh)
        code, text = _run(
            ["obs", "report", "--db", db, "--baseline", baseline]
        )
        assert code == 1 and "BASELINE BREACH" in text

    def test_diff_of_twin_runs_is_clean(self, db):
        first, second = self._run_ids(db)
        code, text = _run(["obs", "diff", "--db", db, first, second])
        assert code == 0
        assert "CLEAN" in text

    def test_diff_defaults_other_to_latest(self, db):
        first, _ = self._run_ids(db)
        code, _text = _run(["obs", "diff", "--db", db, first])
        assert code == 0

    def test_top_ranks_loops(self, db):
        code, text = _run(["obs", "top", "--db", db, "--by", "wall"])
        assert code == 0
        assert "wall s" in text
        code, text = _run(
            ["obs", "top", "--db", db, "--by", "slack", "--json"]
        )
        assert code == 0
        assert isinstance(json.loads(text), list)

    def test_flame_writes_folded_stacks(self, db, tmp_path):
        out_path = str(tmp_path / "flame.folded")
        code, text = _run(
            ["obs", "flame", "--db", db, "-o", out_path]
        )
        assert code == 0 and "stacks" in text
        for line in open(out_path).read().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) > 0

    def test_ingest_command_accepts_timing_reports(self, db, tmp_path):
        timings = str(tmp_path / "timings.json")
        code, _ = _run(
            ["corpus", "--loops", "40", "--no-cache", "--timings", timings]
        )
        assert code == 0
        code, text = _run(["obs", "ingest", "--db", db, timings])
        assert code == 0
        assert "timing" in text

    def test_unknown_run_reference_exits_2(self, db, capsys):
        code, _ = _run(["obs", "report", "--db", db, "zzzzzz"])
        assert code == 2
        assert "no run matches" in capsys.readouterr().err

    def test_unusable_db_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "garbage.db"
        bogus.write_text("this is not a sqlite database, not even close")
        code, _ = _run(["obs", "runs", "--db", str(bogus)])
        assert code == 2
        assert "not a usable store" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_records_samples_and_writes_folded(self, tmp_path):
        db = str(tmp_path / "obs.db")
        folded = str(tmp_path / "prof.folded")
        code, text = _run(
            ["corpus", "--loops", "60", "--no-cache", "--profile",
             "--profile-out", folded, "--obs-db", db]
        )
        assert code == 0
        if "no profiler samples" not in text:
            assert "profiler samples" in text
            for line in open(folded).read().splitlines():
                stack, weight = line.rsplit(" ", 1)
                assert stack and int(weight) > 0
            code, flame_text = _run(
                ["obs", "flame", "--db", db, "--source", "profile"]
            )
            assert code == 0 and flame_text.strip()

    def test_profile_off_keeps_output_identical_shape(self):
        code, text = _run(["corpus", "--loops", "40", "--no-cache"])
        assert code == 0
        assert "profiler" not in text
