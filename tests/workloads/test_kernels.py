"""Every hand-written kernel: compiles, schedules, and matches the oracle."""

import pytest

from repro.core import modulo_schedule, validate_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, two_alu_machine
from repro.simulator import check_equivalence
from repro.workloads import KERNELS, kernel_names, kernel_source


class TestRegistry:
    def test_registry_is_populated(self):
        assert len(KERNELS) >= 40

    def test_names_sorted_and_unique(self):
        names = kernel_names()
        assert names == sorted(set(names))

    def test_categories_are_known(self):
        allowed = {
            "lfk", "blas", "stencil", "recurrence", "predicated",
            "mixed", "irregular",
        }
        assert {spec.category for spec in KERNELS.values()} <= allowed

    def test_kernel_source_lookup(self):
        assert "for i in n" in kernel_source("saxpy")

    def test_each_category_represented(self):
        categories = {spec.category for spec in KERNELS.values()}
        assert len(categories) == 7


@pytest.mark.parametrize("name", sorted(KERNELS))
class TestEndToEnd:
    def test_verified_on_cydra5(self, name):
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        assert result.ii >= result.mii_result.mii
        report = check_equivalence(lowered, result.schedule, n=19, seed=11)
        assert report.ok, report.describe()


@pytest.mark.parametrize(
    "name", ["sdot", "saxpy", "lfk5_tridiag", "clip", "select_chain"]
)
def test_verified_on_two_alu(name):
    machine = two_alu_machine()
    lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    report = check_equivalence(lowered, result.schedule, n=31, seed=4)
    assert report.ok, report.describe()
