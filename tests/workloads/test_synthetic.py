"""The calibrated synthetic generator: shapes, determinism, validity."""

import statistics

import pytest

from repro.core import compute_mii, modulo_schedule, validate_schedule
from repro.machine import cydra5
from repro.workloads import SyntheticConfig, synthetic_graph


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def sample(machine):
    return [synthetic_graph(machine, seed=s) for s in range(150)]


class TestDeterminism:
    def test_same_seed_same_graph(self, machine):
        first = synthetic_graph(machine, seed=42)
        second = synthetic_graph(machine, seed=42)
        assert first.describe() == second.describe()

    def test_different_seeds_differ(self, machine):
        first = synthetic_graph(machine, seed=1)
        second = synthetic_graph(machine, seed=2)
        assert first.describe() != second.describe()


class TestCalibration:
    def test_op_counts_within_paper_range(self, sample):
        counts = [g.n_real_ops for g in sample]
        config = SyntheticConfig()
        assert min(counts) >= config.min_ops - 1
        assert max(counts) <= config.max_ops

    def test_skewed_distribution(self, sample):
        """Median below mean, as in Table 3."""
        counts = [g.n_real_ops for g in sample]
        assert statistics.median(counts) < statistics.fmean(counts)

    def test_most_loops_have_no_nontrivial_scc(self, machine, sample):
        vectorizable = 0
        for graph in sample:
            result = compute_mii(graph, machine, exact=False)
            if result.n_nontrivial_sccs == 0:
                vectorizable += 1
        # Paper: 77%.  Allow a generous band.
        assert 0.6 <= vectorizable / len(sample) <= 0.95

    def test_every_loop_has_a_brtop_and_address_recurrence(self, sample):
        for graph in sample[:30]:
            opcodes = [op.opcode for op in graph.real_operations()]
            assert "brtop" in opcodes
            assert "aadd" in opcodes


class TestSchedulability:
    def test_all_graphs_schedule_validly(self, machine, sample):
        for graph in sample[:60]:
            result = modulo_schedule(graph, machine, budget_ratio=6.0)
            assert (
                validate_schedule(graph, machine, result.schedule) == []
            ), graph.name

    def test_no_zero_distance_circuits(self, machine, sample):
        for graph in sample[:60]:
            compute_mii(graph, machine)  # raises on a 0-distance circuit
