"""Corpus assembly and the synthetic profile."""

import pytest

from repro.machine import cydra5
from repro.workloads import build_corpus
from repro.workloads.corpus import PAPER_CORPUS_SIZE, paper_sized_corpus
from repro.workloads.kernels import KERNELS


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    return build_corpus(machine, n_synthetic=60, seed=3)


class TestAssembly:
    def test_contains_all_kernels_plus_synthetic(self, corpus):
        assert len(corpus) == len(KERNELS) + 60

    def test_kernels_carry_lowered_metadata(self, corpus):
        for loop in corpus:
            if loop.category != "synthetic":
                assert loop.lowered is not None
            else:
                assert loop.lowered is None

    def test_kernels_marked_executed(self, corpus):
        assert all(
            loop.executed for loop in corpus if loop.category != "synthetic"
        )

    def test_graphs_are_sealed(self, corpus):
        assert all(loop.graph.sealed for loop in corpus)

    def test_deterministic(self, machine):
        first = build_corpus(machine, n_synthetic=10, seed=5)
        second = build_corpus(machine, n_synthetic=10, seed=5)
        assert [l.name for l in first] == [l.name for l in second]
        assert [l.loop_freq for l in first] == [l.loop_freq for l in second]

    def test_synthetic_only_corpus(self, machine):
        corpus = build_corpus(machine, n_synthetic=5, include_kernels=False)
        assert len(corpus) == 5


class TestProfile:
    def test_frequencies_positive_and_consistent(self, corpus):
        for loop in corpus:
            assert loop.entry_freq >= 1
            assert loop.loop_freq >= loop.entry_freq
            assert loop.trip_count >= 1

    def test_some_loops_not_executed(self, machine):
        corpus = build_corpus(machine, n_synthetic=200, seed=0)
        executed = sum(1 for l in corpus if l.executed)
        assert 0 < executed < len(corpus)

    def test_paper_sized_corpus_matches_paper(self, machine):
        corpus = paper_sized_corpus(machine)
        assert len(corpus) == PAPER_CORPUS_SIZE
