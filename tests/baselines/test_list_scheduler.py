"""Acyclic list scheduling: correctness and the SL lower-bound role."""

import pytest

from repro.baselines import list_schedule, list_schedule_length
from repro.core import Counters, modulo_schedule
from repro.ir import DependenceGraph, DependenceKind, GraphError
from repro.machine import cydra5, single_alu_machine, two_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestCorrectness:
    def test_chain_length_is_sum_of_delays(self, alu):
        graph = chain_graph(alu, ["fmul", "fmul", "fadd"])  # 3+3+1
        assert list_schedule_length(graph, alu) == 7

    def test_all_distance_zero_edges_honored(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul", "fadd", "fadd"])
        schedule = list_schedule(graph, alu)
        for edge in graph.edges:
            if edge.distance == 0:
                gap = schedule.times[edge.succ] - schedule.times[edge.pred]
                assert gap >= edge.delay

    def test_resources_never_oversubscribed(self, alu):
        graph = DependenceGraph(alu)
        for _ in range(5):
            graph.add_operation("fadd")
        graph.seal()
        schedule = list_schedule(graph, alu)
        times = [schedule.times[i] for i in range(1, 6)]
        assert len(set(times)) == 5  # one ALU: all distinct cycles

    def test_two_alus_pack_two_per_cycle(self):
        machine = two_alu_machine()
        graph = DependenceGraph(machine)
        for _ in range(4):
            graph.add_operation("fadd")
        graph.seal()
        schedule = list_schedule(graph, machine)
        issue_times = sorted(schedule.times[i] for i in range(1, 5))
        assert issue_times == [0, 0, 1, 1]
        # SL covers the last op's unit latency.
        assert list_schedule_length(graph, machine) == 2

    def test_interiteration_edges_ignored(self, alu):
        graph = reduction_graph(alu)
        # The distance-1 self-loop must not serialize the single iteration.
        schedule = list_schedule(graph, alu)
        assert schedule.times[2] >= schedule.times[1] + 2  # load latency


class TestRole:
    def test_list_sl_lower_bounds_modulo_sl(self, alu):
        for opcodes in (["fadd"] * 4, ["fmul", "fadd", "fmul"], ["load"] * 3):
            graph = chain_graph(alu, opcodes)
            list_sl = list_schedule_length(graph, alu)
            result = modulo_schedule(graph, alu)
            assert result.schedule_length >= list_sl

    def test_counters_record_each_op_once(self, alu):
        graph = chain_graph(alu, ["fadd"] * 5)
        counters = Counters()
        list_schedule(graph, alu, counters)
        assert counters.ops_scheduled == graph.n_ops

    def test_unsealed_rejected(self, alu):
        graph = DependenceGraph(alu)
        graph.add_operation("fadd")
        with pytest.raises(GraphError):
            list_schedule(graph, alu)

    def test_zero_distance_cycle_rejected(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(b, a, DependenceKind.FLOW, delay=0)
        graph.seal()
        with pytest.raises(GraphError):
            list_schedule(graph, alu)

    def test_works_on_cydra_complex_tables(self):
        machine = cydra5()
        graph = chain_graph(machine, ["load", "fmul", "fadd", "store"])
        schedule = list_schedule(graph, machine)
        assert schedule.times[graph.stop] >= 20 + 5 + 4 + 1
