"""Unroll-before-scheduling: replication, barriers, and the trade-off."""

import pytest

from repro.baselines import unroll_and_schedule, unroll_graph
from repro.core import modulo_schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine, two_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestUnrollGraph:
    def test_replicates_real_operations(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul"])
        unrolled = unroll_graph(graph, 3)
        assert unrolled.n_real_ops == 6

    def test_factor_one_is_copy(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul"])
        unrolled = unroll_graph(graph, 1)
        assert unrolled.n_real_ops == graph.n_real_ops

    def test_intra_edges_replicated_per_copy(self, alu):
        graph = chain_graph(alu, ["fadd", "fadd"])
        unrolled = unroll_graph(graph, 2)
        real_edges = [
            e
            for e in unrolled.edges
            if not unrolled.operation(e.pred).is_pseudo
            and not unrolled.operation(e.succ).is_pseudo
        ]
        assert len(real_edges) == 2

    def test_cross_iteration_edge_becomes_intra_body(self, alu):
        graph = reduction_graph(alu)  # acc -> acc at distance 1
        unrolled = unroll_graph(graph, 3)
        cross = [
            e
            for e in unrolled.edges
            if e.distance == 0
            and not unrolled.operation(e.pred).is_pseudo
            and e.pred != e.succ
            and unrolled.operation(e.pred).opcode == "fadd"
            and unrolled.operation(e.succ).opcode == "fadd"
        ]
        # acc(copy0)->acc(copy1), acc(copy1)->acc(copy2).
        assert len(cross) == 2

    def test_back_edge_dropped_at_barrier(self, alu):
        graph = reduction_graph(alu)
        unrolled = unroll_graph(graph, 2)
        # No edges with distance > 0 survive unrolling.
        assert all(e.distance == 0 for e in unrolled.edges)

    def test_rejects_bad_factor(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            unroll_graph(graph, 0)

    def test_registers_renamed_per_copy(self, alu):
        graph = chain_graph(alu, ["fadd"])
        unrolled = unroll_graph(graph, 2)
        dests = [op.dest for op in unrolled.real_operations()]
        assert len(set(dests)) == 2


class TestTradeoff:
    def test_effective_ii_improves_with_unrolling(self, alu):
        graph = reduction_graph(alu)
        one = unroll_and_schedule(graph, alu, 1)
        four = unroll_and_schedule(graph, alu, 4)
        assert four.effective_ii <= one.effective_ii

    def test_modulo_beats_or_matches_unrolled_throughput(self):
        machine = two_alu_machine()
        graph = chain_graph(machine, ["load", "fmul", "fadd", "store"])
        modulo = modulo_schedule(graph, machine)
        unrolled = unroll_and_schedule(graph, machine, 4)
        assert modulo.ii <= unrolled.effective_ii + 1e-9

    def test_code_growth_equals_factor(self, alu):
        graph = chain_graph(alu, ["fadd"])
        result = unroll_and_schedule(graph, alu, 5)
        assert result.code_growth == 5.0

    def test_barrier_limits_overlap(self, alu):
        """With the back-edge barrier, a recurrence-free chain still pays
        the full critical path once per unrolled body."""
        graph = chain_graph(alu, ["fmul", "fmul"])  # critical path 6
        result = unroll_and_schedule(graph, alu, 2)
        assert result.schedule_length >= 6
