"""The sequential oracle: direct AST interpretation."""

import math

import pytest

from repro.loopir import parse_loop
from repro.simulator import ArrayStore, LoopState, run_reference


def _state(arrays=None, scalars=None, n=8):
    state = LoopState(scalars=dict(scalars or {}))
    for name, values in (arrays or {}).items():
        store = ArrayStore(n, halo=4)
        store.fill_from(values)
        state.arrays[name] = store
    return state


class TestArithmetic:
    def test_saxpy(self):
        loop = parse_loop("for i in n:\n    y[i] = y[i] + a * x[i]\n")
        state = _state(
            arrays={"x": [1.0, 2.0, 3.0], "y": [10.0, 20.0, 30.0]},
            scalars={"a": 2.0},
            n=3,
        )
        run_reference(loop, state, 3)
        assert state.arrays["y"].body() == (12.0, 24.0, 36.0)

    def test_reduction(self):
        loop = parse_loop("for i in n:\n    s = s + x[i]\n")
        state = _state(arrays={"x": [1.0, 2.0, 3.0]}, scalars={"s": 0.5}, n=3)
        run_reference(loop, state, 3)
        assert state.scalars["s"] == 6.5

    def test_ivar_value(self):
        loop = parse_loop("for i in n:\n    x[i] = i\n")
        state = _state(arrays={"x": [0.0] * 4}, n=4)
        run_reference(loop, state, 4)
        assert state.arrays["x"].body() == (0.0, 1.0, 2.0, 3.0)

    def test_offsets(self):
        loop = parse_loop("for i in n:\n    y[i] = x[i+1] - x[i-1]\n")
        state = _state(arrays={"x": [1.0, 4.0, 9.0], "y": [0.0] * 3}, n=3)
        state.arrays["x"][-1] = 0.0
        state.arrays["x"][3] = 16.0
        run_reference(loop, state, 3)
        assert state.arrays["y"].body() == (4.0, 8.0, 12.0)

    def test_intrinsics(self):
        loop = parse_loop(
            "for i in n:\n    y[i] = max(min(x[i], 1.0), -1.0) + sqrt(abs(x[i]))\n"
        )
        state = _state(arrays={"x": [-4.0, 0.25], "y": [0.0, 0.0]}, n=2)
        run_reference(loop, state, 2)
        assert state.arrays["y"].body() == (1.0, 0.75)

    def test_ieee_division_semantics(self):
        loop = parse_loop("for i in n:\n    y[i] = 1.0 / x[i]\n")
        state = _state(arrays={"x": [0.0, 2.0], "y": [0.0, 0.0]}, n=2)
        run_reference(loop, state, 2)
        assert state.arrays["y"][0] == math.inf
        assert state.arrays["y"][1] == 0.5

    def test_ieee_sqrt_semantics(self):
        loop = parse_loop("for i in n:\n    y[i] = sqrt(x[i])\n")
        state = _state(arrays={"x": [-1.0], "y": [0.0]}, n=1)
        run_reference(loop, state, 1)
        assert math.isnan(state.arrays["y"][0])


class TestControlFlow:
    def test_if_else(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if x[i] > 0.0:\n"
            "        s = s + x[i]\n"
            "    else:\n"
            "        t = t - x[i]\n"
        )
        state = _state(
            arrays={"x": [1.0, -2.0, 3.0]}, scalars={"s": 0.0, "t": 0.0}, n=3
        )
        run_reference(loop, state, 3)
        assert state.scalars["s"] == 4.0
        assert state.scalars["t"] == 2.0

    def test_boolean_conditions(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if x[i] > 0.0 and x[i] < 2.0 or x[i] == 5.0:\n"
            "        c = c + 1.0\n"
        )
        state = _state(
            arrays={"x": [1.0, 3.0, 5.0, -1.0]}, scalars={"c": 0.0}, n=4
        )
        run_reference(loop, state, 4)
        assert state.scalars["c"] == 2.0

    def test_zero_iterations_is_identity(self):
        loop = parse_loop("for i in n:\n    s = s + 1.0\n")
        state = _state(scalars={"s": 3.0})
        run_reference(loop, state, 0)
        assert state.scalars["s"] == 3.0

    def test_missing_scalar_reports_name(self):
        loop = parse_loop("for i in n:\n    s = s + q\n")
        state = _state(scalars={"s": 0.0})
        with pytest.raises(KeyError) as excinfo:
            run_reference(loop, state, 1)
        assert "q" in str(excinfo.value)
