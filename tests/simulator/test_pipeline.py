"""The pipelined executor and the end-to-end equivalence check."""

import pytest

from repro.baselines import list_schedule
from repro.core import Schedule, modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine, two_alu_machine
from repro.simulator import (
    SimulationError,
    check_equivalence,
    make_initial_state,
    run_pipelined,
    run_reference,
)

_KERNELS = {
    "saxpy": "for i in n:\n    y[i] = y[i] + a * x[i]\n",
    "dot": "for i in n:\n    s = s + x[i] * y[i]\n",
    "first_sum": "for i in n:\n    x[i] = x[i-1] + y[i]\n",
    "branchy": (
        "for i in n:\n"
        "    t = a[i] - b[i]\n"
        "    if t > 0.0:\n"
        "        s = s + t\n"
        "    else:\n"
        "        s = s - t\n"
    ),
    "cond_store": (
        "for i in n:\n"
        "    if a[i] > 0.5:\n"
        "        b[i] = a[i] * 2.0\n"
    ),
    "shifted": "for i in n:\n    a[i+2] = a[i] * 0.5 + b[i]\n",
}


def _compiled(name, machine):
    return compile_loop_full(_KERNELS[name], machine, name=name)


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(_KERNELS))
    @pytest.mark.parametrize(
        "machine_factory", [single_alu_machine, two_alu_machine, cydra5]
    )
    def test_modulo_schedule_matches_reference(self, name, machine_factory):
        machine = machine_factory()
        lowered = _compiled(name, machine)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = check_equivalence(lowered, result.schedule, n=23, seed=5)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("name", sorted(_KERNELS))
    def test_list_schedule_matches_reference(self, name):
        """Sanity for the simulator itself: a non-overlapped schedule."""
        machine = single_alu_machine()
        lowered = _compiled(name, machine)
        schedule = list_schedule(lowered.graph, machine)
        report = check_equivalence(lowered, schedule, n=17, seed=2)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7])
    def test_small_trip_counts(self, n):
        machine = single_alu_machine()
        lowered = _compiled("dot", machine)
        result = modulo_schedule(lowered.graph, machine)
        report = check_equivalence(lowered, result.schedule, n=n, seed=0)
        assert report.ok, report.describe()

    def test_report_describe_mentions_loop(self):
        machine = single_alu_machine()
        lowered = _compiled("saxpy", machine)
        result = modulo_schedule(lowered.graph, machine)
        report = check_equivalence(lowered, result.schedule, n=5)
        assert "saxpy" in report.describe()
        assert "OK" in report.describe()


class TestViolationDetection:
    """A corrupted schedule must be *caught*, not silently accepted."""

    def _broken_times(self, lowered, schedule):
        """Pull a flow consumer below its producer's completion."""
        graph = lowered.graph
        times = dict(schedule.times)
        for edge in graph.edges:
            pred = graph.operation(edge.pred)
            succ = graph.operation(edge.succ)
            if pred.is_pseudo or succ.is_pseudo or edge.distance != 0:
                continue
            if edge.delay > 1:
                times[edge.succ] = times[edge.pred]
                return times
        raise AssertionError("no suitable edge to corrupt")

    def test_flow_violation_raises_or_mismatches(self):
        machine = single_alu_machine()
        lowered = _compiled("saxpy", machine)
        result = modulo_schedule(lowered.graph, machine)
        times = self._broken_times(lowered, result.schedule)
        broken = Schedule(
            lowered.graph,
            result.ii,
            times,
            dict(result.schedule.alternatives),
        )
        state = make_initial_state(lowered, 10, seed=0)
        with pytest.raises(SimulationError):
            run_pipelined(lowered, broken, state.copy(), 10)

    def test_memory_distance_violation_changes_answer(self):
        """Scheduling a dependent load before its store's commit must
        produce a different final state (check_ready off so the run
        completes)."""
        machine = single_alu_machine()
        lowered = _compiled("first_sum", machine)
        result = modulo_schedule(lowered.graph, machine)
        graph = lowered.graph
        times = dict(result.schedule.times)
        store = next(
            op.index
            for op in graph.real_operations()
            if op.opcode == "store"
        )
        load = next(
            op.index
            for op in graph.real_operations()
            if op.opcode == "load" and op.attrs.get("array") == "x"
        )
        # Shift every real operation up by one II, then drop the load back
        # to the store's *original* time: iteration k's load now samples
        # strictly before iteration k-1's store commits.  (Also violates
        # scalar flow; disable the readiness check to observe the
        # memory-level corruption.)
        for op in list(times):
            if op != graph.START:
                times[op] += result.ii
        times[load] = times[store] - result.ii
        broken = Schedule(
            graph, result.ii, times, dict(result.schedule.alternatives)
        )
        state = make_initial_state(lowered, 12, seed=3)
        reference = run_reference(lowered.loop, state.copy(), 12)
        pipelined = run_pipelined(
            lowered, broken, state.copy(), 12, check_ready=False
        )
        assert reference.differences(pipelined)

    def test_negative_iteration_count_rejected(self):
        machine = single_alu_machine()
        lowered = _compiled("saxpy", machine)
        result = modulo_schedule(lowered.graph, machine)
        with pytest.raises(ValueError):
            run_pipelined(
                lowered,
                result.schedule,
                make_initial_state(lowered, 4),
                -1,
            )
