"""Loop state: halos, copies, diffing, initial-state generation."""

import math

import pytest

from repro.loopir import compile_loop_full
from repro.machine import single_alu_machine
from repro.simulator import ArrayStore, LoopState, make_initial_state
from repro.simulator.state import floats_equal


class TestArrayStore:
    def test_halo_indices_valid(self):
        array = ArrayStore(10, halo=3)
        array[-3] = 1.5
        array[12] = 2.5
        assert array[-3] == 1.5
        assert array[12] == 2.5

    def test_out_of_halo_rejected(self):
        array = ArrayStore(10, halo=3)
        with pytest.raises(IndexError):
            array[-4]
        with pytest.raises(IndexError):
            array[13] = 0.0

    def test_fill_from_touches_body_only(self):
        array = ArrayStore(3, halo=1, fill=9.0)
        array.fill_from([1.0, 2.0, 3.0, 4.0])
        assert array.body() == (1.0, 2.0, 3.0)
        assert array[-1] == 9.0

    def test_copy_is_independent(self):
        array = ArrayStore(4)
        array[0] = 1.0
        duplicate = array.copy()
        duplicate[0] = 2.0
        assert array[0] == 1.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ArrayStore(-1)


class TestFloatsEqual:
    def test_nan_equals_nan(self):
        assert floats_equal(math.nan, math.nan)

    def test_nan_differs_from_number(self):
        assert not floats_equal(math.nan, 0.0)

    def test_exact_equality(self):
        assert floats_equal(1.5, 1.5)
        assert not floats_equal(1.5, 1.5000001)

    def test_booleans_compare(self):
        assert floats_equal(True, True)
        assert not floats_equal(True, False)


class TestLoopState:
    def test_differences_empty_for_copies(self):
        state = LoopState(
            arrays={"a": ArrayStore(3)}, scalars={"s": 1.0}
        )
        assert state.differences(state.copy()) == []

    def test_differences_report_array_cell(self):
        left = LoopState(arrays={"a": ArrayStore(3)})
        right = left.copy()
        right.arrays["a"][1] = 5.0
        problems = left.differences(right)
        assert any("a[1]" in p for p in problems)

    def test_differences_report_scalar(self):
        left = LoopState(scalars={"s": 1.0})
        right = LoopState(scalars={"s": 2.0})
        assert any("scalar s" in p for p in left.differences(right))

    def test_differences_report_mismatched_sets(self):
        left = LoopState(scalars={"s": 1.0})
        right = LoopState(scalars={"t": 1.0})
        assert left.differences(right)


class TestMakeInitialState:
    def test_allocates_arrays_and_liveins(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(
            "for i in n:\n    s = s + q * a[i+3]\n", machine
        )
        state = make_initial_state(lowered, n=10, seed=1)
        assert "a" in state.arrays
        assert {"s", "q"} <= set(state.scalars)
        # Halo must cover the +3 offset.
        state.arrays["a"][12]

    def test_deterministic_by_seed(self):
        machine = single_alu_machine()
        lowered = compile_loop_full("for i in n:\n    b[i] = a[i]\n", machine)
        first = make_initial_state(lowered, n=5, seed=9)
        second = make_initial_state(lowered, n=5, seed=9)
        assert first.differences(second) == []

    def test_different_seeds_differ(self):
        machine = single_alu_machine()
        lowered = compile_loop_full("for i in n:\n    b[i] = a[i]\n", machine)
        first = make_initial_state(lowered, n=5, seed=1)
        second = make_initial_state(lowered, n=5, seed=2)
        assert first.differences(second)
