"""End-to-end differential harness: IMS vs the acyclic list scheduler.

For every corpus loop the iterative modulo scheduler must be at least as
good as conventional acyclic list scheduling (the list schedule *is* a
legal modulo schedule with II = SL, so IMS can never do worse), and for
every front-end kernel both schedules must compute exactly what the
sequential oracle computes — the cycle-level simulator runs the modulo
schedule and the list schedule from the same initial state and both must
match the reference, which makes them identical to each other.
"""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_corpus
from repro.analysis.engine import EvaluationEngine
from repro.baselines.list_scheduler import list_schedule
from repro.core.mii import compute_mii
from repro.core.scheduler import modulo_schedule
from repro.machine import cydra5
from repro.simulator import check_equivalence
from repro.simulator.state import make_initial_state
from repro.workloads import build_corpus

#: Iterations to simulate — comfortably more than any kernel's stage count.
SIM_ITERATIONS = 24


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    """Every DSL kernel plus a synthetic tail (one corpus, all tests)."""
    return build_corpus(machine, n_synthetic=15, seed=9)


@pytest.fixture(scope="module")
def evaluations(machine, corpus):
    evaluations = evaluate_corpus(corpus, machine)
    assert len(evaluations) == len(corpus)
    return evaluations


class TestScheduleQuality:
    def test_ims_ii_never_worse_than_list_schedule(self, evaluations):
        """II <= acyclic SL for every loop (the list schedule is a legal
        modulo schedule at II = max(1, SL), so IMS can always match it)."""
        for evaluation in evaluations:
            assert evaluation.ii <= max(1, evaluation.list_sl), (
                f"{evaluation.loop.name}: IMS II {evaluation.ii} worse than "
                f"list-schedule length {evaluation.list_sl}"
            )

    def test_ims_ii_at_least_mii(self, evaluations):
        for evaluation in evaluations:
            assert evaluation.ii >= evaluation.mii

    def test_list_schedule_really_is_the_bound(self, machine, corpus, evaluations):
        """The list_sl the runner records matches a fresh list schedule."""
        for loop, evaluation in zip(corpus[:10], evaluations[:10]):
            fresh = list_schedule(loop.graph, machine)
            assert fresh.schedule_length == evaluation.list_sl


class TestSimulatedEquivalence:
    def test_both_schedules_match_the_sequential_oracle(
        self, machine, corpus, evaluations
    ):
        """Modulo schedule and list schedule produce identical loop results.

        Both pipelined executions start from the same initial state and are
        diffed against the same sequential reference; two executions that
        each match the reference match each other.
        """
        verified = 0
        for loop, evaluation in zip(corpus, evaluations):
            if loop.lowered is None:
                continue  # synthetic graphs have no executable semantics
            state = make_initial_state(loop.lowered, SIM_ITERATIONS, seed=1)
            modulo_report = check_equivalence(
                loop.lowered,
                evaluation.result.schedule,
                n=SIM_ITERATIONS,
                state=state,
            )
            assert modulo_report.ok, (
                f"{loop.name} (modulo): {modulo_report.describe()}"
            )
            list_report = check_equivalence(
                loop.lowered,
                list_schedule(loop.graph, machine),
                n=SIM_ITERATIONS,
                state=state,
            )
            assert list_report.ok, (
                f"{loop.name} (list): {list_report.describe()}"
            )
            verified += 1
        assert verified >= 50  # all front-end kernels were exercised

    def test_engine_verify_mode_agrees(self, machine, corpus):
        """The engine's built-in verification pass finds no mismatches."""
        kernels = [loop for loop in corpus if loop.lowered is not None][:12]
        engine = EvaluationEngine(
            machine, verify_iterations=SIM_ITERATIONS
        )
        result = engine.evaluate(kernels)
        assert result.ok, [f.describe() for f in result.failures]
        simulated = result.phase_seconds().get("simulation", 0.0)
        assert simulated > 0.0


def _alternative_names(schedule):
    return {
        op: (alt.name if alt is not None else None)
        for op, alt in schedule.alternatives.items()
    }


class TestMrtImplementationParity:
    """The bitmask MRT and the dict oracle must schedule identically.

    Acceptance for the bitmask kernel: over the *full* corpus, both
    implementations reach the same II, the same schedule length, the
    same per-operation times, and pick the same opcode alternatives —
    the fast path is a pure representation change.
    """

    def test_modulo_scheduler_agrees_over_the_full_corpus(
        self, machine, corpus
    ):
        for loop in corpus:
            mii_result = compute_mii(loop.graph, machine)
            mask = modulo_schedule(
                loop.graph, machine, mii_result=mii_result, mrt_impl="mask"
            )
            oracle = modulo_schedule(
                loop.graph, machine, mii_result=mii_result, mrt_impl="dict"
            )
            context = loop.name
            assert mask.ii == oracle.ii, context
            assert (
                mask.schedule.schedule_length
                == oracle.schedule.schedule_length
            ), context
            assert mask.schedule.times == oracle.schedule.times, context
            assert _alternative_names(mask.schedule) == _alternative_names(
                oracle.schedule
            ), context

    def test_list_scheduler_agrees(self, machine, corpus):
        for loop in corpus[:20]:
            mask = list_schedule(loop.graph, machine, mrt_impl="mask")
            oracle = list_schedule(loop.graph, machine, mrt_impl="dict")
            assert mask.times == oracle.times, loop.name
            assert _alternative_names(mask) == _alternative_names(oracle), (
                loop.name
            )

    def test_environment_selects_the_oracle_end_to_end(
        self, machine, corpus, monkeypatch
    ):
        """REPRO_MRT_IMPL=dict routes a whole evaluation through the
        oracle and changes no observable result."""
        loop = corpus[0]
        defaulted = modulo_schedule(loop.graph, machine)
        monkeypatch.setenv("REPRO_MRT_IMPL", "dict")
        forced = modulo_schedule(loop.graph, machine)
        assert forced.ii == defaulted.ii
        assert forced.schedule.times == defaulted.schedule.times


#: Counter fields that deliberately differ between the MinDist
#: implementations: fw pays per-probe Floyd-Warshall passes, parametric
#: pays one closure build plus O(N²·P) envelope evaluations.
MINDIST_IMPL_COUNTERS = frozenset(
    {
        "mindist_inner",
        "mindist_invocations",
        "mindist_closure_inner",
        "mindist_parametric_evals",
    }
)


def _impl_free_snapshot(counters):
    return {
        name: value
        for name, value in counters.snapshot().items()
        if name not in MINDIST_IMPL_COUNTERS
    }


class TestMinDistImplementationParity:
    """The parametric closure and the per-II Floyd-Warshall oracle must
    drive the II search identically.

    Acceptance for the parametric kernel: over the *full* corpus, both
    implementations reach the same II, the same per-operation times, the
    same opcode alternatives, and — apart from the counters that *define*
    the implementations' work — the same counter snapshot.  MinDist is a
    pure representation change; only its cost model moves.
    """

    def test_modulo_scheduler_agrees_over_the_full_corpus(
        self, machine, corpus
    ):
        from repro.core import Counters

        for loop in corpus:
            fast_counters, oracle_counters = Counters(), Counters()
            fast = modulo_schedule(
                loop.graph,
                machine,
                counters=fast_counters,
                mindist_impl="parametric",
            )
            oracle = modulo_schedule(
                loop.graph,
                machine,
                counters=oracle_counters,
                mindist_impl="fw",
            )
            context = loop.name
            assert fast.ii == oracle.ii, context
            assert fast.schedule.times == oracle.schedule.times, context
            assert _alternative_names(fast.schedule) == _alternative_names(
                oracle.schedule
            ), context
            assert _impl_free_snapshot(fast_counters) == _impl_free_snapshot(
                oracle_counters
            ), context
            # The whole point of the closure: the oracle's N³ passes
            # vanish, replaced by closure builds plus cheap evaluations.
            assert fast_counters.mindist_invocations == 0, context
            assert oracle_counters.mindist_parametric_evals == 0, context

    def test_environment_selects_the_oracle_end_to_end(
        self, machine, corpus, monkeypatch
    ):
        """REPRO_MINDIST_IMPL=fw routes a whole evaluation through the
        scalar oracle and changes no observable result."""
        loop = corpus[0]
        defaulted = modulo_schedule(loop.graph, machine)
        monkeypatch.setenv("REPRO_MINDIST_IMPL", "fw")
        forced = modulo_schedule(loop.graph, machine)
        assert forced.ii == defaulted.ii
        assert forced.schedule.times == defaulted.schedule.times


class TestSlotImplementationParity:
    """Batched FindTimeSlot and the scalar time-major scan must place
    every operation identically — same slots, same alternatives, and the
    *same counter snapshot in full*: the batch path accounts its probes
    as if the scalar scan had run."""

    def test_modulo_scheduler_agrees_over_the_full_corpus(
        self, machine, corpus
    ):
        from repro.core import Counters

        for loop in corpus:
            batch_counters, scalar_counters = Counters(), Counters()
            batch = modulo_schedule(
                loop.graph, machine, counters=batch_counters, slot_impl="batch"
            )
            scalar = modulo_schedule(
                loop.graph,
                machine,
                counters=scalar_counters,
                slot_impl="scalar",
            )
            context = loop.name
            assert batch.ii == scalar.ii, context
            assert batch.schedule.times == scalar.schedule.times, context
            assert _alternative_names(batch.schedule) == _alternative_names(
                scalar.schedule
            ), context
            assert (
                batch_counters.snapshot() == scalar_counters.snapshot()
            ), context

    def test_environment_selects_the_scalar_scan_end_to_end(
        self, machine, corpus, monkeypatch
    ):
        loop = corpus[0]
        defaulted = modulo_schedule(loop.graph, machine)
        monkeypatch.setenv("REPRO_SLOT_IMPL", "scalar")
        forced = modulo_schedule(loop.graph, machine)
        assert forced.ii == defaulted.ii
        assert forced.schedule.times == defaulted.schedule.times


@pytest.fixture(scope="module")
def exact_results(machine, corpus):
    """Every corpus loop through the exact backend, with solver budgets
    small enough that hard instances report honestly-unproven fast
    instead of spending a minute on an exhaustive UNSAT proof."""
    from repro.backends import IIPolicy, get_backend

    backend = get_backend(
        "exact", max_time_vars=6000, max_clauses=25000, max_conflicts=20000
    )
    return [
        backend.schedule(loop.graph, machine, IIPolicy())
        for loop in corpus
    ]


class TestExactDifferential:
    """IMS vs the proving SAT backend over the whole corpus slice."""

    def test_exact_ii_never_worse_than_ims(self, evaluations, exact_results):
        for evaluation, exact in zip(evaluations, exact_results):
            assert exact.ii <= evaluation.ii, (
                f"{evaluation.loop.name}: exact II {exact.ii} worse than "
                f"IMS II {evaluation.ii}"
            )
            assert exact.ii >= evaluation.mii

    def test_exact_schedules_validate(self, machine, corpus, exact_results):
        from repro.check import check_schedule

        for loop, exact in zip(corpus, exact_results):
            diags = check_schedule(loop.graph, machine, exact.schedule)
            assert diags.ok, f"{loop.name}: {diags.render()}"

    def test_optimality_gap_report(self, evaluations, exact_results):
        """The Rau-style question: how often does the heuristic reach the
        proven-minimal II?  Every MII-matched loop is trivially proven,
        so the proven share must cover at least those loops; any recorded
        gap must be a positive integer backed by certificates."""
        proven = 0
        gaps = []
        for evaluation, exact in zip(evaluations, exact_results):
            if exact.optimal is not True:
                continue
            proven += 1
            gap = exact.optimality_gap
            assert gap is not None and gap >= 0
            if gap:
                gaps.append((evaluation.loop.name, gap))
                assert exact.certificates[exact.ii]["status"] == "sat"
        mii_matched = sum(1 for e in evaluations if e.delta_ii == 0)
        assert proven >= mii_matched
        # The report itself: IMS achieves II* on every proven loop that
        # records no gap.
        assert all(gap > 0 for _, gap in gaps)

    def test_ims_is_optimal_on_easy_kernels(self, evaluations, exact_results):
        """On MII-matched front-end kernels (the easy fixtures) the exact
        backend must confirm the heuristic: same II, proven minimal."""
        confirmed = 0
        for evaluation, exact in zip(evaluations, exact_results):
            if evaluation.loop.lowered is None or evaluation.delta_ii != 0:
                continue
            assert exact.ii == evaluation.ii, evaluation.loop.name
            assert exact.optimal is True, evaluation.loop.name
            confirmed += 1
        assert confirmed >= 50  # nearly all kernels are MII-matched

    def test_exact_results_stable_across_cache_hits(
        self, machine, corpus, tmp_path
    ):
        """Cache hits and resume replay must reproduce the exact backend's
        results bit-for-bit: same II, same proof status, same certificates."""
        kernels = [
            loop for loop in corpus
            if loop.lowered is not None and loop.name != "distance"
        ][:12]
        cache = tmp_path / "exact-cache"

        def run():
            engine = EvaluationEngine(
                machine, backend="exact", cache_dir=cache
            )
            result = engine.evaluate(kernels)
            assert result.ok, [f.describe() for f in result.failures]
            return result

        first = run()
        second = run()
        assert second.hits == len(kernels)
        for before, after in zip(first.evaluations, second.evaluations):
            assert after.backend == "exact"
            assert after.ii == before.ii
            assert after.optimal == before.optimal
            assert after.result.certificates == before.result.certificates
            assert (
                after.result.attempt_records == before.result.attempt_records
            )
