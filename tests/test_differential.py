"""End-to-end differential harness: IMS vs the acyclic list scheduler.

For every corpus loop the iterative modulo scheduler must be at least as
good as conventional acyclic list scheduling (the list schedule *is* a
legal modulo schedule with II = SL, so IMS can never do worse), and for
every front-end kernel both schedules must compute exactly what the
sequential oracle computes — the cycle-level simulator runs the modulo
schedule and the list schedule from the same initial state and both must
match the reference, which makes them identical to each other.
"""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_corpus
from repro.analysis.engine import EvaluationEngine
from repro.baselines.list_scheduler import list_schedule
from repro.core.mii import compute_mii
from repro.core.scheduler import modulo_schedule
from repro.machine import cydra5
from repro.simulator import check_equivalence
from repro.simulator.state import make_initial_state
from repro.workloads import build_corpus

#: Iterations to simulate — comfortably more than any kernel's stage count.
SIM_ITERATIONS = 24


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    """Every DSL kernel plus a synthetic tail (one corpus, all tests)."""
    return build_corpus(machine, n_synthetic=15, seed=9)


@pytest.fixture(scope="module")
def evaluations(machine, corpus):
    evaluations = evaluate_corpus(corpus, machine)
    assert len(evaluations) == len(corpus)
    return evaluations


class TestScheduleQuality:
    def test_ims_ii_never_worse_than_list_schedule(self, evaluations):
        """II <= acyclic SL for every loop (the list schedule is a legal
        modulo schedule at II = max(1, SL), so IMS can always match it)."""
        for evaluation in evaluations:
            assert evaluation.ii <= max(1, evaluation.list_sl), (
                f"{evaluation.loop.name}: IMS II {evaluation.ii} worse than "
                f"list-schedule length {evaluation.list_sl}"
            )

    def test_ims_ii_at_least_mii(self, evaluations):
        for evaluation in evaluations:
            assert evaluation.ii >= evaluation.mii

    def test_list_schedule_really_is_the_bound(self, machine, corpus, evaluations):
        """The list_sl the runner records matches a fresh list schedule."""
        for loop, evaluation in zip(corpus[:10], evaluations[:10]):
            fresh = list_schedule(loop.graph, machine)
            assert fresh.schedule_length == evaluation.list_sl


class TestSimulatedEquivalence:
    def test_both_schedules_match_the_sequential_oracle(
        self, machine, corpus, evaluations
    ):
        """Modulo schedule and list schedule produce identical loop results.

        Both pipelined executions start from the same initial state and are
        diffed against the same sequential reference; two executions that
        each match the reference match each other.
        """
        verified = 0
        for loop, evaluation in zip(corpus, evaluations):
            if loop.lowered is None:
                continue  # synthetic graphs have no executable semantics
            state = make_initial_state(loop.lowered, SIM_ITERATIONS, seed=1)
            modulo_report = check_equivalence(
                loop.lowered,
                evaluation.result.schedule,
                n=SIM_ITERATIONS,
                state=state,
            )
            assert modulo_report.ok, (
                f"{loop.name} (modulo): {modulo_report.describe()}"
            )
            list_report = check_equivalence(
                loop.lowered,
                list_schedule(loop.graph, machine),
                n=SIM_ITERATIONS,
                state=state,
            )
            assert list_report.ok, (
                f"{loop.name} (list): {list_report.describe()}"
            )
            verified += 1
        assert verified >= 50  # all front-end kernels were exercised

    def test_engine_verify_mode_agrees(self, machine, corpus):
        """The engine's built-in verification pass finds no mismatches."""
        kernels = [loop for loop in corpus if loop.lowered is not None][:12]
        engine = EvaluationEngine(
            machine, verify_iterations=SIM_ITERATIONS
        )
        result = engine.evaluate(kernels)
        assert result.ok, [f.describe() for f in result.failures]
        simulated = result.phase_seconds().get("simulation", 0.0)
        assert simulated > 0.0


def _alternative_names(schedule):
    return {
        op: (alt.name if alt is not None else None)
        for op, alt in schedule.alternatives.items()
    }


class TestMrtImplementationParity:
    """The bitmask MRT and the dict oracle must schedule identically.

    Acceptance for the bitmask kernel: over the *full* corpus, both
    implementations reach the same II, the same schedule length, the
    same per-operation times, and pick the same opcode alternatives —
    the fast path is a pure representation change.
    """

    def test_modulo_scheduler_agrees_over_the_full_corpus(
        self, machine, corpus
    ):
        for loop in corpus:
            mii_result = compute_mii(loop.graph, machine)
            mask = modulo_schedule(
                loop.graph, machine, mii_result=mii_result, mrt_impl="mask"
            )
            oracle = modulo_schedule(
                loop.graph, machine, mii_result=mii_result, mrt_impl="dict"
            )
            context = loop.name
            assert mask.ii == oracle.ii, context
            assert (
                mask.schedule.schedule_length
                == oracle.schedule.schedule_length
            ), context
            assert mask.schedule.times == oracle.schedule.times, context
            assert _alternative_names(mask.schedule) == _alternative_names(
                oracle.schedule
            ), context

    def test_list_scheduler_agrees(self, machine, corpus):
        for loop in corpus[:20]:
            mask = list_schedule(loop.graph, machine, mrt_impl="mask")
            oracle = list_schedule(loop.graph, machine, mrt_impl="dict")
            assert mask.times == oracle.times, loop.name
            assert _alternative_names(mask) == _alternative_names(oracle), (
                loop.name
            )

    def test_environment_selects_the_oracle_end_to_end(
        self, machine, corpus, monkeypatch
    ):
        """REPRO_MRT_IMPL=dict routes a whole evaluation through the
        oracle and changes no observable result."""
        loop = corpus[0]
        defaulted = modulo_schedule(loop.graph, machine)
        monkeypatch.setenv("REPRO_MRT_IMPL", "dict")
        forced = modulo_schedule(loop.graph, machine)
        assert forced.ii == defaulted.ii
        assert forced.schedule.times == defaulted.schedule.times
