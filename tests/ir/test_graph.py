"""Dependence graph construction, sealing, and queries."""

import pytest

from repro.ir import DelayModel, DependenceGraph, DependenceKind, GraphError
from repro.machine import single_alu_machine


@pytest.fixture
def machine():
    return single_alu_machine()


class TestConstruction:
    def test_start_exists_from_the_beginning(self, machine):
        graph = DependenceGraph(machine)
        assert graph.operation(0).is_start
        assert graph.n_ops == 1

    def test_add_operation_returns_consecutive_indices(self, machine):
        graph = DependenceGraph(machine)
        assert graph.add_operation("fadd") == 1
        assert graph.add_operation("fmul") == 2

    def test_unknown_opcode_rejected_at_add(self, machine):
        graph = DependenceGraph(machine)
        with pytest.raises(Exception):
            graph.add_operation("no_such_opcode")

    def test_pseudo_opcodes_cannot_be_added_manually(self, machine):
        graph = DependenceGraph(machine)
        with pytest.raises(GraphError):
            graph.add_operation("__start__")

    def test_edge_delay_defaults_to_table1_flow(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fmul")  # latency 3 on single_alu
        b = graph.add_operation("fadd")
        edge = graph.add_edge(a, b, DependenceKind.FLOW)
        assert edge.delay == machine.latency("fmul")

    def test_edge_delay_respects_conservative_model(self, machine):
        graph = DependenceGraph(machine, delay_model=DelayModel.CONSERVATIVE)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fmul")
        edge = graph.add_edge(a, b, DependenceKind.ANTI)
        assert edge.delay == 0

    def test_explicit_delay_overrides_formula(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        edge = graph.add_edge(a, b, DependenceKind.FLOW, delay=9)
        assert edge.delay == 9

    def test_edges_to_start_rejected(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        with pytest.raises(GraphError):
            graph.add_edge(a, 0, DependenceKind.FLOW)

    def test_out_of_range_index_rejected(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        with pytest.raises(GraphError):
            graph.add_edge(a, 99, DependenceKind.FLOW)


class TestSealing:
    def test_seal_appends_stop(self, machine):
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")
        graph.seal()
        assert graph.operation(graph.stop).is_stop
        assert graph.n_ops == 3

    def test_seal_brackets_every_real_op(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fmul")
        graph.seal()
        assert graph.START in graph.preds(a)
        assert graph.START in graph.preds(b)
        assert graph.stop in graph.succs(a)
        assert graph.stop in graph.succs(b)

    def test_stop_edge_delay_is_latency(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fmul")
        graph.seal()
        stop_edges = [e for e in graph.succ_edges(a) if e.succ == graph.stop]
        assert stop_edges[0].delay == machine.latency("fmul")

    def test_sealed_graph_rejects_mutation(self, machine):
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")
        graph.seal()
        with pytest.raises(GraphError):
            graph.add_operation("fadd")
        with pytest.raises(GraphError):
            graph.seal()

    def test_stop_before_seal_raises(self, machine):
        graph = DependenceGraph(machine)
        with pytest.raises(GraphError):
            graph.stop

    def test_empty_body_gets_start_stop_edge(self, machine):
        graph = DependenceGraph(machine).seal()
        assert graph.n_ops == 2
        assert graph.stop in graph.succs(graph.START)


class TestQueries:
    def test_n_real_ops_excludes_pseudo(self, machine):
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")
        graph.add_operation("fmul")
        assert graph.n_real_ops == 2
        graph.seal()
        assert graph.n_real_ops == 2
        assert graph.n_ops == 4

    def test_latency_of_pseudo_is_zero(self, machine):
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")
        graph.seal()
        assert graph.latency(graph.START) == 0
        assert graph.latency(graph.stop) == 0

    def test_pred_and_succ_edges_are_symmetric_views(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        edge = graph.add_edge(a, b, DependenceKind.FLOW, distance=2)
        assert edge in graph.succ_edges(a)
        assert edge in graph.pred_edges(b)

    def test_multiple_edges_between_same_pair(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(a, b, DependenceKind.ANTI, distance=1)
        assert len([e for e in graph.succ_edges(a) if e.succ == b]) == 2

    def test_describe_lists_ops_and_edges(self, machine):
        graph = DependenceGraph(machine, name="g")
        a = graph.add_operation("fadd", dest="x")
        graph.seal()
        text = graph.describe()
        assert "fadd" in text
        assert "->" in text

    def test_real_operations_iterator(self, machine):
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")
        graph.seal()
        names = [op.opcode for op in graph.real_operations()]
        assert names == ["fadd"]
