"""Operations: pseudo detection, register use lists, rendering."""

from repro.ir import Operation
from repro.ir.operation import START_OPCODE, STOP_OPCODE


class TestPseudo:
    def test_start_is_pseudo(self):
        assert Operation(0, START_OPCODE).is_pseudo
        assert Operation(0, START_OPCODE).is_start

    def test_stop_is_pseudo(self):
        op = Operation(9, STOP_OPCODE)
        assert op.is_pseudo and op.is_stop and not op.is_start

    def test_real_operation_is_not_pseudo(self):
        op = Operation(1, "fadd", dest="x", srcs=("a", "b"))
        assert not op.is_pseudo


class TestReads:
    def test_reads_without_predicate(self):
        op = Operation(1, "fadd", dest="x", srcs=("a", "b"))
        assert op.reads() == ("a", "b")

    def test_reads_includes_predicate(self):
        op = Operation(1, "store", srcs=("addr", "v"), predicate="p")
        assert op.reads() == ("addr", "v", "p")

    def test_reads_empty(self):
        assert Operation(1, "brtop").reads() == ()


class TestDescribe:
    def test_describe_contains_index_and_opcode(self):
        text = Operation(4, "fmul", dest="t", srcs=("a",)).describe()
        assert "#4" in text
        assert "fmul" in text
        assert "t <-" in text

    def test_describe_shows_predicate(self):
        text = Operation(2, "store", srcs=("v",), predicate="p1").describe()
        assert "if p1" in text

    def test_attrs_default_is_independent(self):
        first = Operation(0, "fadd")
        second = Operation(1, "fadd")
        first.attrs["x"] = 1
        assert "x" not in second.attrs
