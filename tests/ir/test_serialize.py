"""Graph and schedule serialization round trips."""

import json

import pytest

from repro.core import modulo_schedule, validate_schedule
from repro.ir import (
    DependenceGraph,
    GraphError,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    schedule_from_json,
    schedule_to_json,
)
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine
from repro.simulator import check_equivalence
from repro.workloads import synthetic_graph

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestGraphRoundTrip:
    def test_structure_preserved(self, alu):
        graph = reduction_graph(alu)
        clone = graph_from_dict(graph_to_dict(graph), alu)
        assert clone.describe() == graph.describe()

    def test_json_text_round_trip(self, alu):
        graph = chain_graph(alu, ["fmul", "fadd", "load"])
        text = graph_to_json(graph, indent=2)
        clone = graph_from_json(text, alu)
        assert clone.n_real_ops == graph.n_real_ops
        assert clone.n_edges == graph.n_edges

    def test_synthetic_graphs_round_trip(self):
        machine = cydra5()
        for seed in range(5):
            graph = synthetic_graph(machine, seed=seed)
            clone = graph_from_json(graph_to_json(graph), machine)
            assert clone.describe() == graph.describe()

    def test_unsealed_graph_rejected(self, alu):
        graph = DependenceGraph(alu)
        graph.add_operation("fadd")
        with pytest.raises(GraphError):
            graph_to_dict(graph)

    def test_bad_format_rejected(self, alu):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"}, alu)

    def test_operand_descriptors_survive(self):
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    s = s + x[i]\n", machine
        )
        clone = graph_from_json(graph_to_json(lowered.graph), machine)
        for original, copied in zip(
            lowered.graph.real_operations(), clone.real_operations()
        ):
            assert copied.attrs.get("operands") == original.attrs.get(
                "operands"
            )

    def test_delay_model_preserved(self, alu):
        from repro.ir import DelayModel

        graph = DependenceGraph(alu, delay_model=DelayModel.CONSERVATIVE)
        graph.add_operation("fadd")
        graph.seal()
        clone = graph_from_dict(graph_to_dict(graph), alu)
        assert clone.delay_model is DelayModel.CONSERVATIVE


class TestScheduleRoundTrip:
    def test_schedule_survives_and_validates(self):
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    y[i] = y[i] + q * x[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        text = schedule_to_json(result.schedule, machine, indent=1)
        clone = schedule_from_json(text, machine)
        assert clone.ii == result.ii
        assert clone.times == result.schedule.times
        assert validate_schedule(clone.graph, machine, clone) == []

    def test_reloaded_schedule_still_simulates(self):
        """A reloaded graph keeps enough metadata to re-execute — the
        schedule times transfer onto the reloaded graph's equal indices."""
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    s = s + x[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        clone = schedule_from_json(
            schedule_to_json(result.schedule, machine), machine
        )
        # Splice the reloaded schedule back onto the lowered loop.
        report = check_equivalence(lowered, clone, n=15, seed=8)
        assert report.ok, report.describe()

    def test_alternative_names_resolved(self):
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    y[i] = x[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        clone = schedule_from_json(
            schedule_to_json(result.schedule, machine), machine
        )
        for op, alt in result.schedule.alternatives.items():
            if alt is None:
                assert clone.alternatives[op] is None
            else:
                assert clone.alternatives[op].name == alt.name

    def test_json_is_plain_data(self):
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    y[i] = x[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        data = json.loads(schedule_to_json(result.schedule, machine))
        assert data["format"] == "repro.schedule.v1"
        assert isinstance(data["times"], dict)
