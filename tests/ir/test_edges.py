"""Table 1: delay formulae for flow, anti and output dependences."""

import pytest

from repro.ir import DelayModel, DependenceEdge, DependenceKind, edge_delay


class TestFlowDelay:
    def test_flow_equals_predecessor_latency(self):
        assert edge_delay(DependenceKind.FLOW, 4, 1) == 4

    def test_flow_is_model_independent(self):
        vliw = edge_delay(DependenceKind.FLOW, 7, 2, DelayModel.VLIW)
        cons = edge_delay(DependenceKind.FLOW, 7, 2, DelayModel.CONSERVATIVE)
        assert vliw == cons == 7

    def test_control_behaves_like_flow(self):
        assert edge_delay(DependenceKind.CONTROL, 3, 1) == 3

    def test_zero_latency_flow(self):
        assert edge_delay(DependenceKind.FLOW, 0, 5) == 0


class TestAntiDelay:
    def test_vliw_anti_is_one_minus_successor_latency(self):
        assert edge_delay(DependenceKind.ANTI, 4, 3, DelayModel.VLIW) == -2

    def test_vliw_anti_with_unit_successor_is_zero(self):
        assert edge_delay(DependenceKind.ANTI, 9, 1, DelayModel.VLIW) == 0

    def test_conservative_anti_is_zero(self):
        assert edge_delay(DependenceKind.ANTI, 4, 3, DelayModel.CONSERVATIVE) == 0

    def test_anti_ignores_predecessor_latency(self):
        assert edge_delay(DependenceKind.ANTI, 1, 5, DelayModel.VLIW) == edge_delay(
            DependenceKind.ANTI, 20, 5, DelayModel.VLIW
        )


class TestOutputDelay:
    def test_vliw_output_formula(self):
        # 1 + Latency(pred) - Latency(succ)
        assert edge_delay(DependenceKind.OUTPUT, 4, 2, DelayModel.VLIW) == 3

    def test_vliw_output_can_be_negative(self):
        assert edge_delay(DependenceKind.OUTPUT, 1, 5, DelayModel.VLIW) == -3

    def test_conservative_output_is_pred_latency(self):
        assert (
            edge_delay(DependenceKind.OUTPUT, 4, 2, DelayModel.CONSERVATIVE) == 4
        )

    def test_equal_latencies_give_unit_delay(self):
        assert edge_delay(DependenceKind.OUTPUT, 3, 3, DelayModel.VLIW) == 1


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            edge_delay(DependenceKind.FLOW, -1, 0)

    def test_negative_successor_latency_rejected(self):
        with pytest.raises(ValueError):
            edge_delay(DependenceKind.ANTI, 1, -2)


class TestDependenceEdge:
    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge(0, 1, DependenceKind.FLOW, -1, 0)

    def test_edge_is_frozen(self):
        edge = DependenceEdge(0, 1, DependenceKind.FLOW, 0, 2)
        with pytest.raises(AttributeError):
            edge.delay = 5

    def test_describe_mentions_all_attributes(self):
        edge = DependenceEdge(3, 7, DependenceKind.ANTI, 2, -1)
        text = edge.describe()
        assert "3 -> 7" in text
        assert "anti" in text
        assert "distance=2" in text
        assert "delay=-1" in text

    def test_negative_delay_allowed(self):
        edge = DependenceEdge(0, 1, DependenceKind.ANTI, 0, -4)
        assert edge.delay == -4
