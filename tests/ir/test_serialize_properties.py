"""Property tests: serialization round trips over random inputs."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import compute_mii, modulo_schedule, validate_schedule
from repro.ir import (
    graph_from_json,
    graph_to_json,
    schedule_from_json,
    schedule_to_json,
)
from repro.machine import cydra5
from repro.workloads import synthetic_graph

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoundTripProperties:
    @given(st.integers(min_value=0, max_value=5000))
    @_SETTINGS
    def test_graph_round_trip_preserves_structure(self, seed):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        clone = graph_from_json(graph_to_json(graph), machine)
        assert clone.describe() == graph.describe()

    @given(st.integers(min_value=0, max_value=5000))
    @_SETTINGS
    def test_round_trip_preserves_mii(self, seed):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        clone = graph_from_json(graph_to_json(graph), machine)
        assert (
            compute_mii(clone, machine).mii == compute_mii(graph, machine).mii
        )

    @given(st.integers(min_value=0, max_value=1000))
    @_SETTINGS
    def test_schedule_round_trip_stays_valid(self, seed):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        result = modulo_schedule(graph, machine, budget_ratio=6.0)
        clone = schedule_from_json(
            schedule_to_json(result.schedule, machine), machine
        )
        assert clone.times == result.schedule.times
        assert validate_schedule(clone.graph, machine, clone) == []

    @given(st.integers(min_value=0, max_value=5000))
    @_SETTINGS
    def test_double_round_trip_is_fixed_point(self, seed):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        once = graph_to_json(graph)
        twice = graph_to_json(graph_from_json(once, machine))
        assert once == twice
