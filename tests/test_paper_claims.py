"""The paper's Section 5 conclusions, as executable assertions.

The paper concludes that iterative modulo scheduling with HeightR at
BudgetRatio 2:

1. requires the scheduling of only ~59% more operations than acyclic
   list scheduling (which schedules each exactly once);
2. generates schedules optimal in II (vs the MII bound) for ~96% of
   loops;
3. yields aggregate execution time within a few percent of the (not
   necessarily achievable) lower bound.

These tests check the same claims on a 300-loop corpus on the
reconstructed Cydra 5, with bands loose enough to absorb the corpus and
machine substitutions (see EXPERIMENTS.md for the full-scale numbers)
but tight enough that a quality regression in the scheduler fails them.
"""

import pytest

from repro.analysis import evaluate_corpus
from repro.analysis.model import execution_time, execution_time_bound
from repro.core import modulo_schedule
from repro.machine import cydra5
from repro.workloads import build_corpus

BUDGET_RATIO = 2.0


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def evaluations(machine):
    corpus = build_corpus(machine, n_synthetic=235, seed=42)
    return evaluate_corpus(corpus, machine, budget_ratio=BUDGET_RATIO)


class TestConclusionOne:
    """Scheduling effort close to list scheduling's one-step-per-op."""

    def test_aggregate_steps_per_operation_bounded(self, evaluations):
        steps = sum(e.result.steps_total for e in evaluations)
        ops = sum(e.n_ops for e in evaluations)
        # Paper: 1.59 on the Cydra 5; our reconstruction has harsher
        # complex-table conflicts, so allow up to 3.5 — still the same
        # order as list scheduling, nowhere near unrolling schemes.
        assert 1.0 <= steps / ops <= 3.5

    def test_most_loops_schedule_every_op_exactly_once(self, evaluations):
        one_pass = sum(
            1 for e in evaluations if e.result.steps_last == e.n_ops
        )
        assert one_pass / len(evaluations) >= 0.6  # paper: 0.90


class TestConclusionTwo:
    """II optimal versus the MII bound for the vast majority of loops."""

    def test_optimality_rate(self, evaluations):
        optimal = sum(1 for e in evaluations if e.delta_ii == 0)
        assert optimal / len(evaluations) >= 0.85  # paper: 0.96

    def test_mean_ii_within_three_percent_of_bound(self, evaluations):
        total_ii = sum(e.ii for e in evaluations)
        total_mii = sum(e.mii for e in evaluations)
        # Paper: ~1% over the bound; our reconstruction at BudgetRatio 2
        # lands at ~2%.
        assert total_ii / total_mii <= 1.03


class TestConclusionThree:
    """Aggregate execution time within a few percent of the bound."""

    def test_aggregate_dilation(self, evaluations):
        executed = [e for e in evaluations if e.loop.executed]
        total = sum(e.exec_time for e in executed)
        bound = sum(e.exec_bound for e in executed)
        # Paper: 2.8% at BudgetRatio 2.  Allow 12% for the substituted
        # corpus/machine; a broken scheduler lands far outside this.
        assert (total - bound) / bound <= 0.12

    def test_ii_dominates_execution_time(self, evaluations):
        """Sanity on the model itself: for long loops the II term is
        what matters, which is why II is the primary quality metric."""
        sample = max(
            (e for e in evaluations if e.loop.executed),
            key=lambda e: e.loop.loop_freq,
        )
        with_worse_sl = execution_time(
            sample.loop.entry_freq,
            sample.loop.loop_freq,
            sample.sl + 10,
            sample.ii,
        )
        with_worse_ii = execution_time(
            sample.loop.entry_freq,
            sample.loop.loop_freq,
            sample.sl,
            sample.ii + 1,
        )
        assert with_worse_ii - sample.exec_time > with_worse_sl - sample.exec_time
