"""Every example script runs to completion and prints what it promises."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name):
    out = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(out):
            runpy.run_path(str(_EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = _run("quickstart.py")
        assert "static validation: OK" in text
        assert "end-to-end simulation" in text
        assert "speedup" in text

    def test_custom_machine(self):
        text = _run("custom_machine.py")
        assert "dsp_shared_bus" in text
        assert "dsp_private_bus" in text
        assert "simulation OK" in text

    def test_recurrence_explorer(self):
        text = _run("recurrence_explorer.py")
        assert "limited by resources" in text
        assert "limited by recurrence" in text

    def test_codegen_tour(self):
        text = _run("codegen_tour.py")
        assert "modulo variable expansion" in text
        assert "rotating registers" in text
        assert "allocation safety check: OK" in text

    def test_corpus_report(self):
        text = _run("corpus_report.py")
        assert "II = MII for" in text
        assert "hardest loop" in text

    def test_pipeline_visualizer(self):
        text = _run("pipeline_visualizer.py")
        assert "scheduling trace" in text
        assert "forward progress invariant: True" in text
        assert "MaxLive" in text

    def test_while_pipeline(self):
        text = _run("while_pipeline.py")
        assert "equivalence vs sequential oracle: OK" in text
        assert "squashed by the alive guard" in text
