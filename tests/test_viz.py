"""ASCII visualizations."""

import pytest

from repro import cydra5, modulo_schedule, single_alu_machine
from repro.loopir import compile_loop_full
from repro.viz import lifetime_chart, pipeline_diagram, resource_gantt


@pytest.fixture(scope="module")
def scheduled():
    machine = cydra5()
    lowered = compile_loop_full(
        "for i in n:\n    s = s + x[i] * y[i]\n", machine, name="sdot"
    )
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    return lowered.graph, machine, result


class TestResourceGantt:
    def test_grid_has_ii_rows(self, scheduled):
        graph, machine, result = scheduled
        text = resource_gantt(graph, machine, result.schedule)
        data_rows = text.splitlines()[2:]
        assert len(data_rows) == result.ii

    def test_used_resources_appear(self, scheduled):
        graph, machine, result = scheduled
        text = resource_gantt(graph, machine, result.schedule)
        assert "mem_port0" in text
        assert "op" in text

    def test_empty_graph(self):
        from repro.ir import DependenceGraph

        machine = single_alu_machine()
        graph = DependenceGraph(machine).seal()
        result = modulo_schedule(graph, machine)
        assert "no resources" in resource_gantt(graph, machine, result.schedule)


class TestPipelineDiagram:
    def test_one_row_per_iteration(self, scheduled):
        graph, machine, result = scheduled
        text = pipeline_diagram(graph, result.schedule, iterations=5)
        rows = [l for l in text.splitlines() if l.startswith("iter")]
        assert len(rows) == 5

    def test_staircase_offset_is_ii(self, scheduled):
        graph, machine, result = scheduled
        text = pipeline_diagram(graph, result.schedule, iterations=3)
        rows = [l for l in text.splitlines() if l.startswith("iter")]
        # The first non-space cell of row k starts II columns after row
        # k-1's.
        starts = []
        for row in rows:
            body = row.split("|", 1)[1]
            starts.append(len(body) - len(body.lstrip(" ")))
        assert starts[1] - starts[0] == result.ii
        assert starts[2] - starts[1] == result.ii

    def test_mentions_ii_and_sl(self, scheduled):
        graph, machine, result = scheduled
        text = pipeline_diagram(graph, result.schedule)
        assert f"II={result.ii}" in text
        assert f"SL={result.schedule_length}" in text


class TestLifetimeChart:
    def test_one_row_per_value(self, scheduled):
        graph, machine, result = scheduled
        text = lifetime_chart(graph, result.schedule)
        rows = [l for l in text.splitlines()[2:]]
        values = sum(
            1
            for op in graph.real_operations()
            if op.dest is not None
        )
        assert len(rows) == values

    def test_definition_and_last_use_marks(self, scheduled):
        graph, machine, result = scheduled
        text = lifetime_chart(graph, result.schedule)
        assert "D" in text
        assert ">" in text
