"""The sampling profiler: sampling, harvesting, degradation, overhead.

The overhead guard at the bottom is an acceptance criterion: ``--profile``
must stay within 10% of unprofiled wall clock on a smoke corpus, and the
disabled path must not even instantiate a profiler (the ``NULL_OBS``
byte-identity benchmark in ``test_context.py`` covers the span side).
"""

import time

import pytest

import repro.obs.profile as profile_mod
from repro.machine import cydra5
from repro.obs.profile import (
    DEFAULT_INTERVAL,
    SamplingProfiler,
    merge_samples,
    shared_profiler,
    stop_shared,
)
from repro.workloads import build_corpus


def _burn(seconds=0.25):
    """Consume CPU in pure Python so ITIMER_PROF has something to bill."""
    deadline = time.process_time() + seconds
    total = 0
    while time.process_time() < deadline:
        total += sum(i * i for i in range(200))
    return total


@pytest.fixture(autouse=True)
def _no_leaked_shared_profiler():
    stop_shared()
    yield
    stop_shared()


class TestSampling:
    def test_busy_loop_is_sampled(self):
        with SamplingProfiler(interval=0.001) as profiler:
            assert profiler.mode in ("sigprof", "thread")
            _burn()
        samples = profiler.collapsed()
        assert samples
        assert any("test_profile:_burn" in stack for stack in samples)

    def test_stacks_are_root_first_semicolon_joined(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _burn()
        for stack in profiler.collapsed():
            frames = stack.split(";")
            assert all(":" in frame for frame in frames)
            # The test runner's frames sit above (before) the burn frame.
            if "test_profile:_burn" in frames:
                assert frames.index("test_profile:_burn") > 0

    def test_take_harvests_and_resets_without_disarming(self):
        profiler = SamplingProfiler(interval=0.001).start()
        try:
            _burn()
            first = profiler.take()
            assert first
            assert profiler.samples == {}
            assert profiler.mode != "off"  # still armed
            _burn()
            second = profiler.take()
            assert second  # the timer kept firing after the harvest
        finally:
            profiler.stop()

    def test_stop_disarms(self):
        profiler = SamplingProfiler(interval=0.001).start()
        profiler.stop()
        assert profiler.mode == "off"
        before = dict(profiler.samples)
        _burn(0.05)
        assert profiler.samples == before


class TestDegradation:
    def test_thread_fallback_when_sigprof_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            SamplingProfiler, "_start_sigprof", lambda self: False
        )
        with SamplingProfiler(interval=0.001) as profiler:
            assert profiler.mode == "thread"
            _burn()
        assert profiler.collapsed()

    def test_silent_noop_when_everything_fails(self, monkeypatch):
        monkeypatch.setattr(
            SamplingProfiler, "_start_sigprof", lambda self: False
        )
        monkeypatch.setattr(
            SamplingProfiler, "_start_thread", lambda self: False
        )
        with SamplingProfiler() as profiler:
            assert profiler.mode == "off"
            _burn(0.02)
        assert profiler.collapsed() == {}


class TestMergeAndCollapse:
    def test_merge_samples_adds(self):
        into = {"a;b": 2}
        merge_samples(into, [{"a;b": 3, "c": 1}, {}, None, {"c": 4}])
        assert into == {"a;b": 5, "c": 5}

    def test_collapsed_strips_profiler_frames(self):
        profiler = SamplingProfiler()
        profiler.samples = {
            "engine:_run;profile:_on_sigprof": 3,
            "engine:_run;scheduler:schedule": 2,
            "profile:_on_sigprof": 1,  # nothing left: dropped
        }
        assert profiler.collapsed() == {
            "engine:_run": 3,
            "engine:_run;scheduler:schedule": 2,
        }


class TestSharedProfiler:
    def test_shared_is_a_singleton_until_stopped(self):
        a = shared_profiler(0.001)
        b = shared_profiler(0.001)
        assert a is b
        stop_shared()
        assert profile_mod._shared is None
        c = shared_profiler(0.001)
        assert c is not a

    def test_stop_shared_without_start_is_a_noop(self):
        stop_shared()
        stop_shared()


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def machine(self):
        return cydra5()

    @pytest.fixture(scope="class")
    def corpus(self, machine):
        return build_corpus(machine, n_synthetic=8, seed=5)

    def _wall(self, machine, corpus, profile_interval):
        from repro.analysis.engine import EvaluationEngine

        best = float("inf")
        for _ in range(3):
            engine = EvaluationEngine(
                machine, jobs=1, profile_interval=profile_interval
            )
            start = time.perf_counter()
            result = engine.evaluate(corpus)
            best = min(best, time.perf_counter() - start)
        return best, result

    def test_profiled_run_collects_samples(self, machine, corpus):
        _, result = self._wall(machine, corpus, DEFAULT_INTERVAL)
        assert result.profile is not None
        # Serial path must disarm the caller's process when done.
        assert profile_mod._shared is None

    def test_disabled_path_does_no_profiler_work(self, machine, corpus):
        _, result = self._wall(machine, corpus, None)
        assert result.profile is None
        assert profile_mod._shared is None

    def test_overhead_guard_within_ten_percent(self, machine, corpus):
        """Acceptance: --profile costs <= 10% wall clock on a smoke corpus.

        Best-of-three on both sides squeezes scheduler jitter out; the
        absolute slack absorbs sub-millisecond timer noise on a corpus
        this small.
        """
        off, _ = self._wall(machine, corpus, None)
        on, _ = self._wall(machine, corpus, DEFAULT_INTERVAL)
        assert on <= off * 1.10 + 0.05, (
            f"profiled {on:.3f}s vs unprofiled {off:.3f}s exceeds 10%"
        )
