"""JSONL and Chrome-trace exporters over real pipeline snapshots."""

import json

import pytest

from repro.core import modulo_schedule
from repro.machine import cydra5
from repro.obs import ObsContext
from repro.obs.exporters import (
    FORMATS,
    to_chrome_trace,
    write_chrome_trace,
    write_export,
    write_jsonl,
)
from repro.obs.schema import FORMAT, validate_jsonl, worker_lanes
from repro.workloads import synthetic_graph


@pytest.fixture(scope="module")
def snapshot():
    """A genuine traced scheduling run, not a synthetic fixture."""
    machine = cydra5()
    obs = ObsContext()
    with obs.span("corpus.evaluate", loops=2):
        for seed in (1, 2):
            with obs.span("loop", loop=f"synthetic_{seed}"):
                modulo_schedule(
                    machine=machine,
                    graph=synthetic_graph(machine, seed=seed),
                    obs=obs,
                )
    return obs.to_dict()


class TestJsonl:
    def test_written_file_is_schema_valid(self, snapshot, tmp_path):
        path = write_jsonl(snapshot, tmp_path / "obs.jsonl", run={"jobs": 1})
        assert validate_jsonl(path.read_text()) == []

    def test_lines_are_canonical_sorted_key_json(self, snapshot, tmp_path):
        path = write_jsonl(snapshot, tmp_path / "obs.jsonl")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True)

    def test_first_line_is_the_meta_record(self, snapshot, tmp_path):
        path = write_jsonl(snapshot, tmp_path / "obs.jsonl", run={"argv": "x"})
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta" and first["format"] == FORMAT
        assert first["run"] == {"argv": "x"}


class TestChromeTrace:
    def test_one_complete_event_per_span(self, snapshot):
        trace = to_chrome_trace(snapshot)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(snapshot["spans"])

    def test_timestamps_are_microseconds(self, snapshot):
        trace = to_chrome_trace(snapshot)
        span = snapshot["spans"][0]
        event = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["args"]["span_id"] == span["span_id"]
        )
        assert event["ts"] == pytest.approx(span["start"] * 1e6)
        assert event["dur"] == pytest.approx(span["dur"] * 1e6)

    def test_parenthood_rides_in_args(self, snapshot):
        trace = to_chrome_trace(snapshot)
        children = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and "parent_id" in e["args"]
        ]
        assert children  # the scheduling spans nest under loop spans

    def test_all_events_share_one_trace_pid(self, snapshot):
        trace = to_chrome_trace(snapshot)
        assert len({e["pid"] for e in trace["traceEvents"]}) == 1

    def test_process_and_thread_name_metadata(self, snapshot):
        trace = to_chrome_trace(snapshot)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}
        lanes = worker_lanes(snapshot["spans"])
        thread_names = [e for e in metadata if e["name"] == "thread_name"]
        # One labeled lane per worker pid, tids matching the stable lanes.
        assert {e["tid"] for e in thread_names} == set(lanes.values())
        assert any(
            e["args"]["name"].startswith("engine") for e in thread_names
        )

    def test_span_tids_are_stable_lanes_and_pid_rides_in_args(self, snapshot):
        trace = to_chrome_trace(snapshot)
        lanes = worker_lanes(snapshot["spans"])
        by_id = {s["span_id"]: s for s in snapshot["spans"]}
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            span = by_id[event["args"]["span_id"]]
            assert event["tid"] == lanes[span["pid"]]
            assert event["args"]["pid"] == span["pid"]

    def test_metrics_and_run_land_in_other_data(self, snapshot):
        trace = to_chrome_trace(snapshot, run={"jobs": 4})
        assert trace["otherData"]["run"] == {"jobs": 4}
        assert trace["otherData"]["metrics"] == snapshot["metrics"]

    def test_written_file_is_plain_json(self, snapshot, tmp_path):
        path = write_chrome_trace(snapshot, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["traceEvents"]


class TestDispatch:
    def test_every_advertised_format_writes(self, snapshot, tmp_path):
        for fmt in FORMATS:
            path = write_export(snapshot, tmp_path / f"out.{fmt}", fmt)
            assert path.read_text()

    def test_unknown_format_raises(self, snapshot, tmp_path):
        with pytest.raises(ValueError, match="unknown obs format"):
            write_export(snapshot, tmp_path / "out", "protobuf")
