"""Collapsed-stack flamegraph export from spans and profiler samples."""

import pytest

from repro.obs import ObsContext
from repro.obs.flame import (
    collapse_spans,
    flamegraph_from_store,
    folded_lines,
    write_flamegraph,
)
from repro.obs.schema import records_from_snapshot
from repro.obs.store import RunStore


def _spans():
    """root(1.0s) > mid(0.6s) > leaf(0.2s): self times 0.4/0.4/0.2."""
    return [
        {"span_id": 1, "parent_id": None, "name": "root", "start": 0.0,
         "dur": 1.0, "pid": 1, "attrs": {}},
        {"span_id": 2, "parent_id": 1, "name": "mid", "start": 0.1,
         "dur": 0.6, "pid": 1, "attrs": {}},
        {"span_id": 3, "parent_id": 2, "name": "leaf", "start": 0.2,
         "dur": 0.2, "pid": 1, "attrs": {}},
    ]


class TestCollapseSpans:
    def test_weights_are_self_time_in_microseconds(self):
        folded = collapse_spans(_spans())
        assert folded["root"] == pytest.approx(400_000)
        assert folded["root;mid"] == pytest.approx(400_000)
        assert folded["root;mid;leaf"] == pytest.approx(200_000)

    def test_total_weight_equals_root_wall_clock(self):
        folded = collapse_spans(_spans())
        assert sum(folded.values()) == pytest.approx(1_000_000)

    def test_zero_self_time_stacks_are_dropped(self):
        spans = _spans()
        spans[1]["dur"] = 1.0  # mid fills root entirely
        folded = collapse_spans(spans)
        assert "root" not in folded
        assert "root;mid" in folded

    def test_empty_input(self):
        assert collapse_spans([]) == {}


class TestFoldedLines:
    def test_lines_are_stack_space_weight(self):
        lines = folded_lines(collapse_spans(_spans()))
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) > 0  # standard tooling parses this

    def test_output_is_sorted_and_deterministic(self):
        a = folded_lines(collapse_spans(_spans()))
        b = folded_lines(collapse_spans(list(reversed(_spans()))))
        assert a == b == sorted(a)


class TestFromStore:
    @pytest.fixture()
    def store(self):
        with RunStore(":memory:") as s:
            yield s

    def _traced_run(self, store):
        # Fixed durations: real ObsContext spans can be sub-microsecond
        # and their stacks would be (correctly) dropped as zero-weight.
        obs = ObsContext()
        with obs.span("corpus.evaluate"):
            with obs.span("loop", loop="dot"):
                with obs.span("scheduling"):
                    pass
        snapshot = obs.to_dict()
        durs = {"corpus.evaluate": 1.0, "loop": 0.5, "scheduling": 0.25}
        for span in snapshot["spans"]:
            span["dur"] = durs[span["name"]]
        return store.ingest_records(
            records_from_snapshot(snapshot)
        ).run_id

    def test_span_source(self, store):
        run_id = self._traced_run(store)
        lines = flamegraph_from_store(store, run_id)
        stacks = [line.rsplit(" ", 1)[0] for line in lines]
        assert any(s.endswith("loop;scheduling") for s in stacks)

    def test_profile_source(self, store):
        run_id = self._traced_run(store)
        store.ingest_profile(run_id, {"engine:_run;scheduler:schedule": 9})
        lines = flamegraph_from_store(store, run_id, source="profile")
        assert lines == ["engine:_run;scheduler:schedule 9"]

    def test_unknown_source_raises(self, store):
        run_id = self._traced_run(store)
        with pytest.raises(ValueError, match="source"):
            flamegraph_from_store(store, run_id, source="tea-leaves")

    def test_write_flamegraph(self, store, tmp_path):
        run_id = self._traced_run(store)
        path = write_flamegraph(
            flamegraph_from_store(store, run_id), tmp_path / "flame.folded"
        )
        text = path.read_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) >= 0
