"""The observatory's run store: ingest, dedupe, self time, attribution."""

import json

import pytest

from repro.obs import ObsContext
from repro.obs.schema import FORMAT, FORMAT_V1, records_from_snapshot
from repro.obs.store import (
    RunStore,
    StoreError,
    run_id_for_records,
)


def _snapshot():
    """A small but real traced run with nested spans and metrics."""
    obs = ObsContext()
    with obs.span("corpus.evaluate", loops=2):
        with obs.span("loop", loop="dot", index=0) as loop:
            with obs.span("schedule", graph="dot", mii=3, ii=3, attempts=1):
                with obs.span(
                    "schedule.attempt", ii=3, success=True, steps=10,
                    displaced=2, forced=1,
                ):
                    pass
            loop.set("ii", 3)
            loop.set("ok", True)
        with obs.span("loop", loop="fir", index=1) as loop:
            loop.set("ok", False)
            loop.set("failed_phase", "scheduling")
    obs.counter("engine.loops").inc(2)
    obs.histogram("loop.ops").observe(12)
    return obs.to_dict()


def _timing_report(**overrides):
    report = {
        "format": "repro.engine-timing.v1",
        "machine": "cydra5",
        "jobs": 2,
        "cache": {"enabled": True, "dir": None, "hits": 3, "misses": 5},
        "n_loops": 2,
        "n_failures": 1,
        "wall_seconds": 1.25,
        "phase_seconds": {"scheduling": 0.9, "mindist": 0.2},
        "counters": {"ops_scheduled": 100},
        "metrics": None,
        "resilience": {"retries": 1, "degraded": 0},
        "loops": [
            {"index": 0, "loop": "dot", "key": "k0", "cache_hit": False,
             "seconds": {"scheduling": 0.7, "mindist": 0.1, "total": 0.8},
             "resumed": False},
            {"index": 1, "loop": "fir", "key": "k1", "cache_hit": True,
             "seconds": {"load": 0.01, "total": 0.01}, "resumed": False},
        ],
        "failures": [
            {"index": 1, "loop": "fir", "phase": "scheduling",
             "error_type": "SchedulingFailure", "message": "budget",
             "kind": "deterministic", "attempts": 1, "detail": {}},
        ],
    }
    report.update(overrides)
    return report


@pytest.fixture()
def store():
    with RunStore(":memory:") as s:
        yield s


class TestIngestRecords:
    def test_ingest_and_dedupe_by_content_hash(self, store):
        records = records_from_snapshot(_snapshot(), run={"jobs": 1})
        first = store.ingest_records(records)
        again = store.ingest_records(records)
        assert first.created and not again.created
        assert first.run_id == again.run_id
        assert len(store.runs()) == 1

    def test_distinct_snapshots_get_distinct_runs(self, store):
        a = store.ingest_records(records_from_snapshot(_snapshot()))
        b = store.ingest_records(records_from_snapshot(_snapshot()))
        assert a.run_id != b.run_id  # span clocks differ
        assert len(store.runs()) == 2

    def test_invalid_stream_is_rejected(self, store):
        with pytest.raises(StoreError, match="not a valid obs export"):
            store.ingest_records([{"format": "nope"}])

    def test_v1_records_still_ingest(self, store):
        records = records_from_snapshot(_snapshot())
        for record in records:
            record["format"] = FORMAT_V1
            record.pop("tid", None)
        result = store.ingest_records(records)
        assert result.created
        assert store.run_row(result.run_id)["format"] == FORMAT_V1

    def test_run_id_is_stable_across_serialization(self):
        records = records_from_snapshot(_snapshot())
        round_tripped = [
            json.loads(json.dumps(r, sort_keys=True)) for r in records
        ]
        assert run_id_for_records(records) == run_id_for_records(
            round_tripped
        )


class TestSelfTime:
    def test_self_time_excludes_direct_children(self, store):
        result = store.ingest_records(records_from_snapshot(_snapshot()))
        rows = {row["name"]: row for row in store.span_rows(result.run_id)
                if row["name"] in ("schedule", "schedule.attempt")}
        schedule = rows["schedule"]
        attempt = rows["schedule.attempt"]
        assert schedule["self_dur"] == pytest.approx(
            schedule["dur"] - attempt["dur"]
        )
        assert attempt["self_dur"] == pytest.approx(attempt["dur"])

    def test_self_time_clamped_non_negative(self, store):
        records = [
            {"format": FORMAT, "type": "meta", "run": {}},
            {"format": FORMAT, "type": "span", "name": "a", "span_id": 1,
             "parent_id": None, "start": 0.0, "dur": 1.0, "pid": 1,
             "tid": 0, "attrs": {}},
            # Child longer than its parent (clock skew across processes).
            {"format": FORMAT, "type": "span", "name": "b", "span_id": 2,
             "parent_id": 1, "start": 0.0, "dur": 1.5, "pid": 1,
             "tid": 0, "attrs": {}},
        ]
        result = store.ingest_records(records)
        parent = next(
            r for r in store.span_rows(result.run_id) if r["name"] == "a"
        )
        assert parent["self_dur"] == 0.0

    def test_spans_resolve_their_owning_loop(self, store):
        result = store.ingest_records(records_from_snapshot(_snapshot()))
        attempt = next(
            r for r in store.span_rows(result.run_id)
            if r["name"] == "schedule.attempt"
        )
        assert attempt["loop"] == "dot"


class TestLoopAttribution:
    def test_loops_derived_from_span_tree(self, store):
        result = store.ingest_records(records_from_snapshot(_snapshot()))
        loops = {row["name"]: row for row in store.loop_rows(result.run_id)}
        dot = loops["dot"]
        assert dot["ii"] == 3 and dot["mii"] == 3 and dot["attempts"] == 1
        assert dot["displaced"] == 2 and dot["forced"] == 1
        assert dot["ok"] == 1
        fir = loops["fir"]
        assert fir["ok"] == 0 and fir["failure_phase"] == "scheduling"

    def test_timing_report_merges_into_same_run(self, store):
        result = store.ingest_records(records_from_snapshot(_snapshot()))
        merged = store.ingest_timing_report(
            _timing_report(), run_id=result.run_id
        )
        assert merged.run_id == result.run_id
        assert len(store.runs()) == 1
        run = store.run_row(result.run_id)
        assert run["wall_seconds"] == 1.25
        assert run["cache_hits"] == 3 and run["cache_misses"] == 5
        assert run["resilience"]["retries"] == 1
        loops = {row["name"]: row for row in store.loop_rows(result.run_id)}
        # Span-derived fields and report-derived fields coexist per loop.
        assert loops["dot"]["ii"] == 3
        assert loops["dot"]["key"] == "k0"
        assert loops["fir"]["failure_kind"] == "deterministic"

    def test_metrics_land_in_the_metrics_table(self, store):
        result = store.ingest_records(records_from_snapshot(_snapshot()))
        assert store.counters(result.run_id)["engine.loops"] == 2
        histogram = next(
            r for r in store.metric_rows(result.run_id)
            if r["kind"] == "histogram"
        )
        assert json.loads(histogram["value_json"])["count"] == 1


class TestOtherIngest:
    def test_timing_report_alone_makes_a_run(self, store):
        result = store.ingest_timing_report(_timing_report())
        assert result.created
        assert store.run_row(result.run_id)["wall_seconds"] == 1.25

    def test_wrong_format_timing_report_rejected(self, store):
        with pytest.raises(StoreError, match="not an engine timing"):
            store.ingest_timing_report({"format": "other"})

    def test_journal_ingest(self, store, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [
            {"format": "repro.journal.v1", "key": "k0", "index": 0,
             "loop": "dot", "ok": True, "payload": {}},
            {"format": "repro.journal.v1", "key": "k1", "index": 1,
             "loop": "fir", "ok": False,
             "failure": {"kind": "deterministic", "phase": "scheduling"}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        result = store.ingest_journal(path)
        loops = {row["name"]: row for row in store.loop_rows(result.run_id)}
        assert loops["dot"]["ok"] == 1
        assert loops["fir"]["failure_kind"] == "deterministic"

    def test_bench_trajectory_dedupes_by_time(self, store, tmp_path):
        path = tmp_path / "BENCH_X.json"
        data = {"version": 1, "runs": [
            {"bench": "sched", "unix_time": 1.0, "wall": 2.0},
            {"bench": "sched", "unix_time": 2.0, "wall": 1.9},
        ]}
        path.write_text(json.dumps(data))
        assert store.ingest_bench_trajectory(path) == 2
        data["runs"].append({"bench": "sched", "unix_time": 3.0, "wall": 1.8})
        path.write_text(json.dumps(data))
        assert store.ingest_bench_trajectory(path) == 1  # only the tail
        series = store.bench_series("sched")
        assert [entry["unix_time"] for entry in series] == [1.0, 2.0, 3.0]

    def test_ingest_path_sniffs_all_formats(self, store, tmp_path):
        jsonl = tmp_path / "obs.jsonl"
        records = records_from_snapshot(_snapshot())
        jsonl.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert store.ingest_path(jsonl).kind == "obs"

        timing = tmp_path / "timings.json"
        timing.write_text(json.dumps(_timing_report(), indent=2))
        assert store.ingest_path(timing).kind == "timing"

        bench = tmp_path / "BENCH_SCHED.json"
        bench.write_text(json.dumps(
            {"version": 1, "runs": [{"bench": "b", "unix_time": 1.0}]}
        ))
        assert store.ingest_path(bench).kind == "bench"

        journal = tmp_path / "journal.jsonl"
        journal.write_text(json.dumps(
            {"format": "repro.journal.v1", "key": "k", "index": 0,
             "loop": "dot", "ok": True}
        ) + "\n")
        assert store.ingest_path(journal).kind == "journal"

    def test_ingest_path_rejects_garbage(self, store, tmp_path):
        path = tmp_path / "noise.json"
        path.write_text('{"what": "ever"}')
        with pytest.raises(StoreError, match="unrecognized"):
            store.ingest_path(path)


class TestRunResolution:
    def test_latest_and_prefix(self, store):
        a = store.ingest_records(records_from_snapshot(_snapshot()))
        b = store.ingest_records(records_from_snapshot(_snapshot()))
        assert store.resolve_run(None) == b.run_id
        assert store.resolve_run("latest") == b.run_id
        assert store.resolve_run(a.run_id[:6]) == a.run_id

    def test_unknown_and_ambiguous_references(self, store):
        store.ingest_records(records_from_snapshot(_snapshot()))
        store.ingest_records(records_from_snapshot(_snapshot()))
        with pytest.raises(StoreError, match="no run matches"):
            store.resolve_run("zzzz")
        assert store.resolve_run("") == store.resolve_run("latest")
        # A full run id used as its own prefix resolves; any prefix both
        # runs share is ambiguous.
        runs = [r["run_id"] for r in store.runs()]
        assert store.resolve_run(runs[0]) == runs[0]
        if runs[0][0] == runs[1][0]:
            with pytest.raises(StoreError, match="ambiguous"):
                store.resolve_run(runs[0][0])

    def test_empty_store_resolution_fails(self, store):
        with pytest.raises(StoreError, match="no runs"):
            store.resolve_run(None)


class TestPersistence:
    def test_reopen_preserves_runs(self, tmp_path):
        path = tmp_path / "obs.db"
        records = records_from_snapshot(_snapshot())
        with RunStore(path) as store:
            run_id = store.ingest_records(records).run_id
        with RunStore(path) as store:
            assert store.has_run(run_id)
            assert not store.ingest_records(records).created

    def test_profile_samples_round_trip_and_merge(self, store):
        run_id = store.ingest_records(
            records_from_snapshot(_snapshot())
        ).run_id
        store.ingest_profile(run_id, {"a;b": 3, "a;c": 1})
        store.ingest_profile(run_id, {"a;b": 2})
        assert store.profile_samples(run_id) == {"a;b": 5, "a;c": 1}
