"""Derived profiles and run-to-run diffing over the run store."""

import pytest

from repro.obs import ObsContext
from repro.obs.analyze import (
    TOP_KEYS,
    check_baseline,
    diff_runs,
    make_baseline,
    percentile,
    phase_profile,
    top_loops,
)
from repro.obs.schema import records_from_snapshot
from repro.obs.store import RunStore


def _snapshot(slow_loop=None, extra_failure=False):
    """A traced two-loop run; optionally inflate one loop's wall clock.

    The inflation widens the ``loop`` span without touching the nested
    phase spans — exactly the signature of the ``slow@i`` fault the
    diff's per-loop attribution has to catch.
    """
    obs = ObsContext()
    with obs.span("corpus.evaluate", loops=2):
        for idx, name in enumerate(("dot", "fir")):
            with obs.span("loop", loop=name, index=idx) as loop:
                with obs.span("scheduling", loop=name):
                    pass
                with obs.span("codegen", loop=name):
                    pass
                loop.set("ii", 4 + idx)
                if extra_failure and name == "fir":
                    loop.set("ok", False)
                    loop.set("failed_phase", "codegen")
                else:
                    loop.set("ok", True)
    obs.counter("ops_scheduled").inc(50)
    snapshot = obs.to_dict()
    if slow_loop is not None:
        for span in snapshot["spans"]:
            if span["name"] == "loop" and span["attrs"].get("loop") == slow_loop:
                span["dur"] += 2.0
            if span["name"] == "corpus.evaluate":
                span["dur"] += 2.0
    return snapshot


def _ingest(store, snapshot, **timing_overrides):
    run_id = store.ingest_records(records_from_snapshot(snapshot)).run_id
    if timing_overrides:
        report = {
            "format": "repro.engine-timing.v1",
            "machine": "m", "jobs": 1, "n_loops": 2, "n_failures": 0,
            "wall_seconds": 1.0, "phase_seconds": {},
            "cache": {"enabled": False, "hits": 0, "misses": 0},
            "counters": {}, "resilience": {}, "loops": [], "failures": [],
        }
        report.update(timing_overrides)
        store.ingest_timing_report(report, run_id=run_id)
    return run_id


@pytest.fixture()
def store():
    with RunStore(":memory:") as s:
        yield s


class TestPercentile:
    def test_nearest_rank_on_known_data(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.00) == 100

    def test_single_value_is_every_percentile(self):
        for fraction in (0.01, 0.5, 0.99):
            assert percentile([7.0], fraction) == 7.0

    def test_unsorted_input_is_handled(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestPhaseProfile:
    def test_self_time_ranks_phases(self, store):
        run_id = _ingest(store, _snapshot())
        profile = phase_profile(store, run_id)
        names = [stat.name for stat in profile]
        assert set(names) >= {"corpus.evaluate", "loop", "scheduling"}
        # Every stat is internally consistent.
        for stat in profile:
            assert stat.count >= 1
            assert stat.self_total <= stat.total + 1e-9
            assert stat.p50 <= stat.p95 <= stat.p99 <= stat.max

    def test_sorted_by_self_time_descending(self, store):
        run_id = _ingest(store, _snapshot())
        profile = phase_profile(store, run_id)
        self_totals = [stat.self_total for stat in profile]
        assert self_totals == sorted(self_totals, reverse=True)

    def test_falls_back_to_timing_phases_without_spans(self, store):
        # A timing-only run has no spans: the profile falls back to the
        # report's per-loop phase seconds.
        bare = store.ingest_timing_report({
            "format": "repro.engine-timing.v1",
            "machine": "m", "jobs": 1, "n_loops": 1, "n_failures": 0,
            "wall_seconds": 2.0, "phase_seconds": {},
            "cache": {"enabled": False, "hits": 0, "misses": 0},
            "counters": {}, "resilience": {},
            "loops": [{"index": 0, "loop": "dot", "key": "k",
                       "cache_hit": False, "resumed": False,
                       "seconds": {"scheduling": 1.5, "mindist": 0.2}}],
            "failures": [],
        })
        profile = phase_profile(store, bare.run_id)
        names = [stat.name for stat in profile]
        assert names[0] == "scheduling"


class TestTopLoops:
    def test_wall_ranking_puts_the_slow_loop_first(self, store):
        run_id = _ingest(store, _snapshot(slow_loop="fir"))
        ranked = top_loops(store, run_id, by="wall")
        assert ranked[0]["name"] == "fir"

    def test_every_advertised_key_works(self, store):
        run_id = _ingest(store, _snapshot())
        for key in TOP_KEYS:
            ranked = top_loops(store, run_id, by=key)
            assert isinstance(ranked, list)

    def test_unknown_key_raises(self, store):
        run_id = _ingest(store, _snapshot())
        with pytest.raises(ValueError, match="unknown attribution"):
            top_loops(store, run_id, by="charm")

    def test_n_truncates(self, store):
        run_id = _ingest(store, _snapshot())
        assert len(top_loops(store, run_id, by="wall", n=1)) == 1


class TestDiffRuns:
    def test_self_diff_is_clean(self, store):
        run_id = _ingest(store, _snapshot())
        diff = diff_runs(store, run_id, run_id)
        assert diff.clean
        assert diff.regressions == []
        assert diff.new_failure_kinds == []

    def test_twin_runs_diff_clean(self, store):
        # Two separate traces of the same workload: timing jitter only.
        a = _ingest(store, _snapshot())
        b = _ingest(store, _snapshot())
        diff = diff_runs(store, a, b)
        assert diff.clean

    def test_injected_slowdown_is_flagged_and_attributed(self, store):
        base = _ingest(store, _snapshot())
        slow = _ingest(store, _snapshot(slow_loop="fir"))
        diff = diff_runs(store, base, slow)
        assert not diff.clean
        regressed = {delta.name for delta in diff.regressions}
        assert "loop" in regressed
        # Attribution names the loop that moved, not just the phase.
        movers = [entry["loop"] for entry in diff.slower_loops]
        assert movers and movers[0] == "fir"
        assert diff.slower_loops[0]["delta"] == pytest.approx(2.0, abs=0.1)

    def test_improvement_is_report_only(self, store):
        slow = _ingest(store, _snapshot(slow_loop="fir"))
        fast = _ingest(store, _snapshot())
        diff = diff_runs(store, slow, fast)
        assert diff.clean  # faster is never a regression
        assert any(delta.name == "loop" for delta in diff.improvements)

    def test_new_failure_kind_always_regresses(self, store):
        base = _ingest(store, _snapshot(), failures=[])
        other = _ingest(
            store, _snapshot(extra_failure=True),
            n_failures=1,
            failures=[{"index": 1, "loop": "fir", "phase": "codegen",
                       "error_type": "CodegenError", "message": "x",
                       "kind": "deterministic", "attempts": 1, "detail": {}}],
        )
        diff = diff_runs(store, base, other)
        assert not diff.clean
        assert "deterministic" in diff.new_failure_kinds
        reverse = diff_runs(store, other, base)
        assert "deterministic" in reverse.vanished_failure_kinds
        assert reverse.clean  # vanished kinds never regress

    def test_cache_and_counter_deltas_are_informational(self, store):
        a = _ingest(
            store, _snapshot(),
            cache={"enabled": True, "hits": 0, "misses": 10},
        )
        b = _ingest(
            store, _snapshot(),
            cache={"enabled": True, "hits": 8, "misses": 2},
        )
        diff = diff_runs(store, a, b)
        assert diff.clean
        assert diff.cache_hit_rate["base"] == pytest.approx(0.0)
        assert diff.cache_hit_rate["other"] == pytest.approx(0.8)

    def test_noise_floor_suppresses_tiny_deltas(self, store):
        base = _ingest(store, _snapshot())
        other_snapshot = _snapshot()
        for span in other_snapshot["spans"]:
            if span["name"] == "codegen":
                span["dur"] += 0.001  # 1ms: below any sane floor
        other = _ingest(store, other_snapshot)
        strict = diff_runs(store, base, other, noise_floor=0.0,
                           noise_ratio=0.0)
        lenient = diff_runs(store, base, other)
        assert not strict.clean
        assert lenient.clean


class TestBaseline:
    def test_round_trip_is_clean(self, store):
        run_id = _ingest(store, _snapshot())
        baseline = make_baseline(store, run_id)
        assert baseline["format"] == "repro.obs.baseline.v1"
        assert check_baseline(store, run_id, baseline) == []

    def test_headroom_scales_budgets(self, store):
        run_id = _ingest(store, _snapshot())
        tight = make_baseline(store, run_id, headroom=1.0)
        loose = make_baseline(store, run_id, headroom=10.0)
        # Budgets are rounded to microsecond precision, so compare with
        # a matching absolute tolerance.
        for phase, budget in tight["per_loop_self_seconds"].items():
            assert loose["per_loop_self_seconds"][phase] == pytest.approx(
                budget * 10.0, abs=1e-5
            )

    def test_breach_is_reported(self, store):
        base = _ingest(store, _snapshot())
        baseline = make_baseline(store, base, headroom=1.0)
        slow = _ingest(store, _snapshot(slow_loop="fir"))
        breaches = check_baseline(store, slow, baseline)
        assert breaches
        assert any("loop" in b for b in breaches)

    def test_phases_absent_from_baseline_are_ignored(self, store):
        run_id = _ingest(store, _snapshot())
        baseline = make_baseline(store, run_id)
        baseline["per_loop_self_seconds"] = {"scheduling":
            baseline["per_loop_self_seconds"].get("scheduling", 1.0)}
        assert check_baseline(store, run_id, baseline) == []

    def test_wrong_format_is_itself_a_breach(self, store):
        run_id = _ingest(store, _snapshot())
        breaches = check_baseline(store, run_id, {"format": "nope"})
        assert breaches and "repro.obs.baseline.v1" in breaches[0]
