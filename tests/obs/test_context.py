"""The ObsContext: span nesting, the metrics registry, merge/absorb,
the PhaseTimer/Counters views, and the disabled-context cost contract."""

import json
import timeit

import pytest

from repro.core.stats import Counters
from repro.core.trace import PhaseTimer
from repro.obs import NULL_OBS, Histogram, MetricsRegistry, NullObsContext, ObsContext
from repro.obs.context import _NULL_METRIC, _NULL_SPAN


class TestSpans:
    def test_nesting_records_parent_chain(self):
        obs = ObsContext()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                with obs.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_spans_append_on_exit_innermost_first(self):
        obs = ObsContext()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            assert [s.name for s in obs.spans] == ["inner"]
        assert [s.name for s in obs.spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        obs = ObsContext()
        with obs.span("parent") as parent:
            with obs.span("a") as a:
                pass
            with obs.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_span_ids_are_unique(self):
        obs = ObsContext()
        for _ in range(5):
            with obs.span("x"):
                with obs.span("y"):
                    pass
        ids = [s.span_id for s in obs.spans]
        assert len(ids) == len(set(ids)) == 10

    def test_attrs_via_kwargs_and_set(self):
        obs = ObsContext()
        with obs.span("s", ii=13) as span:
            span.set("steps", 7)
        assert span.attrs == {"ii": 13, "steps": 7}

    def test_non_scalar_attr_rejected(self):
        obs = ObsContext()
        with obs.span("s") as span:
            with pytest.raises(TypeError, match="JSON scalar"):
                span.set("bad", [1, 2])

    def test_duration_charged_even_when_body_raises(self):
        obs = ObsContext()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError
        assert [s.name for s in obs.spans] == ["boom"]
        assert obs.spans[0].dur >= 0.0

    def test_snapshot_is_json_serializable(self):
        obs = ObsContext()
        with obs.span("a", graph="dot"):
            obs.counter("c").inc()
            obs.histogram("h").observe(3)
        json.dumps(obs.to_dict())  # must not raise


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["counters"] == {"c": 5}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.gauge("g").set(9)
        assert reg.snapshot()["gauges"] == {"g": 9}

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (4, 2, 9):
            hist.observe(value)
        assert hist.to_dict() == {"count": 3, "total": 15, "min": 2, "max": 9}

    def test_merge_sums_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h").observe(1)
        b.histogram("h").observe(10)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["histograms"]["h"] == {
            "count": 2, "total": 11, "min": 1, "max": 10,
        }

    def test_merge_is_order_independent(self):
        """The property the byte-identical-across-jobs guarantee rests on."""
        def registry(values):
            reg = MetricsRegistry()
            for v in values:
                reg.counter("c").inc(v)
                reg.histogram("h").observe(v)
            return reg

        parts = [registry([1, 5]), registry([3]), registry([2, 2])]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            forward.merge(part.snapshot())
        for part in reversed(parts):
            backward.merge(part.snapshot())
        assert json.dumps(forward.snapshot(), sort_keys=True) == json.dumps(
            backward.snapshot(), sort_keys=True
        )

    def test_merging_empty_histogram_is_a_no_op(self):
        hist = Histogram()
        hist.observe(5)
        hist.merge(Histogram().to_dict())
        assert hist.to_dict() == {"count": 1, "total": 5, "min": 5, "max": 5}

    def test_snapshot_keys_are_sorted(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]


class TestAbsorb:
    def _worker_snapshot(self):
        worker = ObsContext()
        with worker.span("loop", loop="dot") as loop:
            with worker.span("scheduling"):
                pass
            loop.set("ii", 3)
        worker.counter("sched.loops").inc()
        worker.histogram("loop.ops").observe(12)
        return worker.to_dict()

    def test_ids_remapped_without_collision(self):
        parent = ObsContext()
        with parent.span("corpus.evaluate") as root:
            pass
        parent.absorb(self._worker_snapshot(), parent=root)
        parent.absorb(self._worker_snapshot(), parent=root)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)) == 5

    def test_roots_reparented_and_labeled(self):
        parent = ObsContext()
        with parent.span("corpus.evaluate") as root:
            pass
        parent.absorb(self._worker_snapshot(), parent=root, index=7)
        by_name = {s.name: s for s in parent.spans if s.name != "corpus.evaluate"}
        loop, sched = by_name["loop"], by_name["scheduling"]
        assert loop.parent_id == root.span_id
        assert loop.attrs["index"] == 7 and loop.attrs["ii"] == 3
        assert sched.parent_id == loop.span_id  # child link preserved
        assert "index" not in sched.attrs  # extra attrs only on roots

    def test_absorb_under_currently_open_span(self):
        parent = ObsContext()
        with parent.span("corpus.evaluate") as root:
            parent.absorb(self._worker_snapshot())
        loop = next(s for s in parent.spans if s.name == "loop")
        assert loop.parent_id == root.span_id

    def test_absorb_merges_metrics(self):
        parent = ObsContext()
        parent.counter("sched.loops").inc()
        parent.absorb(self._worker_snapshot())
        snap = parent.metrics.snapshot()
        assert snap["counters"]["sched.loops"] == 2
        assert snap["histograms"]["loop.ops"]["count"] == 1

    def test_absorb_none_is_a_no_op(self):
        parent = ObsContext()
        parent.absorb(None)
        assert parent.spans == []

    def test_absorb_round_trips_through_json(self):
        """The corpus engine ships snapshots between processes as JSON."""
        snapshot = json.loads(json.dumps(self._worker_snapshot()))
        parent = ObsContext()
        parent.absorb(snapshot)
        assert {s.name for s in parent.spans} == {"loop", "scheduling"}


class TestViews:
    def test_timer_view_charges_and_traces(self):
        obs = ObsContext()
        timer = obs.timer()
        with timer.phase("mindist"):
            pass
        with timer.phase("mindist"):
            pass
        assert set(timer.seconds) == {"mindist"}
        assert [s.name for s in obs.spans] == ["mindist", "mindist"]
        assert isinstance(timer, PhaseTimer)

    def test_timer_view_nests_under_open_span(self):
        obs = ObsContext()
        timer = obs.timer()
        with obs.span("loop") as loop:
            with timer.phase("scheduling"):
                pass
        assert obs.spans[0].parent_id == loop.span_id

    def test_absorb_counters_lands_under_algo_prefix(self):
        counters = Counters(ops_scheduled=8, ops_forced=2)
        obs = ObsContext()
        obs.absorb_counters(counters)
        snap = obs.metrics.snapshot()["counters"]
        assert snap["algo.ops_scheduled"] == 8
        assert snap["algo.ops_forced"] == 2


class TestNullContext:
    def test_everything_returns_preallocated_singletons(self):
        obs = NullObsContext()
        assert obs.span("a") is obs.span("b") is _NULL_SPAN
        assert obs.counter("c") is obs.gauge("g") is _NULL_METRIC
        assert obs.histogram("h") is _NULL_METRIC
        assert not obs.enabled and NULL_OBS.enabled is False

    def test_null_span_is_an_inert_context_manager(self):
        with NULL_OBS.span("x", ii=3) as span:
            span.set("k", 1)
        NULL_OBS.counter("c").inc(5)
        NULL_OBS.gauge("g").set(2)
        NULL_OBS.histogram("h").observe(9)
        NULL_OBS.absorb_counters(Counters(ops_scheduled=3))
        NULL_OBS.absorb({"spans": [{"name": "x"}]})
        snapshot = NULL_OBS.to_dict()
        assert snapshot["spans"] == []
        assert snapshot["metrics"]["counters"] == {}

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_OBS.span("x"):
                raise ValueError

    def test_timer_is_a_plain_phase_timer(self):
        timer = NULL_OBS.timer()
        assert type(timer) is PhaseTimer
        with timer.phase("scheduling"):
            pass
        assert "scheduling" in timer.seconds

    def test_disabled_overhead_is_unmeasurable(self):
        """Acceptance criterion: with observability off, the instrumented
        hot path costs one attribute lookup and one call per site — no
        allocation, no branching.  Bound the *absolute* per-site cost
        (min over repeats, generous CI slack) rather than a flaky ratio.
        """
        obs = NULL_OBS
        span = obs.span  # the call sites cache nothing; measure the raw idiom

        def instrumented():
            counter = obs.counter("sched.loops")
            for _ in range(1000):
                with span("schedule.attempt", ii=3) as s:
                    s.set("steps", 7)
                    counter.inc()

        per_call = min(timeit.repeat(instrumented, number=10, repeat=5)) / 1e4
        # Three no-op method calls plus a with-block; anything close to
        # real work (allocation, dict writes, span bookkeeping) would sit
        # orders of magnitude above this bound.
        assert per_call < 20e-6, f"null-obs site costs {per_call * 1e6:.2f}us"

    def test_modulo_schedule_accepts_missing_and_null_obs(self):
        from repro.core import modulo_schedule
        from repro.machine import single_alu_machine
        from tests.conftest import chain_graph

        machine = single_alu_machine()
        graph = chain_graph(machine, ["fadd", "fmul"])
        default = modulo_schedule(graph, machine)
        explicit = modulo_schedule(graph, machine, obs=NULL_OBS)
        assert default.ii == explicit.ii
        assert default.schedule.times == explicit.schedule.times


class TestTracedScheduling:
    """The pipeline emits the spans/metrics the docs promise."""

    def test_schedule_spans_and_metrics(self):
        from repro.core import modulo_schedule
        from repro.machine import cydra5
        from repro.workloads import synthetic_graph

        machine = cydra5()
        graph = synthetic_graph(machine, seed=1)
        obs = ObsContext()
        result = modulo_schedule(graph, machine, obs=obs)
        names = {s.name for s in obs.spans}
        assert {"mii", "mii.res", "mii.rec", "schedule",
                "schedule.attempt"} <= names
        schedule_span = next(s for s in obs.spans if s.name == "schedule")
        assert schedule_span.attrs["ii"] == result.ii
        attempts = [s for s in obs.spans if s.name == "schedule.attempt"]
        assert attempts[-1].attrs["success"] is True
        assert all("budget" in s.attrs for s in attempts)
        snap = obs.metrics.snapshot()
        assert snap["counters"]["sched.loops"] == 1
        assert snap["histograms"]["sched.ii"]["max"] == result.ii

    def test_attempt_spans_follow_the_ii_search(self):
        from repro.core import modulo_schedule
        from repro.core.trace import ScheduleTrace
        from repro.machine import cydra5
        from repro.workloads import synthetic_graph

        machine = cydra5()
        graph = synthetic_graph(machine, seed=4)
        obs = ObsContext()
        trace = ScheduleTrace()
        modulo_schedule(graph, machine, trace=trace, obs=obs)
        span_iis = [
            s.attrs["ii"] for s in obs.spans if s.name == "schedule.attempt"
        ]
        assert span_iis == trace.attempts()
