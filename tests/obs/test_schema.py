"""The ``repro.obs.v2`` schema, its validator, and the CLI checker."""

import json

from repro.obs import ObsContext
from repro.obs.check import check_paths, main
from repro.obs.schema import (
    FORMAT,
    FORMAT_V1,
    content_record_count,
    records_from_snapshot,
    validate_jsonl,
    validate_record,
    validate_records,
    worker_lanes,
)


def _snapshot():
    obs = ObsContext()
    with obs.span("corpus.evaluate", loops=2):
        with obs.span("loop", loop="dot"):
            pass
    obs.counter("engine.loops").inc(2)
    obs.gauge("engine.jobs").set(4)
    obs.histogram("loop.ops").observe(12)
    return obs.to_dict()


class TestRecordsFromSnapshot:
    def test_real_snapshot_validates(self):
        records = records_from_snapshot(_snapshot(), run={"argv": "corpus"})
        assert validate_records(records) == []

    def test_meta_comes_first_with_the_run_payload(self):
        records = records_from_snapshot(_snapshot(), run={"jobs": 4})
        assert records[0] == {
            "format": FORMAT, "type": "meta", "run": {"jobs": 4},
        }
        assert sum(1 for r in records if r["type"] == "meta") == 1

    def test_every_metric_kind_is_emitted(self):
        records = records_from_snapshot(_snapshot())
        kinds = {r["kind"] for r in records if r["type"] == "metric"}
        assert kinds == {"counter", "gauge", "histogram"}


class TestValidateRecord:
    def _span(self, **overrides):
        record = {
            "format": FORMAT, "type": "span", "name": "x", "span_id": 1,
            "parent_id": None, "start": 1.0, "dur": 0.5, "pid": 1,
            "tid": 0, "attrs": {},
        }
        record.update(overrides)
        return record

    def test_good_span_has_no_errors(self):
        assert validate_record(self._span()) == []

    def test_v2_span_requires_a_tid(self):
        record = self._span()
        del record["tid"]
        assert any("tid" in e for e in validate_record(record))

    def test_v1_span_needs_no_tid(self):
        record = self._span(format=FORMAT_V1)
        del record["tid"]
        assert validate_record(record) == []

    def test_wrong_format_marker(self):
        errors = validate_record(self._span(format="repro.obs.v0"))
        assert any("format" in e for e in errors)

    def test_unknown_type(self):
        errors = validate_record({"format": FORMAT, "type": "event"})
        assert any("unknown record type" in e for e in errors)

    def test_non_object_record(self):
        assert validate_record([1, 2]) == ["record is list, not an object"]

    def test_span_missing_field(self):
        record = self._span()
        del record["dur"]
        assert any("dur" in e for e in validate_record(record))

    def test_negative_duration_rejected(self):
        errors = validate_record(self._span(dur=-0.1))
        assert any("negative" in e for e in errors)

    def test_string_parent_rejected(self):
        errors = validate_record(self._span(parent_id="root"))
        assert any("parent_id" in e for e in errors)

    def test_unknown_metric_kind(self):
        record = {
            "format": FORMAT, "type": "metric", "kind": "meter",
            "name": "x", "value": 1,
        }
        assert any("metric kind" in e for e in validate_record(record))

    def test_boolean_metric_value_rejected(self):
        record = {
            "format": FORMAT, "type": "metric", "kind": "counter",
            "name": "x", "value": True,
        }
        assert any("number" in e for e in validate_record(record))

    def test_histogram_value_must_carry_the_summary_fields(self):
        record = {
            "format": FORMAT, "type": "metric", "kind": "histogram",
            "name": "h", "value": {"count": 1},
        }
        assert any("count/total/min/max" in e for e in validate_record(record))


class TestValidateRecords:
    def test_empty_stream_is_invalid(self):
        assert validate_records([]) == ["no records"]

    def test_meta_must_come_first(self):
        records = records_from_snapshot(_snapshot())
        shuffled = records[1:] + records[:1]
        assert any("meta" in e for e in validate_records(shuffled))

    def test_duplicate_span_ids_detected(self):
        records = records_from_snapshot(_snapshot())
        spans = [r for r in records if r["type"] == "span"]
        records.append(dict(spans[0]))
        assert any("duplicate span_id" in e for e in validate_records(records))

    def test_dangling_parent_detected(self):
        records = records_from_snapshot(_snapshot())
        for record in records:
            if record["type"] == "span" and record["parent_id"] is not None:
                record["parent_id"] = 999
        assert any(
            "names no span" in e for e in validate_records(records)
        )

    def test_jsonl_flags_undecodable_lines(self):
        records = records_from_snapshot(_snapshot())
        text = "\n".join(json.dumps(r) for r in records) + "\n{oops\n"
        errors = validate_jsonl(text)
        assert any("not JSON" in e for e in errors)

    def test_mixed_format_markers_rejected(self):
        records = records_from_snapshot(_snapshot())
        for record in records:
            if record["type"] == "metric":
                record["format"] = FORMAT_V1
        assert any(
            "mixed format markers" in e for e in validate_records(records)
        )

    def test_pure_v1_stream_still_validates(self):
        records = records_from_snapshot(_snapshot())
        for record in records:
            record["format"] = FORMAT_V1
            record.pop("tid", None)
        assert validate_records(records) == []


class TestWorkerLanes:
    def test_root_pid_is_lane_zero_and_workers_sort(self):
        spans = [
            {"span_id": 1, "parent_id": None, "pid": 500},
            {"span_id": 2, "parent_id": 1, "pid": 77},
            {"span_id": 3, "parent_id": 1, "pid": 901},
        ]
        assert worker_lanes(spans) == {500: 0, 77: 1, 901: 2}

    def test_lanes_survive_pid_renumbering_shape(self):
        # Same topology, recycled pids: lanes keep the same structure.
        def lanes(root, workers):
            spans = [{"span_id": 1, "parent_id": None, "pid": root}] + [
                {"span_id": i + 2, "parent_id": 1, "pid": pid}
                for i, pid in enumerate(workers)
            ]
            return sorted(worker_lanes(spans).values())

        assert lanes(10, [20, 30]) == lanes(99, [3, 7]) == [0, 1, 2]

    def test_snapshot_spans_all_get_tids(self):
        records = records_from_snapshot(_snapshot())
        spans = [r for r in records if r["type"] == "span"]
        assert spans and all(isinstance(r["tid"], int) for r in spans)


class TestChecker:
    """`python -m repro.obs.check` — also the CI smoke gate."""

    def _write(self, tmp_path, name="obs.jsonl", text=None):
        if text is None:
            records = records_from_snapshot(_snapshot(), run={})
            text = "".join(json.dumps(r) + "\n" for r in records)
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_valid_file_passes(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert check_paths([path]) == 0
        assert "OK (" in capsys.readouterr().err

    def test_invalid_file_reports_errors(self, tmp_path, capsys):
        path = self._write(tmp_path, text='{"format": "nope"}\n')
        assert check_paths([path]) == 1
        assert "format" in capsys.readouterr().err

    def test_unreadable_file_counts_as_invalid(self, tmp_path, capsys):
        assert check_paths([tmp_path / "missing.jsonl"]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_main_exit_codes(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.jsonl")
        bad = self._write(tmp_path, "bad.jsonl", text="{}\n")
        assert main([str(good)]) == 0
        assert main([str(good), str(bad)]) == 1
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_empty_file_fails_with_exit_2(self, tmp_path, capsys):
        path = self._write(tmp_path, "empty.jsonl", text="")
        assert check_paths([path]) == 2
        assert "empty export" in capsys.readouterr().err

    def test_meta_only_file_fails_with_exit_2(self, tmp_path, capsys):
        meta = {"format": FORMAT, "type": "meta", "run": {}}
        path = self._write(
            tmp_path, "hollow.jsonl", text=json.dumps(meta) + "\n"
        )
        assert content_record_count([meta]) == 0
        assert check_paths([path]) == 2
        assert "meta-only export" in capsys.readouterr().err

    def test_invalid_outranks_empty(self, tmp_path, capsys):
        empty = self._write(tmp_path, "empty.jsonl", text="")
        bad = self._write(tmp_path, "bad.jsonl", text="{}\n")
        assert check_paths([empty, bad]) == 1
        capsys.readouterr()

    def test_mixed_good_and_empty_still_fails(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.jsonl")
        empty = self._write(tmp_path, "empty.jsonl", text="")
        assert check_paths([good, empty]) == 2
        capsys.readouterr()
