"""Reservation tables: kinds, validation, Figure-1 rendering."""

import pytest

from repro.machine import ReservationTable, TableKind, render_reservation_tables


class TestKinds:
    def test_simple_table(self):
        table = ReservationTable("alu", [("alu", 0)])
        assert table.kind is TableKind.SIMPLE

    def test_block_table(self):
        table = ReservationTable("div", [("div", 0), ("div", 1), ("div", 2)])
        assert table.kind is TableKind.BLOCK

    def test_multi_resource_is_complex(self):
        table = ReservationTable("alu", [("stage0", 0), ("stage1", 1)])
        assert table.kind is TableKind.COMPLEX

    def test_non_contiguous_single_resource_is_complex(self):
        table = ReservationTable("mem", [("port", 0), ("port", 19)])
        assert table.kind is TableKind.COMPLEX

    def test_single_resource_not_starting_at_issue_is_complex(self):
        table = ReservationTable("bus", [("bus", 3)])
        assert table.kind is TableKind.COMPLEX


class TestValidation:
    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ReservationTable("x", [])

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ReservationTable("x", [("r", -1)])

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError):
            ReservationTable("x", [("r", 0), ("r", 0)])

    def test_uses_are_normalized_sorted(self):
        table = ReservationTable("x", [("b", 1), ("a", 0)])
        assert table.uses == (("a", 0), ("b", 1))


class TestProperties:
    def test_span(self):
        table = ReservationTable("x", [("r", 0), ("s", 4)])
        assert table.span == 5

    def test_resources_sorted_unique(self):
        table = ReservationTable("x", [("b", 0), ("a", 1), ("b", 2)])
        assert table.resources == ("a", "b")

    def test_usage_count(self):
        table = ReservationTable("x", [("r", 0), ("r", 2), ("s", 1)])
        assert table.usage_count() == {"r": 2, "s": 1}


class TestRender:
    def test_render_marks_cells(self):
        add = ReservationTable(
            "alu", [("src", 0), ("stage", 1), ("result", 3)]
        )
        text = add.render()
        assert "src" in text and "result" in text
        assert "X" in text

    def test_side_by_side_render_aligns_shared_resources(self):
        add = ReservationTable("alu", [("src", 0), ("result", 3)])
        mul = ReservationTable("mul", [("src", 0), ("result", 4)])
        text = render_reservation_tables([add, mul])
        # Five time rows (0..4) plus header lines.
        assert text.count("\n") >= 6
        assert "result" in text
