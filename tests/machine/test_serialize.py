"""Machine description serialization round trips."""

import pytest

from repro.core import modulo_schedule, validate_schedule
from repro.machine import (
    MachineError,
    bus_conflict_machine,
    cydra5,
    machine_from_dict,
    machine_from_json,
    machine_to_dict,
    machine_to_json,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)

_ALL = [
    cydra5,
    single_alu_machine,
    two_alu_machine,
    superscalar_machine,
    bus_conflict_machine,
]


class TestRoundTrip:
    @pytest.mark.parametrize("factory", _ALL)
    def test_describe_identical(self, factory):
        machine = factory()
        clone = machine_from_json(machine_to_json(machine))
        assert clone.describe() == machine.describe()

    @pytest.mark.parametrize("factory", _ALL)
    def test_tables_identical(self, factory):
        machine = factory()
        clone = machine_from_dict(machine_to_dict(machine))
        for name in machine.opcode_names:
            original = machine.opcode(name)
            copied = clone.opcode(name)
            assert copied.latency == original.latency
            assert copied.commutative == original.commutative
            assert [a.uses for a in copied.alternatives] == [
                a.uses for a in original.alternatives
            ]

    def test_reloaded_machine_schedules_identically(self):
        from tests.conftest import reduction_graph

        machine = cydra5()
        clone = machine_from_json(machine_to_json(machine))
        graph = reduction_graph(clone)
        result = modulo_schedule(graph, clone)
        assert validate_schedule(graph, clone, result.schedule) == []
        reference = modulo_schedule(reduction_graph(machine), machine)
        assert result.ii == reference.ii

    def test_bad_format_rejected(self):
        with pytest.raises(MachineError):
            machine_from_dict({"format": "nope"})

    def test_json_is_indentable(self):
        text = machine_to_json(single_alu_machine(), indent=2)
        assert text.startswith("{\n")
