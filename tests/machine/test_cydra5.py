"""The reconstructed Cydra 5: Table 2's functional units and latencies."""

import pytest

from repro.machine import TableKind, cydra5


@pytest.fixture(scope="module")
def machine():
    return cydra5()


class TestTable2Latencies:
    """Latencies as published in Table 2 of the paper."""

    @pytest.mark.parametrize(
        "opcode, latency",
        [
            ("load", 20),
            ("aadd", 3),
            ("asub", 3),
            ("fadd", 4),
            ("fsub", 4),
            ("fmul", 5),
            ("mul", 5),
            ("fdiv", 22),
            ("fsqrt", 26),
            ("brtop", 3),
        ],
    )
    def test_latency(self, machine, opcode, latency):
        assert machine.latency(opcode) == latency


class TestUnitCounts:
    def test_two_memory_ports(self, machine):
        assert machine.opcode("load").n_alternatives == 2
        assert machine.opcode("store").n_alternatives == 2

    def test_two_address_alus(self, machine):
        assert machine.opcode("aadd").n_alternatives == 2

    def test_single_adder_and_multiplier(self, machine):
        assert machine.opcode("fadd").n_alternatives == 1
        assert machine.opcode("fmul").n_alternatives == 1

    def test_predicate_ops_run_on_memory_ports(self, machine):
        alt_names = {a.name for a in machine.opcode("cmp_lt").alternatives}
        assert alt_names == {"mem_port0", "mem_port1"}


class TestReservationTableShapes:
    def test_load_table_is_complex(self, machine):
        for alt in machine.opcode("load").alternatives:
            assert alt.kind is TableKind.COMPLEX

    def test_load_reoccupies_port_at_return(self, machine):
        alt = machine.opcode("load").alternatives[0]
        offsets = sorted(t for _, t in alt.uses)
        assert offsets == [0, 19]

    def test_adder_and_multiplier_share_result_bus(self, machine):
        add_resources = set(machine.opcode("fadd").alternatives[0].resources)
        mul_resources = set(machine.opcode("fmul").alternatives[0].resources)
        assert "fp_result_bus" in add_resources & mul_resources

    def test_figure1_style_result_bus_collision(self, machine):
        """An add issued one cycle after a multiply collides on the bus."""
        add = machine.opcode("fadd").alternatives[0]
        mul = machine.opcode("fmul").alternatives[0]
        add_bus = dict((r, t) for r, t in add.uses)["fp_result_bus"]
        mul_bus = dict((r, t) for r, t in mul.uses)["fp_result_bus"]
        assert mul_bus - add_bus == 1

    def test_divide_blocks_the_multiplier(self, machine):
        table = machine.opcode("fdiv").alternatives[0]
        stage_uses = [t for r, t in table.uses if r == "mul_stage0"]
        assert len(stage_uses) >= 8  # many consecutive cycles
        assert stage_uses == list(range(len(stage_uses)))

    def test_store_table_is_simple(self, machine):
        for alt in machine.opcode("store").alternatives:
            assert alt.kind is TableKind.SIMPLE

    def test_census_contains_all_three_kinds(self, machine):
        census = machine.table_kind_census()
        assert census[TableKind.SIMPLE] > 0
        assert census[TableKind.COMPLEX] > 0

    def test_cached_singleton(self):
        assert cydra5() is cydra5()
