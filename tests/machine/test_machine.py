"""Machine descriptions and opcodes: validation and lookups."""

import pytest

from repro.machine import MachineDescription, MachineError, Opcode, ReservationTable


def _alu_table():
    return ReservationTable("alu", [("alu", 0)])


class TestOpcode:
    def test_requires_alternatives(self):
        with pytest.raises(ValueError):
            Opcode("fadd", 1, [])

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            Opcode("fadd", -1, [_alu_table()])

    def test_rejects_duplicate_alternative_names(self):
        with pytest.raises(ValueError):
            Opcode("fadd", 1, [_alu_table(), _alu_table()])

    def test_n_alternatives(self):
        table2 = ReservationTable("alu2", [("alu2", 0)])
        assert Opcode("fadd", 1, [_alu_table(), table2]).n_alternatives == 2


class TestMachineDescription:
    def test_unknown_resource_in_table_rejected(self):
        opcode = Opcode("fadd", 1, [_alu_table()])
        with pytest.raises(MachineError):
            MachineDescription("m", ["other"], [opcode])

    def test_duplicate_resources_rejected(self):
        with pytest.raises(MachineError):
            MachineDescription("m", ["alu", "alu"], [])

    def test_duplicate_opcodes_rejected(self):
        opcode = Opcode("fadd", 1, [_alu_table()])
        with pytest.raises(MachineError):
            MachineDescription("m", ["alu"], [opcode, opcode])

    def test_lookup_and_latency(self):
        machine = MachineDescription(
            "m", ["alu"], [Opcode("fadd", 4, [_alu_table()])]
        )
        assert machine.latency("fadd") == 4
        assert machine.opcode("fadd").name == "fadd"
        assert machine.has_opcode("fadd")
        assert not machine.has_opcode("fmul")

    def test_unknown_opcode_raises_machine_error(self):
        machine = MachineDescription("m", ["alu"], [])
        with pytest.raises(MachineError):
            machine.latency("fadd")

    def test_describe_lists_opcodes(self):
        machine = MachineDescription(
            "m", ["alu"], [Opcode("fadd", 4, [_alu_table()])]
        )
        assert "fadd" in machine.describe()

    def test_table_kind_census(self):
        from repro.machine import TableKind

        complex_table = ReservationTable("c", [("alu", 0), ("bus", 2)])
        machine = MachineDescription(
            "m",
            ["alu", "bus"],
            [
                Opcode("fadd", 1, [_alu_table()]),
                Opcode("fmul", 2, [complex_table]),
            ],
        )
        census = machine.table_kind_census()
        assert census[TableKind.SIMPLE] == 1
        assert census[TableKind.COMPLEX] == 1
