"""The small machines: coverage of the table-kind spectrum."""

import pytest

from repro.machine import (
    TableKind,
    bus_conflict_machine,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)


class TestUniformMachines:
    def test_single_alu_has_one_alternative_everywhere(self):
        machine = single_alu_machine()
        for name in machine.opcode_names:
            assert machine.opcode(name).n_alternatives == 1

    def test_two_alu_has_two_alternatives_everywhere(self):
        machine = two_alu_machine()
        for name in machine.opcode_names:
            assert machine.opcode(name).n_alternatives == 2

    def test_superscalar_has_four_units(self):
        machine = superscalar_machine()
        assert machine.opcode("fadd").n_alternatives == 4

    def test_all_tables_simple(self):
        for machine in (single_alu_machine(), two_alu_machine()):
            census = machine.table_kind_census()
            assert census[TableKind.BLOCK] == 0
            assert census[TableKind.COMPLEX] == 0

    def test_front_end_opcode_coverage(self):
        """Every opcode the lowering pass can emit exists on all machines."""
        needed = {
            "load", "store", "fadd", "fsub", "fmul", "fdiv", "fsqrt",
            "fabs", "fneg", "fmin", "fmax", "select", "copy", "limm",
            "aadd", "cmp_lt", "cmp_le", "cmp_eq", "cmp_ne", "cmp_gt",
            "cmp_ge", "pand", "por", "pnot", "brtop",
        }
        for machine in (
            single_alu_machine(),
            two_alu_machine(),
            superscalar_machine(),
        ):
            missing = needed - set(machine.opcode_names)
            assert not missing, (machine.name, missing)


class TestFigure1Machine:
    def test_source_buses_shared_on_issue(self):
        machine = bus_conflict_machine()
        add = machine.opcode("fadd").alternatives[0]
        mul = machine.opcode("fmul").alternatives[0]
        add_issue = {r for r, t in add.uses if t == 0}
        mul_issue = {r for r, t in mul.uses if t == 0}
        assert add_issue & mul_issue  # same-cycle issue collides

    def test_result_bus_offsets_match_figure1(self):
        machine = bus_conflict_machine()
        add = dict(machine.opcode("fadd").alternatives[0].uses)
        mul = dict(machine.opcode("fmul").alternatives[0].uses)
        assert add["result_bus"] == 3
        assert mul["result_bus"] == 4

    def test_latencies_match_figure1(self):
        machine = bus_conflict_machine()
        assert machine.latency("fadd") == 4
        assert machine.latency("fmul") == 5

    def test_tables_are_complex(self):
        machine = bus_conflict_machine()
        assert (
            machine.opcode("fadd").alternatives[0].kind is TableKind.COMPLEX
        )
