"""Mask compilation of reservation tables and the per-(machine, II) cache."""

import pytest

from repro.machine import ReservationTable, cydra5
from repro.machine.machine import _MASK_SET_CACHE
from repro.machine.resources import (
    CompiledAlternative,
    compile_alternative,
    compile_linear_uses,
)

ROWS = {"a": 0, "b": 1}


class TestCompileAlternative:
    def test_slot_masks_encode_row_times_ii_plus_slot(self):
        table = ReservationTable("t", [("a", 0), ("b", 2)])
        compiled = compile_alternative(table, ROWS, ii=4)
        # Bit 1 + row*II + slot (bit 0 is the sentinel).
        # Issue slot 0: a@slot0 -> bit 1, b@slot2 -> bit 1+1*4+2 = 7.
        assert compiled.slot_masks[0] == (1 << 1) | (1 << 7)
        # Issue slot 3: a@slot3 -> bit 4, b@slot(3+2)%4=1 -> bit 6.
        assert compiled.slot_masks[3] == (1 << 4) | (1 << 6)
        assert len(compiled.slot_masks) == 4
        assert not compiled.self_conflicting

    def test_offsets_fold_modulo_ii(self):
        table = ReservationTable("t", [("a", 7)])
        compiled = compile_alternative(table, ROWS, ii=3)
        assert compiled.slot_masks[0] == 1 << (1 + 7 % 3)

    def test_self_conflict_detected_at_compile_time(self):
        table = ReservationTable("t", [("a", 0), ("a", 6)])
        assert compile_alternative(table, ROWS, ii=3).self_conflicting
        assert compile_alternative(table, ROWS, ii=6).self_conflicting
        assert not compile_alternative(table, ROWS, ii=4).self_conflicting

    def test_sentinel_bit_marks_self_conflicting_masks(self):
        """Self-conflicting tables carry the always-occupied sentinel in
        every slot mask; placeable tables never touch it."""
        clean = compile_alternative(
            ReservationTable("t", [("a", 0), ("a", 6)]), ROWS, ii=4
        )
        folded = compile_alternative(
            ReservationTable("t", [("a", 0), ("a", 6)]), ROWS, ii=3
        )
        assert all(mask & 1 == 0 for mask in clean.slot_masks)
        assert all(mask & 1 for mask in folded.slot_masks)

    def test_wraps_the_source_table(self):
        table = ReservationTable("t", [("a", 0)])
        compiled = compile_alternative(table, ROWS, ii=2)
        assert type(compiled) is CompiledAlternative
        assert compiled.table is table
        assert compiled.name == table.name
        assert compiled.uses == table.uses

    def test_rejects_ii_below_one(self):
        table = ReservationTable("t", [("a", 0)])
        with pytest.raises(ValueError):
            compile_alternative(table, ROWS, ii=0)

    def test_linear_compilation_keeps_absolute_offsets(self):
        table = ReservationTable("t", [("a", 0), ("a", 5), ("b", 2)])
        pairs = dict(compile_linear_uses(table, ROWS))
        assert pairs[0] == (1 << 0) | (1 << 5)
        assert pairs[1] == 1 << 2


class TestMaskSetCache:
    def test_equal_machines_share_one_compile(self):
        from repro.machine.serialize import machine_from_dict, machine_to_dict

        left = cydra5()
        right = machine_from_dict(machine_to_dict(left))
        assert left is not right
        assert left.content_key == right.content_key
        assert left.compiled_masks(4) is right.compiled_masks(4)

    def test_distinct_iis_compile_separately(self):
        machine = cydra5()
        assert machine.compiled_masks(3) is not machine.compiled_masks(4)
        assert machine.compiled_masks(3) is machine.compiled_masks(3)

    def test_cache_is_content_addressed(self):
        machine = cydra5()
        mask_set = machine.compiled_masks(5)
        assert _MASK_SET_CACHE[(machine.content_key, 5)] is mask_set

    def test_rows_follow_machine_declaration_order(self):
        machine = cydra5()
        mask_set = machine.compiled_masks(4)
        assert mask_set.row_names == machine.resources
        assert [mask_set.rows[name] for name in machine.resources] == list(
            range(len(machine.resources))
        )

    def test_feasible_filters_self_conflicting_alternatives(self):
        machine = cydra5()
        # A Cydra 5 load holds its memory port at issue and at data
        # return; at an II equal to that return offset the table folds
        # onto itself and must be compiled out of the feasible set.
        load = machine.opcode("load").alternatives[0]
        offsets = [offset for _, offset in load.uses]
        folding_ii = max(offsets) - min(offsets)
        mask_set = machine.compiled_masks(folding_ii)
        assert len(mask_set.feasible("load")) < len(
            mask_set.alternatives("load")
        )
        for opcode in machine.opcode_names:
            for compiled in mask_set.feasible(opcode):
                assert not compiled.self_conflicting
