"""MII computation: ResMII bin-packing, RecMII search, combination."""

import pytest

from repro.core import Counters, MinDistMemo, compute_mii, rec_mii, res_mii
from repro.core.mindist import schedule_length_lower_bound
from repro.ir import DependenceGraph, DependenceKind, GraphError
from repro.machine import (
    cydra5,
    single_alu_machine,
    two_alu_machine,
)

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


@pytest.fixture
def two(request):
    return two_alu_machine()


class TestResMII:
    def test_single_resource_counts_operations(self, alu):
        graph = chain_graph(alu, ["fadd"] * 5)
        assert res_mii(graph, alu) == 5

    def test_two_alternatives_halve_the_bound(self, two):
        graph = chain_graph(two, ["fadd"] * 6)
        assert res_mii(graph, two) == 3

    def test_odd_count_rounds_up_via_packing(self, two):
        graph = chain_graph(two, ["fadd"] * 5)
        assert res_mii(graph, two) == 3

    def test_minimum_is_one(self, alu):
        graph = DependenceGraph(alu).seal()
        assert res_mii(graph, alu) == 1

    def test_pseudo_ops_use_no_resources(self, alu):
        graph = chain_graph(alu, ["fadd"])
        assert res_mii(graph, alu) == 1

    def test_cydra_load_costs_two_port_cycles(self):
        machine = cydra5()
        graph = chain_graph(machine, ["load", "load"])
        # Each load holds its port at issue and at data return; two loads
        # across two ports leave the peak at 2.
        assert res_mii(graph, machine) == 2

    def test_fewer_alternatives_packed_first(self):
        """Ops with one alternative are placed before flexible ones."""
        machine = cydra5()
        graph = DependenceGraph(machine)
        graph.add_operation("fadd")  # adder only
        graph.add_operation("aadd")  # two address ALUs
        graph.add_operation("aadd")
        graph.seal()
        # The two aadds spread across aalu0/aalu1; peak stays 1.
        assert res_mii(graph, machine) == 1

    def test_counters_count_resource_inspections(self, alu):
        graph = chain_graph(alu, ["fadd", "fadd"])
        counters = Counters()
        res_mii(graph, alu, counters)
        assert counters.resmii_steps >= 2


class TestRecMII:
    def test_no_recurrence_gives_one(self, alu):
        graph = chain_graph(alu, ["fadd"] * 4)
        assert rec_mii(graph) == 1

    def test_self_loop_ceiling(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fmul")  # latency 3
        graph.add_edge(a, a, DependenceKind.FLOW, distance=2)
        graph.seal()
        assert rec_mii(graph) == 2  # ceil(3/2)

    def test_two_op_circuit(self, alu):
        # delay around circuit = 1 + 3 = 4, distance 2 => RecMII 2.
        graph = cross_iteration_graph(alu, distance=2)
        assert rec_mii(graph) == 2

    def test_distance_one_circuit(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        assert rec_mii(graph) == 4

    def test_start_seeds_the_search(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        assert rec_mii(graph, start=10) == 10

    def test_zero_distance_circuit_rejected(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(b, a, DependenceKind.FLOW)  # distance 0 back edge
        graph.seal()
        with pytest.raises(GraphError):
            rec_mii(graph)

    def test_zero_distance_self_loop_rejected(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd")
        graph.seal()
        # Build via a fresh graph since seal() froze the first one.
        graph2 = DependenceGraph(alu)
        b = graph2.add_operation("fadd")
        graph2.add_edge(b, b, DependenceKind.FLOW, distance=0, delay=1)
        graph2.seal()
        with pytest.raises(GraphError):
            rec_mii(graph2)

    def test_multiple_sccs_take_worst(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd", dest="a")
        b = graph.add_operation("fmul", dest="b")
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(b, a, DependenceKind.FLOW, distance=1)  # RecMII 4
        c = graph.add_operation("fmul", dest="c")
        graph.add_edge(c, c, DependenceKind.FLOW, distance=3)  # ceil(3/3)=1
        graph.seal()
        assert rec_mii(graph) == 4


class TestComputeMII:
    def test_mii_is_max_of_both_bounds(self, alu):
        graph = reduction_graph(alu)  # ResMII 2 (2 ops), RecMII 1
        result = compute_mii(graph, alu)
        assert result.res_mii == 2
        assert result.rec_mii == 1
        assert result.mii == 2

    def test_recurrence_dominates(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        result = compute_mii(graph, alu)
        assert result.mii == result.rec_mii == 4
        assert result.res_mii == 2

    def test_production_mode_matches_exact_mii(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        exact = compute_mii(graph, alu, exact=True)
        fast = compute_mii(graph, alu, exact=False)
        assert exact.mii == fast.mii
        assert not fast.rec_mii_exact

    def test_nontrivial_scc_count(self, alu):
        graph = cross_iteration_graph(alu)
        result = compute_mii(graph, alu)
        assert result.n_nontrivial_sccs == 1
        assert max(result.scc_sizes) == 2

    def test_requires_sealed_graph(self, alu):
        graph = DependenceGraph(alu)
        graph.add_operation("fadd")
        with pytest.raises(GraphError):
            compute_mii(graph, alu)

    def test_doubling_then_binary_search_finds_exact_value(self, alu):
        """A long circuit forces several doubling steps; the answer must
        still be exact."""
        graph = DependenceGraph(alu)
        ops = [graph.add_operation("fdiv", dest=f"v{i}") for i in range(4)]
        for left, right in zip(ops, ops[1:]):
            graph.add_edge(left, right, DependenceKind.FLOW)
        graph.add_edge(ops[-1], ops[0], DependenceKind.FLOW, distance=1)
        graph.seal()
        # Circuit delay = 4 * 8 = 32 at distance 1.
        assert rec_mii(graph) == 32


class TestMinDistMemoization:
    def test_warm_memo_recomputes_nothing(self, alu):
        """A second RecMII search over the same fw memo performs zero
        fresh ComputeMinDist passes — every probe is a cache hit."""
        graph = cross_iteration_graph(alu, distance=1)
        memo = MinDistMemo(graph, impl="fw")
        cold = Counters()
        assert rec_mii(graph, counters=cold, memo=memo) == 4
        assert cold.mindist_invocations > 0
        assert memo.misses == cold.mindist_invocations
        warm = Counters()
        assert rec_mii(graph, counters=warm, memo=memo) == 4
        assert warm.mindist_invocations == 0
        assert memo.hits >= memo.misses

    def test_warm_parametric_memo_recomputes_nothing(self, alu):
        """Under the parametric default the closure is built exactly once
        (the only miss); a warm RecMII does no fresh N³-equivalent work."""
        graph = cross_iteration_graph(alu, distance=1)
        memo = MinDistMemo(graph, impl="parametric")
        cold = Counters()
        assert rec_mii(graph, counters=cold, memo=memo) == 4
        assert cold.mindist_invocations == 0
        assert cold.mindist_closure_inner > 0
        assert memo.misses == 1
        warm = Counters()
        assert rec_mii(graph, counters=warm, memo=memo) == 4
        assert warm.mindist_closure_inner == 0
        assert memo.misses == 1
        assert memo.hits >= 1

    def test_compute_mii_carries_the_memo_out(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        result = compute_mii(graph, alu)
        assert result.mindist_memo is not None
        assert result.mindist_memo.graph is graph
        assert result.mindist_memo.misses > 0

    def test_bound_reuses_feasible_ii_matrices(self, alu):
        """Repeated schedule-length bounds at one II cost one whole-graph
        Floyd-Warshall pass in total when the fw MII memo is passed back."""
        graph = cross_iteration_graph(alu, distance=1)
        result = compute_mii(graph, alu, mindist_impl="fw")
        memo = result.mindist_memo
        counters = Counters()
        first = schedule_length_lower_bound(
            graph, result.mii, counters, memo=memo
        )
        after_first = counters.mindist_invocations
        assert after_first == 1
        second = schedule_length_lower_bound(
            graph, result.mii, counters, memo=memo
        )
        assert second == first
        assert counters.mindist_invocations == after_first
        assert memo.hits >= 1

    def test_bound_materializes_from_the_parametric_closure(self, alu):
        """Under the parametric default a bound at a fresh II is one
        O(N²·P) evaluation of the already-closed envelope — no new
        Floyd-Warshall pass — and repeating it is an entry cache hit."""
        graph = cross_iteration_graph(alu, distance=1)
        result = compute_mii(graph, alu, mindist_impl="parametric")
        memo = result.mindist_memo
        counters = Counters()
        first = schedule_length_lower_bound(
            graph, result.mii, counters, memo=memo
        )
        assert counters.mindist_invocations == 0
        assert counters.mindist_parametric_evals == 1
        second = schedule_length_lower_bound(
            graph, result.mii, counters, memo=memo
        )
        assert second == first
        assert counters.mindist_parametric_evals == 1
        assert memo.hits >= 1

    def test_memo_for_another_graph_is_ignored(self, alu):
        stale = MinDistMemo(cross_iteration_graph(alu, distance=2))
        graph = cross_iteration_graph(alu, distance=1)
        counters = Counters()
        bound = schedule_length_lower_bound(graph, 4, counters, memo=stale)
        assert bound == schedule_length_lower_bound(graph, 4)
        assert counters.mindist_invocations == 1
        assert not stale.hits and not stale.misses

    def test_mindist_cache_hits_metric_emitted(self, alu):
        from repro.obs import ObsContext

        obs = ObsContext()
        graph = cross_iteration_graph(alu, distance=1)
        compute_mii(graph, alu, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert "mii.mindist_cache_hits" in counters
        assert counters["mii.mindist_cache_hits"] >= 0

    def test_whole_graph_ablation_measures_real_work_by_default(self, alu):
        """rec_mii_whole_graph must not silently share a memo — each call
        without one pays the full ComputeMinDist cost (the Section 2.2
        ablation depends on this)."""
        from repro.core.mii import rec_mii_whole_graph

        graph = cross_iteration_graph(alu, distance=1)
        first, second = Counters(), Counters()
        assert rec_mii_whole_graph(graph, counters=first) == 4
        assert rec_mii_whole_graph(graph, counters=second) == 4
        assert second.mindist_invocations == first.mindist_invocations > 0
