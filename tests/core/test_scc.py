"""SCC identification: correctness and emission order."""

import pytest

from repro.core import Counters, condensation_order, strongly_connected_components
from repro.core.scc import nontrivial_components
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def machine():
    return single_alu_machine()


def _component_sets(components):
    return [frozenset(c) for c in components]


class TestBasics:
    def test_chain_has_only_trivial_components(self, machine):
        graph = chain_graph(machine, ["fadd", "fmul", "fadd"])
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == graph.n_ops

    def test_recurrence_forms_trivial_self_component(self, machine):
        graph = reduction_graph(machine)
        components = _component_sets(strongly_connected_components(graph))
        # The self-loop on the accumulator is still a singleton SCC.
        assert frozenset({2}) in components

    def test_two_op_circuit_is_one_component(self, machine):
        graph = cross_iteration_graph(machine)
        components = _component_sets(strongly_connected_components(graph))
        assert frozenset({1, 2}) in components

    def test_every_operation_in_exactly_one_component(self, machine):
        graph = cross_iteration_graph(machine)
        components = strongly_connected_components(graph)
        seen = [op for c in components for op in c]
        assert sorted(seen) == list(range(graph.n_ops))


class TestOrdering:
    def test_reverse_topological_emission(self, machine):
        graph = chain_graph(machine, ["fadd", "fmul"])
        components = strongly_connected_components(graph)
        position = {frozenset(c): i for i, c in enumerate(map(frozenset, components))}
        # STOP (a successor of everything) must be emitted before START.
        assert position[frozenset({graph.stop})] < position[frozenset({graph.START})]

    def test_condensation_order_is_reversed(self, machine):
        graph = chain_graph(machine, ["fadd"])
        forward = condensation_order(graph)
        backward = strongly_connected_components(graph)
        assert forward == list(reversed(backward))

    def test_successor_component_before_predecessor(self, machine):
        graph = cross_iteration_graph(machine)
        components = list(map(frozenset, strongly_connected_components(graph)))
        scc_index = components.index(frozenset({1, 2}))
        stop_index = components.index(frozenset({graph.stop}))
        assert stop_index < scc_index


class TestHelpers:
    def test_nontrivial_filter(self, machine):
        graph = cross_iteration_graph(machine)
        nontrivial = nontrivial_components(
            strongly_connected_components(graph)
        )
        assert nontrivial == [sorted(nontrivial[0])] or len(nontrivial) == 1

    def test_counters_accumulate(self, machine):
        graph = chain_graph(machine, ["fadd", "fadd"])
        counters = Counters()
        strongly_connected_components(graph, counters)
        assert counters.scc_steps >= graph.n_ops

    def test_large_chain_does_not_recurse(self, machine):
        # An iterative implementation must handle graphs deeper than
        # Python's recursion limit.
        graph = chain_graph(machine, ["fadd"] * 2000)
        components = strongly_connected_components(graph)
        assert len(components) == graph.n_ops
