"""Schedule objects: stages, kernel layout, rendering."""

import pytest

from repro.core import modulo_schedule
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestGeometry:
    def test_stage_and_slot(self, alu):
        graph = reduction_graph(alu)
        result = modulo_schedule(graph, alu)
        schedule = result.schedule
        for op in range(graph.n_ops):
            t = schedule.times[op]
            assert schedule.stage(op) == t // schedule.ii
            assert schedule.slot(op) == t % schedule.ii

    def test_stage_count_covers_schedule_length(self, alu):
        graph = chain_graph(alu, ["fmul"] * 3)
        schedule = modulo_schedule(graph, alu).schedule
        assert schedule.stage_count * schedule.ii >= schedule.schedule_length

    def test_empty_loop_has_one_stage(self, alu):
        from repro.ir import DependenceGraph
        from repro.core.schedule import Schedule

        graph = DependenceGraph(alu).seal()
        schedule = Schedule(graph, 1, {graph.START: 0, graph.stop: 0}, {})
        assert schedule.stage_count == 1
        assert schedule.schedule_length == 0


class TestKernelRows:
    def test_every_real_op_in_exactly_one_row(self, alu):
        graph = chain_graph(alu, ["fadd"] * 4)
        schedule = modulo_schedule(graph, alu).schedule
        rows = schedule.kernel_rows()
        assert len(rows) == schedule.ii
        ops = [op for row in rows for op, _ in row]
        assert sorted(ops) == list(range(1, 5))

    def test_ops_at_excludes_pseudo(self, alu):
        graph = chain_graph(alu, ["fadd"])
        schedule = modulo_schedule(graph, alu).schedule
        assert graph.START not in schedule.ops_at(0)


class TestDescribe:
    def test_describe_mentions_ii_sl_and_kernel(self, alu):
        graph = chain_graph(alu, ["fmul", "fadd"])
        schedule = modulo_schedule(graph, alu).schedule
        text = schedule.describe()
        assert f"II={schedule.ii}" in text
        assert "kernel" in text
        assert "fmul" in text
