"""The iterative modulo scheduler: behavior of Figures 2-4."""

import pytest

from repro.core import (
    Counters,
    IterativeScheduler,
    SchedulingFailure,
    assert_valid_schedule,
    compute_mii,
    modulo_schedule,
)
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import (
    bus_conflict_machine,
    cydra5,
    single_alu_machine,
    two_alu_machine,
)

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestBasicScheduling:
    def test_chain_achieves_mii(self, alu):
        graph = chain_graph(alu, ["fadd"] * 4)
        result = modulo_schedule(graph, alu)
        assert result.ii == result.mii_result.mii == 4
        assert_valid_schedule(graph, alu, result.schedule)

    def test_start_pinned_at_zero(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul"])
        result = modulo_schedule(graph, alu)
        assert result.schedule.times[graph.START] == 0

    def test_stop_time_is_schedule_length(self, alu):
        graph = chain_graph(alu, ["fmul", "fadd"])  # latencies 3, 1
        result = modulo_schedule(graph, alu)
        assert result.schedule_length >= 4

    def test_recurrence_schedules_at_recmii(self, alu):
        graph = cross_iteration_graph(alu, distance=1)  # RecMII 4
        result = modulo_schedule(graph, alu)
        assert result.ii == 4
        assert_valid_schedule(graph, alu, result.schedule)

    def test_independent_ops_overlap_on_two_alus(self):
        machine = two_alu_machine()
        graph = DependenceGraph(machine)
        for _ in range(4):
            graph.add_operation("fadd")
        graph.seal()
        result = modulo_schedule(graph, machine)
        assert result.ii == 2
        assert_valid_schedule(graph, machine, result.schedule)

    def test_result_properties(self, alu):
        graph = chain_graph(alu, ["fadd"] * 3)
        result = modulo_schedule(graph, alu)
        assert result.delta_ii == result.ii - result.mii_result.mii
        assert result.ii_ratio == pytest.approx(
            result.ii / result.mii_result.mii
        )
        assert result.inefficiency >= 1.0 - 1e-9


class TestModuloConstraint:
    def test_figure1_machine_result_bus(self):
        """Two multiplies + an add must respect the shared result bus."""
        machine = bus_conflict_machine()
        graph = DependenceGraph(machine)
        a = graph.add_operation("fmul", dest="a")
        b = graph.add_operation("fadd", dest="b")
        graph.seal()
        result = modulo_schedule(graph, machine)
        times = result.schedule.times
        ii = result.ii
        # Issue collision (source buses) and result-bus collision
        # (mul at t, add at t+1) must both be avoided mod II.
        assert (times[a] - times[b]) % ii != 0
        assert (times[b] - times[a]) % ii != 1
        assert_valid_schedule(graph, machine, result.schedule)

    def test_self_conflicting_ii_skipped(self):
        """Cydra loads cannot be placed at II=19 (port busy at 0 and 19);
        the scheduler must move on to a feasible II."""
        machine = cydra5()
        graph = DependenceGraph(machine)
        prev = None
        # Force MII near 19 with 10 loads (ResMII = 2*10/2 = 10)... use
        # a recurrence to pin MII at exactly 19.
        a = graph.add_operation("load", dest="v")
        b = graph.add_operation("fadd", dest="s")
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(b, b, DependenceKind.FLOW, distance=1, delay=19)
        graph.seal()
        result = modulo_schedule(graph, machine)
        assert result.ii >= 20  # II=19 is structurally impossible
        assert_valid_schedule(graph, machine, result.schedule)


class TestBudget:
    def test_budget_ratio_below_one_rejected(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            modulo_schedule(graph, alu, budget_ratio=0.5)

    def test_steps_counted_across_attempts(self, alu):
        graph = chain_graph(alu, ["fadd"] * 3)
        result = modulo_schedule(graph, alu)
        assert result.steps_total >= result.steps_last
        assert result.steps_last >= graph.n_ops

    def test_tight_budget_may_need_larger_ii(self):
        """With the minimal budget, every op must schedule first try; any
        displacement forces the II up.  The schedule stays valid."""
        machine = cydra5()
        graph = DependenceGraph(machine)
        ops = [graph.add_operation("fmul", dest=f"m{i}") for i in range(3)]
        ops += [graph.add_operation("fadd", dest=f"a{i}") for i in range(3)]
        graph.seal()
        tight = modulo_schedule(graph, machine, budget_ratio=1.0)
        loose = modulo_schedule(graph, machine, budget_ratio=8.0)
        assert loose.ii <= tight.ii
        assert_valid_schedule(graph, machine, tight.schedule)

    def test_max_ii_exhaustion_raises(self, alu):
        graph = cross_iteration_graph(alu, distance=1)  # needs II 4
        with pytest.raises(SchedulingFailure):
            modulo_schedule(graph, alu, max_ii=3)


class TestIterativeBehavior:
    def test_displacement_happens_on_hard_graphs(self):
        """On the Figure-1 machine, mixed adds/muls at a tight II force
        unscheduling (the whole point of the iterative algorithm)."""
        machine = bus_conflict_machine()
        graph = DependenceGraph(machine)
        for i in range(3):
            graph.add_operation("fmul", dest=f"m{i}")
        for i in range(3):
            graph.add_operation("fadd", dest=f"a{i}")
        graph.seal()
        counters = Counters()
        result = modulo_schedule(
            graph, machine, budget_ratio=8.0, counters=counters
        )
        assert_valid_schedule(graph, machine, result.schedule)
        # Not asserting a specific count, but the run must be recorded.
        assert counters.ops_scheduled >= graph.n_ops

    def test_iterative_scheduler_reports_failure_within_budget(self, alu):
        graph = chain_graph(alu, ["fadd"] * 6)
        scheduler = IterativeScheduler(graph, alu, ii=6)
        attempt = scheduler.run(budget=2)  # far too small
        assert not attempt.success
        assert attempt.steps <= 2

    def test_deterministic_output(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        first = modulo_schedule(graph, alu)
        second = modulo_schedule(graph, alu)
        assert first.schedule.times == second.schedule.times

    def test_counters_flow_through(self, alu):
        graph = chain_graph(alu, ["fadd"] * 3)
        counters = Counters()
        modulo_schedule(graph, alu, counters=counters)
        assert counters.findtimeslot_iters > 0
        assert counters.estart_preds > 0
        assert counters.ii_attempts >= 1


class TestAgainstCydra:
    @pytest.mark.parametrize("n_ops", [1, 2, 5, 9])
    def test_homogeneous_adds(self, n_ops):
        machine = cydra5()
        graph = chain_graph(machine, ["fadd"] * n_ops)
        result = modulo_schedule(graph, machine)
        assert_valid_schedule(graph, machine, result.schedule)
        # One adder: II cannot beat the op count.
        assert result.ii >= n_ops

    def test_loads_spread_across_ports(self):
        machine = cydra5()
        graph = DependenceGraph(machine)
        for i in range(4):
            graph.add_operation("load", dest=f"v{i}")
        graph.seal()
        result = modulo_schedule(graph, machine)
        assert_valid_schedule(graph, machine, result.schedule)
        ports = {
            result.schedule.alternatives[op].name
            for op in range(1, 5)
        }
        assert ports == {"mem_port0", "mem_port1"}
