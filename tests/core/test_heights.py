"""HeightR: the priority function of Figure 5a."""

import pytest

from repro.core import Counters, compute_mindist, height_r
from repro.core.mindist import NO_PATH
from repro.ir import DependenceGraph, DependenceKind, GraphError
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestAcyclic:
    def test_stop_has_height_zero(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul"])
        heights = height_r(graph, ii=1)
        assert heights[graph.stop] == 0

    def test_chain_heights_accumulate_delays(self, alu):
        graph = chain_graph(alu, ["fmul", "fmul", "fadd"])  # 3, 3, 1
        heights = height_r(graph, ii=1)
        assert heights[3] == 1  # fadd -> STOP
        assert heights[2] == 4
        assert heights[1] == 7

    def test_start_height_is_critical_path(self, alu):
        graph = chain_graph(alu, ["fmul", "fadd"])
        heights = height_r(graph, ii=1)
        assert heights[graph.START] == 4

    def test_priority_respects_topological_order_on_chains(self, alu):
        graph = chain_graph(alu, ["fadd"] * 6)
        heights = height_r(graph, ii=1)
        chain = [heights[i] for i in range(1, 7)]
        assert chain == sorted(chain, reverse=True)


class TestCyclic:
    def test_heights_finite_at_recmii(self, alu):
        graph = cross_iteration_graph(alu, distance=1)  # RecMII 4
        heights = height_r(graph, ii=4)
        assert all(isinstance(h, int) for h in heights)

    def test_diverges_below_recmii(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        with pytest.raises(GraphError):
            height_r(graph, ii=3)

    def test_interiteration_successor_discounted(self, alu):
        graph = reduction_graph(alu)  # acc self-loop distance 1 delay 1
        heights = height_r(graph, ii=2)
        # acc height: max(latency to STOP, self: h + 1 - 2) = 1.
        assert heights[2] == 1

    def test_matches_mindist_to_stop(self, alu):
        for graph in (
            chain_graph(alu, ["fmul", "fadd", "fmul"]),
            cross_iteration_graph(alu, distance=1),
            reduction_graph(alu),
        ):
            ii = 4
            heights = height_r(graph, ii=ii)
            dist, index = compute_mindist(graph, ii=ii)
            stop_column = index[graph.stop]
            for op in range(graph.n_ops):
                expected = dist[index[op], stop_column]
                if expected == NO_PATH:
                    continue
                assert heights[op] == int(expected), op


class TestMisc:
    def test_rejects_unsealed_graph(self, alu):
        graph = DependenceGraph(alu)
        graph.add_operation("fadd")
        with pytest.raises(GraphError):
            height_r(graph, ii=1)

    def test_rejects_ii_below_one(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            height_r(graph, ii=0)

    def test_counters_count_relaxations(self, alu):
        graph = cross_iteration_graph(alu)
        counters = Counters()
        height_r(graph, ii=4, counters=counters)
        assert counters.heightr_inner > 0

    def test_larger_ii_lowers_recurrence_heights(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        low = height_r(graph, ii=4)
        high = height_r(graph, ii=10)
        assert high[1] <= low[1]
