"""The static validator must catch every class of illegal schedule."""

import pytest

from repro.core import Schedule, modulo_schedule, validate_schedule
from repro.core.validate import assert_valid_schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


@pytest.fixture
def scheduled(alu):
    graph = chain_graph(alu, ["fmul", "fadd"])
    result = modulo_schedule(graph, alu)
    return graph, result.schedule


class TestAccepts:
    def test_valid_schedule_passes(self, alu, scheduled):
        graph, schedule = scheduled
        assert validate_schedule(graph, alu, schedule) == []

    def test_assert_valid_does_not_raise(self, alu, scheduled):
        graph, schedule = scheduled
        assert_valid_schedule(graph, alu, schedule)


class TestRejects:
    def test_missing_operation(self, alu, scheduled):
        graph, schedule = scheduled
        times = dict(schedule.times)
        del times[1]
        broken = Schedule(graph, schedule.ii, times, dict(schedule.alternatives))
        problems = validate_schedule(graph, alu, broken)
        assert any("not scheduled" in p for p in problems)

    def test_start_not_at_zero(self, alu, scheduled):
        graph, schedule = scheduled
        times = dict(schedule.times)
        times[graph.START] = 1
        broken = Schedule(graph, schedule.ii, times, dict(schedule.alternatives))
        problems = validate_schedule(graph, alu, broken)
        assert any("START" in p for p in problems)

    def test_dependence_violation(self, alu, scheduled):
        graph, schedule = scheduled
        times = dict(schedule.times)
        times[2] = times[1]  # consumer issued with its producer
        broken = Schedule(graph, schedule.ii, times, dict(schedule.alternatives))
        problems = validate_schedule(graph, alu, broken)
        assert any("dependence violated" in p for p in problems)

    def test_modulo_resource_violation(self, alu):
        graph = chain_graph(alu, ["fadd", "fadd"])
        result = modulo_schedule(graph, alu)
        times = dict(result.schedule.times)
        # Put both adds at congruent slots on the single ALU.
        times[2] = times[1] + result.ii
        broken = Schedule(
            graph, result.ii, times, dict(result.schedule.alternatives)
        )
        problems = validate_schedule(graph, alu, broken)
        assert any("modulo constraint" in p for p in problems)

    def test_negative_time(self, alu, scheduled):
        graph, schedule = scheduled
        times = dict(schedule.times)
        times[1] = -1
        broken = Schedule(graph, schedule.ii, times, dict(schedule.alternatives))
        problems = validate_schedule(graph, alu, broken)
        assert any("negative" in p for p in problems)

    def test_missing_alternative(self, alu, scheduled):
        graph, schedule = scheduled
        alts = dict(schedule.alternatives)
        alts[1] = None
        broken = Schedule(graph, schedule.ii, dict(schedule.times), alts)
        problems = validate_schedule(graph, alu, broken)
        assert any("no reservation alternative" in p for p in problems)

    def test_foreign_alternative(self, alu, scheduled):
        from repro.machine import ReservationTable

        graph, schedule = scheduled
        alts = dict(schedule.alternatives)
        alts[1] = ReservationTable("fake", [("alu", 0)])
        broken = Schedule(graph, schedule.ii, dict(schedule.times), alts)
        problems = validate_schedule(graph, alu, broken)
        assert any("not belonging" in p for p in problems)

    def test_interiteration_violation(self, alu):
        graph = reduction_graph(alu)
        result = modulo_schedule(graph, alu)
        # Shrink the II below RecMII while keeping the times: the self
        # recurrence (delay 1, distance 1) then requires gap >= 1 - ii.
        broken = Schedule(
            graph, 1, dict(result.schedule.times), dict(result.schedule.alternatives)
        )
        problems = validate_schedule(graph, alu, broken)
        assert problems  # at least the resource fold or a dependence

    def test_assert_raises_with_details(self, alu, scheduled):
        graph, schedule = scheduled
        times = dict(schedule.times)
        times[graph.START] = 5
        broken = Schedule(graph, schedule.ii, times, dict(schedule.alternatives))
        with pytest.raises(AssertionError) as excinfo:
            assert_valid_schedule(graph, alu, broken)
        assert "START" in str(excinfo.value)
