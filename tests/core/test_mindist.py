"""ComputeMinDist: hand-checked matrices and feasibility."""

import numpy as np
import pytest

from repro.core import Counters, compute_mindist, mindist_feasible
from repro.core.mindist import NO_PATH, schedule_length_lower_bound
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def machine():
    return single_alu_machine()


class TestInitialization:
    def test_direct_edge_weight(self, machine):
        graph = chain_graph(machine, ["fmul", "fadd"])  # fmul latency 3
        dist, index = compute_mindist(graph, ii=1)
        assert dist[index[1], index[2]] == 3

    def test_inter_iteration_edge_discounted_by_ii(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.add_edge(a, b, DependenceKind.FLOW, distance=2, delay=5)
        graph.seal()
        dist, index = compute_mindist(graph, ii=3)
        assert dist[index[a], index[b]] == 5 - 2 * 3

    def test_no_path_is_minus_infinity(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.seal()
        dist, index = compute_mindist(graph, ii=1)
        assert dist[index[a], index[b]] == NO_PATH

    def test_parallel_edges_take_max_weight(self, machine):
        graph = DependenceGraph(machine)
        a = graph.add_operation("fadd")
        b = graph.add_operation("fadd")
        graph.add_edge(a, b, DependenceKind.FLOW, delay=2)
        graph.add_edge(a, b, DependenceKind.FLOW, delay=7)
        graph.seal()
        dist, index = compute_mindist(graph, ii=1)
        assert dist[index[a], index[b]] == 7


class TestClosure:
    def test_transitive_path(self, machine):
        graph = chain_graph(machine, ["fmul", "fmul", "fadd"])  # 3,3,1
        dist, index = compute_mindist(graph, ii=1)
        assert dist[index[1], index[3]] == 6

    def test_start_to_stop_is_critical_path(self, machine):
        graph = chain_graph(machine, ["fmul", "fmul", "fadd"])
        assert schedule_length_lower_bound(graph, ii=1) == 3 + 3 + 1

    def test_subset_restricts_edges(self, machine):
        graph = chain_graph(machine, ["fadd", "fadd", "fadd"])
        dist, index = compute_mindist(graph, ii=1, ops=[1, 3])
        # 1 -> 3 only via 2, which is excluded.
        assert dist[index[1], index[3]] == NO_PATH


class TestFeasibility:
    def test_recurrence_feasible_at_its_recmii(self, machine):
        # Circuit delay 4 (fadd 1 + fmul 3), distance 2 => RecMII = 2.
        graph = cross_iteration_graph(machine, distance=2)
        dist, _ = compute_mindist(graph, ii=2, ops=[1, 2])
        assert mindist_feasible(dist)

    def test_recurrence_infeasible_below_recmii(self, machine):
        graph = cross_iteration_graph(machine, distance=2)
        dist, _ = compute_mindist(graph, ii=1, ops=[1, 2])
        assert not mindist_feasible(dist)

    def test_self_loop_on_diagonal(self, machine):
        graph = reduction_graph(machine)  # fadd self-loop, delay 1, dist 1
        dist, index = compute_mindist(graph, ii=1)
        assert dist[index[2], index[2]] == 0  # delay 1 - 1*1

    def test_acyclic_graph_feasible_at_ii_one(self, machine):
        graph = chain_graph(machine, ["fadd"] * 5)
        dist, _ = compute_mindist(graph, ii=1)
        assert mindist_feasible(dist)


class TestMisc:
    def test_rejects_ii_below_one(self, machine):
        graph = chain_graph(machine, ["fadd"])
        with pytest.raises(ValueError):
            compute_mindist(graph, ii=0)

    def test_counters_record_cubic_inner_loop(self, machine):
        graph = chain_graph(machine, ["fadd", "fadd"])
        counters = Counters()
        compute_mindist(graph, ii=1, counters=counters)
        n = graph.n_ops
        assert counters.mindist_inner == n**3
        assert counters.mindist_invocations == 1

    def test_index_map_covers_requested_ops(self, machine):
        graph = chain_graph(machine, ["fadd", "fadd"])
        _, index = compute_mindist(graph, ii=1, ops=[2, 1])
        assert set(index) == {1, 2}
