"""Differential tests: the bitmask MRT against the dict-of-cells oracle.

Random reserve/release scripts drive both implementations in lockstep;
after every step they must agree on every observable — ``conflicts``,
``conflicting_ops``, ``occupancy``, ``holds``, whether ``reserve`` raised
and with exactly which :class:`ReservationConflict` message, and the
byte-exact ``render`` output.  The factory/flag plumbing and the wide
reservation-table regression (the old ``reserve`` probed an O(uses)
list per use) live here too.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    DictLinearReservations,
    DictModuloReservations,
    LinearReservations,
    ModuloReservations,
    ReservationConflict,
    make_linear_reservations,
    make_modulo_reservations,
    resolve_mrt_impl,
)
from repro.core.mrt import MRT_IMPL_ENV
from repro.machine import ReservationTable, cydra5

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_RESOURCES = ["r0", "r1", "r2"]


@st.composite
def table_pools(draw):
    """A small pool of distinct reservation tables over shared resources."""
    pool = []
    for t in range(draw(st.integers(min_value=1, max_value=4))):
        n_uses = draw(st.integers(min_value=1, max_value=5))
        uses = set()
        while len(uses) < n_uses:
            uses.add(
                (
                    draw(st.sampled_from(_RESOURCES)),
                    draw(st.integers(min_value=0, max_value=12)),
                )
            )
        pool.append(ReservationTable(f"t{t}", sorted(uses)))
    return pool


@st.composite
def scripts(draw):
    """A pool plus a random reserve/release action sequence over it."""
    pool = draw(table_pools())
    steps = []
    n_steps = draw(st.integers(min_value=1, max_value=24))
    for op in range(n_steps):
        if draw(st.booleans()):
            steps.append(
                (
                    "reserve",
                    op,
                    draw(st.integers(min_value=0, max_value=len(pool) - 1)),
                    draw(st.integers(min_value=0, max_value=25)),
                )
            )
        else:
            steps.append(
                ("release", draw(st.integers(min_value=0, max_value=n_steps)))
            )
    return pool, steps


def _apply(mrt, step, pool):
    """Run one step; normalize the outcome to compare across impls."""
    if step[0] == "release":
        mrt.release(step[1])
        return ("released", None)
    _, op, table_index, time = step
    try:
        mrt.reserve(op, pool[table_index], time)
        return ("reserved", None)
    except ReservationConflict as error:
        return ("conflict", str(error))


def _assert_agree(mask, oracle, pool, times):
    """Every observable must match between the two implementations."""
    assert mask.occupancy() == oracle.occupancy()
    for table in pool:
        assert mask.self_conflicting(table) == oracle.self_conflicting(table)
        for time in times:
            assert mask.conflicts(table, time) == oracle.conflicts(table, time), (
                table.uses,
                time,
            )
    for time in times:
        assert mask.conflicting_ops(pool, time) == oracle.conflicting_ops(
            pool, time
        )


class TestModuloLockstep:
    @given(scripts(), st.integers(min_value=1, max_value=9))
    @_SETTINGS
    def test_every_observable_agrees(self, script, ii):
        pool, steps = script
        mask = ModuloReservations(ii)
        oracle = DictModuloReservations(ii)
        times = [0, 1, ii - 1, ii, 2 * ii + 1]
        for step in steps:
            assert _apply(mask, step, pool) == _apply(oracle, step, pool)
            _assert_agree(mask, oracle, pool, times)
            assert mask.render(_RESOURCES) == oracle.render(_RESOURCES)

    @given(scripts(), st.integers(min_value=1, max_value=9))
    @_SETTINGS
    def test_holds_agrees(self, script, ii):
        pool, steps = script
        mask = ModuloReservations(ii)
        oracle = DictModuloReservations(ii)
        ops = {step[1] for step in steps}
        for step in steps:
            assert _apply(mask, step, pool) == _apply(oracle, step, pool)
            for op in ops:
                assert mask.holds(op) == oracle.holds(op)


class TestLinearLockstep:
    @given(scripts())
    @_SETTINGS
    def test_every_observable_agrees(self, script):
        pool, steps = script
        mask = LinearReservations()
        oracle = DictLinearReservations()
        times = [0, 1, 7, 25, 38]
        for step in steps:
            assert _apply(mask, step, pool) == _apply(oracle, step, pool)
            _assert_agree(mask, oracle, pool, times)


class TestFactories:
    def test_default_is_the_bitmask_table(self):
        assert type(make_modulo_reservations(4)) is ModuloReservations
        assert type(make_linear_reservations()) is LinearReservations

    def test_dict_oracle_selectable(self):
        mrt = make_modulo_reservations(4, impl="dict")
        assert type(mrt) is DictModuloReservations
        assert type(make_linear_reservations(impl="dict")) is (
            DictLinearReservations
        )

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(MRT_IMPL_ENV, "dict")
        assert resolve_mrt_impl() == "dict"
        assert type(make_modulo_reservations(3)) is DictModuloReservations
        # An explicit argument beats the environment.
        assert type(make_modulo_reservations(3, impl="mask")) is (
            ModuloReservations
        )

    def test_unknown_impl_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_mrt_impl("quantum")
        monkeypatch.setenv(MRT_IMPL_ENV, "bogus")
        with pytest.raises(ValueError):
            make_modulo_reservations(4)

    def test_machine_seeds_the_resource_rows(self):
        machine = cydra5()
        mrt = make_modulo_reservations(4, machine=machine)
        alternative = machine.opcode("fadd").alternatives[0]
        mrt.reserve(1, alternative, 0)
        oracle = DictModuloReservations(4)
        oracle.reserve(1, alternative, 0)
        assert mrt.occupancy() == oracle.occupancy()
        assert mrt.render(machine.resources) == oracle.render(machine.resources)


def _wide_table(n_uses=240, n_resources=8):
    """Many uses spread over few resources — the satellite regression
    shape: the old dict ``reserve`` scanned its cells *list* once per
    use, going quadratic exactly here."""
    return ReservationTable(
        "wide",
        [(f"port{i % n_resources}", i) for i in range(n_uses)],
    )


class TestWideTableRegression:
    def test_wide_reserve_roundtrip(self):
        table = _wide_table()
        for mrt in (DictLinearReservations(), LinearReservations()):
            mrt.reserve(1, table, 0)
            assert mrt.conflicts(table, 0)
            assert len(mrt.occupancy()) == len(table.uses)
            mrt.release(1)
            assert not mrt.conflicts(table, 0)

    def test_wide_self_conflict_detected_under_folding(self):
        # port0 is used at offsets 0, 8, 16, ... — any II dividing 8
        # folds two uses onto one cell.
        table = _wide_table()
        for mrt in (DictModuloReservations(8), ModuloReservations(8)):
            assert mrt.self_conflicting(table)
            with pytest.raises(ReservationConflict, match="self-conflicts"):
                mrt.reserve(1, table, 0)
            assert not mrt.holds(1)

    def test_wide_reserve_probes_each_use_once(self):
        table = _wide_table()
        oracle = DictLinearReservations()
        oracle.reserve(1, table, 0)
        assert oracle.cell_probes == len(table.uses)

    @given(st.integers(min_value=9, max_value=41))
    @_SETTINGS
    def test_wide_table_lockstep_at_any_interval(self, ii):
        table = _wide_table(n_uses=60)
        mask = ModuloReservations(ii)
        oracle = DictModuloReservations(ii)
        assert mask.self_conflicting(table) == oracle.self_conflicting(table)
        assert mask.conflicts(table, 3) == oracle.conflicts(table, 3)
        outcome_mask = _apply(mask, ("reserve", 1, 0, 3), [table])
        outcome_oracle = _apply(oracle, ("reserve", 1, 0, 3), [table])
        assert outcome_mask == outcome_oracle
        assert mask.occupancy() == oracle.occupancy()
