"""Pre-scheduling unrolling: fractional MII recovery."""

import pytest

from repro.core import (
    assert_valid_schedule,
    compute_mii,
    modulo_schedule,
    recommend_unroll,
    unroll_for_modulo,
)
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine, two_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


def _fractional_recurrence(machine, delay=7, distance=2):
    """One-op circuit: delay/distance cycles per iteration, fractional."""
    graph = DependenceGraph(machine)
    a = graph.add_operation("fadd", dest="a", srcs=("a",))
    graph.add_edge(a, a, DependenceKind.FLOW, distance=distance, delay=delay)
    return graph.seal()


class TestUnrollForModulo:
    def test_replicates_ops(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul"])
        unrolled = unroll_for_modulo(graph, 3)
        assert unrolled.n_real_ops == 6

    def test_distances_fold_not_drop(self, alu):
        graph = reduction_graph(alu)  # acc self-loop distance 1
        unrolled = unroll_for_modulo(graph, 2)
        carried = [
            e
            for e in unrolled.edges
            if e.distance > 0
            and not unrolled.operation(e.pred).is_pseudo
        ]
        # The distance-1 recurrence must survive as a cross-body edge
        # (unlike the unroll-before-scheduling baseline, which drops it).
        assert carried

    def test_circuit_ratio_preserved(self, alu):
        graph = _fractional_recurrence(alu, delay=7, distance=2)
        base = compute_mii(graph, alu).rec_mii
        assert base == 4  # ceil(7/2)
        doubled = unroll_for_modulo(graph, 2)
        assert compute_mii(doubled, alu).rec_mii == 7  # exactly 2 * 3.5

    def test_factor_one_is_equivalent(self, alu):
        graph = reduction_graph(alu)
        unrolled = unroll_for_modulo(graph, 1)
        assert compute_mii(unrolled, alu).mii == compute_mii(graph, alu).mii

    def test_bad_factor_rejected(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            unroll_for_modulo(graph, 0)

    def test_unrolled_graph_schedules_validly(self, alu):
        graph = _fractional_recurrence(alu)
        unrolled = unroll_for_modulo(graph, 2)
        result = modulo_schedule(unrolled, alu, budget_ratio=6.0)
        assert_valid_schedule(unrolled, alu, result.schedule)


class TestRecommendation:
    def test_fractional_circuit_wants_unrolling(self, alu):
        graph = _fractional_recurrence(alu, delay=7, distance=2)
        recommendation = recommend_unroll(graph, alu, max_factor=4)
        assert recommendation.factor == 2
        assert recommendation.amortized_mii == pytest.approx(3.5)
        assert recommendation.degradation_without_unrolling >= 0.13

    def test_integral_mii_keeps_factor_one(self):
        machine = two_alu_machine()
        graph = reduction_graph(machine)
        recommendation = recommend_unroll(graph, machine, max_factor=4)
        assert recommendation.factor == 1

    def test_smallest_adequate_factor_wins(self, alu):
        # delay 9 / distance 3 = 3.0: factor 3 exact, factor 1 gives 3 too
        # (ceil(9/3) = 3), so no unrolling should be recommended.
        graph = _fractional_recurrence(alu, delay=9, distance=3)
        recommendation = recommend_unroll(graph, alu, max_factor=4)
        assert recommendation.factor == 1

    def test_record_covers_all_factors(self, alu):
        graph = _fractional_recurrence(alu)
        recommendation = recommend_unroll(graph, alu, max_factor=3)
        assert set(recommendation.amortized_by_factor) == {1, 2, 3}

    def test_bad_max_factor_rejected(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            recommend_unroll(graph, alu, max_factor=0)

    def test_amortized_mii_never_below_fractional_bound(self, alu):
        graph = _fractional_recurrence(alu, delay=11, distance=3)
        recommendation = recommend_unroll(graph, alu, max_factor=6)
        for factor, amortized in recommendation.amortized_by_factor.items():
            assert amortized >= 11 / 3 - 1e-9
