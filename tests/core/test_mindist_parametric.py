"""Property-based differential suite for the II-search fast paths.

Two kernels carry the II search after the parametric rewrite, and both
claim *bit-identical* behavior to their scalar oracles:

* :class:`repro.core.mindist.ParametricMinDist` vs per-II
  :func:`repro.core.mindist.compute_mindist` — the closure's
  ``matrix(II)`` must equal the Floyd-Warshall matrix at every integer
  II (−inf cells included), and its closed-form ``crossing`` must equal
  what the scalar doubling/binary search converges to.
* :meth:`repro.core.mrt.ModuloReservations.first_free_slot` vs the
  scalar time-major, alternative-minor scan — same placement, same
  as-if probe accounting.

Hypothesis drives both over random graphs / occupancies × II ranges;
fixed corpus-level parity lives in ``tests/test_differential.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Counters, MinDistMemo
from repro.core.mii import _min_feasible_ii
from repro.core.mindist import (
    ParametricMinDist,
    compute_mindist,
    mindist_feasible,
    resolve_mindist_impl,
)
from repro.core.mrt import ModuloReservations
from repro.core.scc import strongly_connected_components
from repro.ir import DependenceGraph, DependenceKind, GraphError
from repro.machine import single_alu_machine
from repro.machine.resources import ReservationTable

MACHINE = single_alu_machine()

#: The II range every property sweeps; RecMIIs of the generated graphs
#: fall well inside it, so both feasible and infeasible IIs are hit.
MAX_II = 9


@st.composite
def dependence_graphs(draw):
    """Small random sealed graphs — recurrences, multi-edges, and
    zero-distance circuits included: the closure must agree with the
    oracle on infeasible inputs too."""
    n = draw(st.integers(min_value=1, max_value=6))
    graph = DependenceGraph(MACHINE, name="hyp")
    ops = [graph.add_operation("fadd", dest=f"v{i}") for i in range(n)]
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        graph.add_edge(
            ops[draw(st.integers(min_value=0, max_value=n - 1))],
            ops[draw(st.integers(min_value=0, max_value=n - 1))],
            DependenceKind.FLOW,
            distance=draw(st.integers(min_value=0, max_value=3)),
            delay=draw(st.integers(min_value=0, max_value=7)),
        )
    return graph.seal()


class TestParametricVsOracle:
    @settings(max_examples=80, deadline=None)
    @given(graph=dependence_graphs())
    def test_matrix_matches_the_oracle_at_every_ii(self, graph):
        """One closure build answers every integer II bit-identically —
        including −inf (no-path) cells and infeasible IIs."""
        closure = ParametricMinDist(graph)
        for ii in range(1, MAX_II + 1):
            expected, index_map = compute_mindist(graph, ii)
            assert np.array_equal(closure.matrix(ii), expected), ii
            assert closure.index_map == index_map

    @settings(max_examples=80, deadline=None)
    @given(graph=dependence_graphs())
    def test_feasibility_is_the_diagonal_crossing(self, graph):
        closure = ParametricMinDist(graph)
        for ii in range(1, MAX_II + 1):
            dist, _ = compute_mindist(graph, ii)
            assert closure.feasible(ii) == mindist_feasible(dist), ii

    @settings(max_examples=80, deadline=None)
    @given(graph=dependence_graphs())
    def test_crossing_matches_the_scalar_search(self, graph):
        """The closed-form crossing equals what the doubling/binary
        search converges to, and both reject zero-distance circuits."""
        crossing = ParametricMinDist(graph).crossing()
        try:
            scalar = _min_feasible_ii(
                graph, list(range(graph.n_ops)), 1, None
            )
        except GraphError:
            assert math.isinf(crossing)
        else:
            assert scalar == max(1, int(crossing))

    @settings(max_examples=60, deadline=None)
    @given(graph=dependence_graphs(), data=st.data())
    def test_subgraph_closures_match_subset_oracles(self, graph, data):
        """A closure built over any ops subset sees exactly the edges
        the subset-restricted oracle sees."""
        ops = data.draw(
            st.lists(
                st.sampled_from(range(graph.n_ops)),
                min_size=1,
                max_size=graph.n_ops,
                unique=True,
            )
        )
        closure = ParametricMinDist(graph, ops)
        for ii in (1, 2, MAX_II):
            expected, _ = compute_mindist(graph, ii, ops)
            assert np.array_equal(closure.matrix(ii), expected), ii

    @settings(max_examples=60, deadline=None)
    @given(graph=dependence_graphs())
    def test_whole_graph_closure_serves_every_scc(self, graph):
        """The containment lemma behind the RecMII shortcut: paths
        between vertices of an SCC never leave it, so the whole-graph
        closure's crossing restricted to an SCC equals the SCC-subgraph
        closure's crossing."""
        whole = ParametricMinDist(graph)
        for component in strongly_connected_components(graph):
            sub = ParametricMinDist(graph, component)
            assert whole.crossing(component) == sub.crossing()


# ----------------------------------------------------------------------
# Batched FindTimeSlot vs the scalar scan.


@st.composite
def slot_scenarios(draw):
    """A partially filled MRT plus a probe: random II, resources,
    reservation shapes (self-conflicting ones included), and min_time."""
    ii = draw(st.integers(min_value=1, max_value=8))
    resources = [f"r{i}" for i in range(draw(st.integers(1, 3)))]

    def table(tag):
        uses = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(resources),
                    st.integers(min_value=0, max_value=6),
                ),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        return ReservationTable(tag, uses)

    mrt = ModuloReservations(ii)
    op = 0
    for i in range(draw(st.integers(min_value=0, max_value=5))):
        candidate = table(f"fill{i}")
        time = draw(st.integers(min_value=0, max_value=2 * ii))
        if not mrt.conflicts(candidate, time):
            mrt.reserve(op, candidate, time)
            op += 1
    alternatives = [
        table(f"alt{i}")
        for i in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    min_time = draw(st.integers(min_value=0, max_value=3 * ii))
    return mrt, alternatives, min_time


def _scalar_scan(mrt, alternatives, min_time):
    """The oracle: probe every (slot, alternative) pair in scan order."""
    for time in range(min_time, min_time + mrt.ii):
        for idx, alternative in enumerate(alternatives):
            if not mrt.conflicts(alternative, time):
                return time, idx
    return None, None


class TestFirstFreeSlotParity:
    @settings(max_examples=120, deadline=None)
    @given(scenario=slot_scenarios())
    def test_batch_matches_the_scalar_scan(self, scenario):
        """Same placement, same winning alternative, and the same
        ``checks`` accounting as if the scalar scan had run."""
        mrt, alternatives, min_time = scenario
        before = mrt.checks
        expected = _scalar_scan(mrt, alternatives, min_time)
        scalar_probes = mrt.checks - before
        before = mrt.checks
        got = mrt.first_free_slot(alternatives, min_time)
        assert got == expected
        assert mrt.checks - before == scalar_probes

    def test_ties_go_to_the_earliest_declared_alternative(self):
        mrt = ModuloReservations(4)
        a = ReservationTable("a", [("r0", 0)])
        b = ReservationTable("b", [("r0", 0)])
        time, index = mrt.first_free_slot([a, b], min_time=3)
        assert (time, index) == (3, 0)

    def test_full_window_reports_no_slot(self):
        mrt = ModuloReservations(2)
        blocker = ReservationTable("blk", [("r0", 0), ("r0", 1)])
        mrt.reserve(0, blocker, 0)
        probe = ReservationTable("p", [("r0", 0)])
        before = mrt.checks
        assert mrt.first_free_slot([probe], min_time=5) == (None, None)
        assert mrt.checks - before == mrt.ii  # ii slots x one alternative


class TestMemoKeyCaching:
    """Satellite: whole-graph probes must not re-tuple ``range(n_ops)``
    per query — the canonical all-ops key is built once per memo."""

    def test_all_ops_key_is_built_once(self):
        graph = DependenceGraph(MACHINE, name="memo-key")
        graph.add_operation("fadd", dest="a")
        graph.seal()
        memo = MinDistMemo(graph)
        assert memo.all_ops_key == tuple(range(graph.n_ops))
        assert memo.all_ops_key is memo.all_ops_key
        assert memo._ops_key(None) is memo.all_ops_key

    def test_warm_whole_graph_probe_reuses_the_key(self):
        graph = DependenceGraph(MACHINE, name="memo-warm")
        a = graph.add_operation("fadd", dest="a")
        graph.add_edge(a, a, DependenceKind.FLOW, distance=1)
        graph.seal()
        memo = MinDistMemo(graph)
        first, _ = memo.mindist(2)
        key = memo.all_ops_key
        second, _ = memo.mindist(2)
        assert memo.all_ops_key is key
        assert second is first  # entry-cache hit, no rebuild of any kind

    def test_explicit_ops_still_get_their_own_key(self):
        graph = DependenceGraph(MACHINE, name="memo-subset")
        graph.add_operation("fadd", dest="a")
        graph.add_operation("fadd", dest="b")
        graph.seal()
        memo = MinDistMemo(graph)
        assert memo._ops_key([1, 2]) == (1, 2)
        assert memo._ops_key(None) is memo.all_ops_key


class TestImplementationKnob:
    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError, match="unknown MinDist"):
            resolve_mindist_impl("bogus")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINDIST_IMPL", "fw")
        assert resolve_mindist_impl() == "fw"
        assert resolve_mindist_impl("parametric") == "parametric"

    def test_memo_counters_separate_the_implementations(self):
        graph = DependenceGraph(MACHINE, name="knob")
        a = graph.add_operation("fadd", dest="a")
        graph.add_edge(a, a, DependenceKind.FLOW, distance=1)
        graph.seal()
        fw, parametric = Counters(), Counters()
        MinDistMemo(graph, impl="fw").mindist(2, counters=fw)
        MinDistMemo(graph, impl="parametric").mindist(2, counters=parametric)
        assert fw.mindist_invocations == 1
        assert fw.mindist_parametric_evals == 0
        assert parametric.mindist_invocations == 0
        assert parametric.mindist_closure_inner > 0
        assert parametric.mindist_parametric_evals == 1


class TestDeadlineInKernels:
    """The closure build is the new long-running kernel; an expired
    cooperative deadline must abort it, not just the scalar oracle."""

    def _expired(self):
        from repro.core.deadline import Deadline

        deadline = Deadline(60.0)
        deadline._expires_at = 0.0
        return deadline

    def test_closure_build_honors_deadline(self):
        from repro.core.deadline import DeadlineExceeded

        graph = DependenceGraph(MACHINE, name="deadline")
        a = graph.add_operation("fadd", dest="a")
        b = graph.add_operation("fadd", dest="b", srcs=["a"])
        graph.add_edge(a, b, DependenceKind.FLOW)
        graph.add_edge(b, a, DependenceKind.FLOW, distance=1)
        graph.seal()
        with pytest.raises(DeadlineExceeded, match="mindist"):
            ParametricMinDist(graph, deadline=self._expired())

    def test_memo_closure_path_honors_deadline(self):
        from repro.core.deadline import DeadlineExceeded

        graph = DependenceGraph(MACHINE, name="deadline-memo")
        a = graph.add_operation("fadd", dest="a")
        graph.add_edge(a, a, DependenceKind.FLOW, distance=1)
        graph.seal()
        memo = MinDistMemo(graph, impl="parametric")
        with pytest.raises(DeadlineExceeded, match="mindist"):
            memo.feasible(2, deadline=self._expired())
