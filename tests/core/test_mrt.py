"""Schedule reservation tables: linear and modulo behavior."""

import pytest

from repro.core import LinearReservations, ModuloReservations, ReservationConflict
from repro.machine import ReservationTable


@pytest.fixture
def simple():
    return ReservationTable("alu", [("alu", 0)])


@pytest.fixture
def complex_table():
    return ReservationTable("mem", [("port", 0), ("port", 19)])


class TestLinear:
    def test_reserve_then_conflict(self, simple):
        table = LinearReservations()
        table.reserve(1, simple, 5)
        assert table.conflicts(simple, 5)
        assert not table.conflicts(simple, 6)

    def test_release_frees_cells(self, simple):
        table = LinearReservations()
        table.reserve(1, simple, 5)
        table.release(1)
        assert not table.conflicts(simple, 5)

    def test_release_is_idempotent(self, simple):
        table = LinearReservations()
        table.release(42)  # never reserved; must not raise

    def test_double_reserve_same_op_rejected(self, simple):
        table = LinearReservations()
        table.reserve(1, simple, 0)
        with pytest.raises(ReservationConflict):
            table.reserve(1, simple, 9)

    def test_conflicting_reserve_raises_and_leaves_state_clean(self, simple):
        table = LinearReservations()
        table.reserve(1, simple, 3)
        with pytest.raises(ReservationConflict):
            table.reserve(2, simple, 3)
        assert not table.holds(2)
        table.release(1)
        table.reserve(2, simple, 3)  # now fine

    def test_conflicting_ops_reports_occupants(self, simple):
        table = LinearReservations()
        table.reserve(7, simple, 2)
        assert table.conflicting_ops([simple], 2) == {7}
        assert table.conflicting_ops([simple], 3) == set()

    def test_no_folding_in_linear_table(self, complex_table):
        table = LinearReservations()
        table.reserve(1, complex_table, 0)
        # Offsets 0 and 19 occupy distinct absolute cycles.
        assert table.conflicts(complex_table, 19)
        assert not table.conflicts(complex_table, 1)


class TestModulo:
    def test_wraparound_conflict(self, simple):
        mrt = ModuloReservations(ii=4)
        mrt.reserve(1, simple, 2)
        assert mrt.conflicts(simple, 6)  # 6 mod 4 == 2
        assert not mrt.conflicts(simple, 7)

    def test_cross_offset_wraparound(self, complex_table):
        mrt = ModuloReservations(ii=5)
        mrt.reserve(1, complex_table, 0)  # cells at 0 and 19 mod 5 == 4
        assert mrt.conflicts(complex_table, 4)  # its offset 0 hits cell 4
        blocker = ReservationTable("x", [("port", 0)])
        assert mrt.conflicts(blocker, 4)
        assert not mrt.conflicts(blocker, 1)

    def test_self_conflicting_table_detected(self, complex_table):
        mrt = ModuloReservations(ii=19)
        assert mrt.self_conflicting(complex_table)
        assert mrt.conflicts(complex_table, 0)
        with pytest.raises(ReservationConflict):
            mrt.reserve(1, complex_table, 0)

    def test_not_self_conflicting_at_other_ii(self, complex_table):
        mrt = ModuloReservations(ii=20)
        assert not mrt.self_conflicting(complex_table)
        mrt.reserve(1, complex_table, 0)

    def test_rejects_ii_below_one(self):
        with pytest.raises(ValueError):
            ModuloReservations(ii=0)

    def test_render_shows_occupants(self, simple):
        mrt = ModuloReservations(ii=2)
        mrt.reserve(3, simple, 1)
        text = mrt.render(["alu"])
        assert "op3" in text

    def test_occupancy_snapshot_is_a_copy(self, simple):
        mrt = ModuloReservations(ii=2)
        mrt.reserve(1, simple, 0)
        snapshot = mrt.occupancy()
        snapshot.clear()
        assert mrt.conflicts(simple, 0)
