"""Property tests for pre-scheduling unrolling (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import compute_mii, rec_mii, unroll_for_modulo
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def recurrent_graphs(draw):
    """A chain with a closing back edge of random delay and distance."""
    machine = single_alu_machine()
    graph = DependenceGraph(machine, name="prop")
    size = draw(st.integers(min_value=1, max_value=5))
    ops = [
        graph.add_operation(
            draw(st.sampled_from(["fadd", "fmul", "load"])), dest=f"v{i}"
        )
        for i in range(size)
    ]
    for left, right in zip(ops, ops[1:]):
        graph.add_edge(left, right, DependenceKind.FLOW)
    graph.add_edge(
        ops[-1],
        ops[0],
        DependenceKind.FLOW,
        distance=draw(st.integers(min_value=1, max_value=4)),
        delay=draw(st.integers(min_value=0, max_value=9)),
    )
    return machine, graph.seal()


class TestUnrollProperties:
    @given(recurrent_graphs(), st.integers(min_value=1, max_value=4))
    @_SETTINGS
    def test_recmii_subadditive_under_unrolling(self, machine_graph, factor):
        """RecMII(unroll u) <= u * RecMII(1): circuits' delay/distance
        ratios are preserved, so the amortized bound never worsens."""
        machine, graph = machine_graph
        base = rec_mii(graph)
        unrolled = unroll_for_modulo(graph, factor)
        assert rec_mii(unrolled) <= factor * base

    @given(recurrent_graphs(), st.integers(min_value=1, max_value=3))
    @_SETTINGS
    def test_amortized_rec_bound_never_below_fractional(
        self, machine_graph, factor
    ):
        """RecMII(unroll u) / u >= max circuit Delay/Distance."""
        machine, graph = machine_graph
        back = [
            e
            for e in graph.edges
            if e.distance > 0 and not graph.operation(e.pred).is_pseudo
        ]
        # The chain contributes every operation's latency except the
        # last one's (the back edge's own delay replaces it); for a
        # single-op graph the back edge is a self-loop and the chain
        # contributes nothing.
        chain_delay = sum(
            graph.latency(op.index)
            for op in graph.real_operations()
        ) - graph.latency(
            max(op.index for op in graph.real_operations())
        )
        circuit_delay = chain_delay + back[0].delay
        fractional = circuit_delay / back[0].distance
        unrolled = unroll_for_modulo(graph, factor)
        assert rec_mii(unrolled) / factor >= min(fractional, 1.0) - 1e-9

    @given(recurrent_graphs(), st.integers(min_value=1, max_value=3))
    @_SETTINGS
    def test_op_count_scales_exactly(self, machine_graph, factor):
        machine, graph = machine_graph
        unrolled = unroll_for_modulo(graph, factor)
        assert unrolled.n_real_ops == factor * graph.n_real_ops

    @given(recurrent_graphs())
    @_SETTINGS
    def test_unroll_one_preserves_mii(self, machine_graph):
        machine, graph = machine_graph
        assert (
            compute_mii(unroll_for_modulo(graph, 1), machine).mii
            == compute_mii(graph, machine).mii
        )
