"""Property tests on the modulo reservation table (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import ModuloReservations, ReservationConflict
from repro.machine import ReservationTable

_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tables(draw):
    resources = ["r0", "r1", "r2"]
    n_uses = draw(st.integers(min_value=1, max_value=5))
    uses = set()
    while len(uses) < n_uses:
        uses.add(
            (
                draw(st.sampled_from(resources)),
                draw(st.integers(min_value=0, max_value=12)),
            )
        )
    return ReservationTable("t", sorted(uses))


class TestModuloFolding:
    @given(tables(), st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=30),
           st.integers(min_value=0, max_value=4))
    @_SETTINGS
    def test_conflict_is_periodic(self, table, ii, time, k):
        """A placement conflicts at T iff it conflicts at T + k*II."""
        mrt = ModuloReservations(ii)
        if mrt.self_conflicting(table):
            assert mrt.conflicts(table, time)
            return
        mrt.reserve(1, table, time)
        assert mrt.conflicts(table, time + k * ii)

    @given(tables(), st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=30))
    @_SETTINGS
    def test_reserve_release_is_identity(self, table, ii, time):
        mrt = ModuloReservations(ii)
        if mrt.self_conflicting(table):
            return
        before = mrt.occupancy()
        mrt.reserve(7, table, time)
        mrt.release(7)
        assert mrt.occupancy() == before

    @given(tables(), st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=30))
    @_SETTINGS
    def test_no_double_booking_ever(self, table, ii, time):
        """Whatever reserve() accepts leaves every cell singly owned."""
        mrt = ModuloReservations(ii)
        placed = 0
        for op, offset in enumerate(range(0, 3 * ii)):
            if not mrt.conflicts(table, time + offset):
                mrt.reserve(op, table, time + offset)
                placed += 1
        # Each placement holds len(uses) distinct cells.
        assert len(mrt.occupancy()) == placed * len(table.uses)

    @given(tables())
    @_SETTINGS
    def test_self_conflict_iff_offsets_congruent(self, table):
        """self_conflicting(II) exactly when two uses of one resource
        fold to the same slot."""
        for ii in range(1, 15):
            mrt = ModuloReservations(ii)
            expected = False
            by_resource = {}
            for resource, offset in table.uses:
                slots = by_resource.setdefault(resource, set())
                if offset % ii in slots:
                    expected = True
                slots.add(offset % ii)
            assert mrt.self_conflicting(table) == expected, ii

    @given(tables(), st.integers(min_value=1, max_value=9))
    @_SETTINGS
    def test_conflicting_ops_names_the_blocker(self, table, ii):
        mrt = ModuloReservations(ii)
        if mrt.self_conflicting(table):
            return
        mrt.reserve(3, table, 0)
        assert mrt.conflicting_ops([table], 0) == {3}
        assert mrt.conflicting_ops([table], ii) == {3}
