"""Scheduling traces and the forward-progress invariant."""

import pytest

from repro.core import modulo_schedule
from repro.core.trace import ScheduleTrace, TraceEvent
from repro.ir import DependenceGraph
from repro.machine import bus_conflict_machine, cydra5, single_alu_machine
from repro.workloads import synthetic_graph

from tests.conftest import chain_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestRecording:
    def test_every_final_placement_traced(self, alu):
        graph = chain_graph(alu, ["fadd", "fmul", "fadd"])
        trace = ScheduleTrace()
        result = modulo_schedule(graph, alu, trace=trace)
        final_placements = {}
        for event in trace.placements():
            final_placements[event.op] = event.time
        for op, time in result.schedule.times.items():
            if op == graph.START:
                continue
            assert final_placements[op] == time

    def test_attempt_events_track_ii_search(self, alu):
        graph = chain_graph(alu, ["fadd"] * 3)
        trace = ScheduleTrace()
        result = modulo_schedule(graph, alu, trace=trace)
        assert trace.attempts()[0] == result.mii_result.mii
        assert trace.attempts()[-1] == result.ii

    def test_picks_precede_placements(self, alu):
        graph = chain_graph(alu, ["fadd", "fadd"])
        trace = ScheduleTrace()
        modulo_schedule(graph, alu, trace=trace)
        kinds = [e.kind for e in trace.events]
        first_pick = kinds.index("pick")
        first_place = kinds.index("place")
        assert first_pick < first_place

    def test_displacements_name_the_culprit(self):
        machine = bus_conflict_machine()
        graph = DependenceGraph(machine)
        for i in range(4):
            graph.add_operation("fmul", dest=f"m{i}")
            graph.add_operation("fadd", dest=f"a{i}")
        graph.seal()
        trace = ScheduleTrace()
        modulo_schedule(graph, machine, budget_ratio=8.0, trace=trace)
        for event in trace.displacements():
            assert event.detail.startswith("by op")

    def test_render_includes_opcodes(self, alu):
        graph = chain_graph(alu, ["fmul"])
        trace = ScheduleTrace()
        modulo_schedule(graph, alu, trace=trace)
        assert "fmul" in trace.render(graph)

    def test_render_limit(self, alu):
        graph = chain_graph(alu, ["fadd"] * 10)
        trace = ScheduleTrace()
        modulo_schedule(graph, alu, trace=trace)
        assert "more events" in trace.render(graph, limit=2)


class TestForwardProgress:
    @pytest.mark.parametrize("seed", range(8))
    def test_invariant_on_synthetic_corpus(self, seed):
        """Figure 4's rule: a forced placement never reuses the slot the
        operation last held (within one IterativeSchedule attempt)."""
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        trace = ScheduleTrace()
        modulo_schedule(graph, machine, budget_ratio=6.0, trace=trace)
        assert trace.forward_progress_holds()

    def test_detects_violation_in_fabricated_trace(self):
        trace = ScheduleTrace()
        trace.attempt(3)
        trace.place(5, 7, "alu")
        trace.force(5, 7)  # re-placed at the very same slot: violation
        assert not trace.forward_progress_holds()

    def test_accepts_replacement_at_new_slot(self):
        trace = ScheduleTrace()
        trace.attempt(3)
        trace.place(5, 7, "alu")
        trace.force(5, 8)
        assert trace.forward_progress_holds()

    def test_attempts_reset_history(self):
        trace = ScheduleTrace()
        trace.attempt(3)
        trace.place(5, 7, "alu")
        trace.attempt(4)
        trace.force(5, 7)  # new attempt: same slot is fine
        assert trace.forward_progress_holds()

    def test_holds_across_many_attempt_boundaries(self):
        """The per-attempt history resets at *every* attempt event, not
        just the first: the same (op, slot) force is legal in attempts
        2 and 3 but a repeat within attempt 3 still violates."""
        trace = ScheduleTrace()
        for ii in (3, 4, 5):
            trace.attempt(ii)
            trace.place(1, 2, "alu")
            trace.force(1, 4)
        assert trace.forward_progress_holds()
        trace.place(1, 4, "alu")
        trace.force(1, 4)  # same attempt, same slot: violation
        assert not trace.forward_progress_holds()

    def test_violation_in_middle_attempt_detected(self):
        trace = ScheduleTrace()
        trace.attempt(3)
        trace.place(2, 1, "alu")
        trace.attempt(4)
        trace.place(2, 1, "alu")
        trace.force(2, 1)  # violation inside attempt 2
        trace.attempt(5)
        trace.place(2, 9, "alu")
        assert not trace.forward_progress_holds()


class TestRenderTruncation:
    def _trace_with_events(self, n):
        trace = ScheduleTrace()
        for op in range(n):
            trace.place(op, op, "alu")
        return trace

    def test_limit_counts_suppressed_events(self, alu):
        trace = self._trace_with_events(10)
        text = trace.render(limit=4)
        assert len(text.splitlines()) == 5  # 4 events + the ellipsis line
        assert "... 6 more events" in text

    def test_no_ellipsis_at_exact_limit(self):
        trace = self._trace_with_events(4)
        text = trace.render(limit=4)
        assert "more events" not in text
        assert len(text.splitlines()) == 4

    def test_limit_larger_than_trace(self):
        trace = self._trace_with_events(2)
        assert "more events" not in trace.render(limit=100)


class TestTracedEventsNameRealOperations:
    """Property: every place/force/displace in a traced corpus run names
    a valid operation of the graph being scheduled (and displacement
    culprits are valid ops too)."""

    @pytest.mark.parametrize("seed", range(12))
    def test_ops_are_valid_graph_indices(self, seed):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=seed)
        trace = ScheduleTrace()
        modulo_schedule(graph, machine, budget_ratio=6.0, trace=trace)
        for event in trace.events:
            if event.kind == "attempt":
                assert event.op == -1
                continue
            assert 0 <= event.op < graph.n_ops
            graph.operation(event.op)  # must resolve
            if event.kind == "displace":
                culprit = int(event.detail.removeprefix("by op"))
                assert 0 <= culprit < graph.n_ops

    def test_instruction_style_events_are_valid_too(self):
        machine = cydra5()
        graph = synthetic_graph(machine, seed=3)
        trace = ScheduleTrace()
        modulo_schedule(
            graph, machine, budget_ratio=6.0, style="instruction",
            trace=trace,
        )
        kinds = {e.kind for e in trace.events}
        assert "pick" in kinds and "place" in kinds
        for event in trace.events:
            if event.kind != "attempt":
                assert 0 <= event.op < graph.n_ops


class TestPhaseTimer:
    def test_phases_accumulate(self):
        from repro.core.trace import PhaseTimer

        timer = PhaseTimer()
        with timer.phase("mindist"):
            pass
        with timer.phase("mindist"):
            pass
        with timer.phase("scheduling"):
            pass
        assert set(timer.seconds) == {"mindist", "scheduling"}
        assert timer.seconds["mindist"] >= 0.0
        assert timer.total == pytest.approx(sum(timer.seconds.values()))

    def test_charged_even_when_block_raises(self):
        from repro.core.trace import PhaseTimer

        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("scheduling"):
                raise ValueError("boom")
        assert "scheduling" in timer.seconds

    def test_snapshot_has_total(self):
        from repro.core.trace import PhaseTimer

        timer = PhaseTimer()
        timer.charge("simulation", 0.25)
        timer.charge("simulation", 0.25)
        snapshot = timer.snapshot()
        assert snapshot == {"simulation": 0.5, "total": 0.5}

    def test_total_phase_name_is_reserved(self):
        """Regression: a phase literally named "total" used to be
        silently overwritten by the computed sum in snapshot()."""
        from repro.core.trace import PhaseTimer

        timer = PhaseTimer()
        with pytest.raises(ValueError, match="reserved"):
            with timer.phase("total"):
                pass
        with pytest.raises(ValueError, match="reserved"):
            timer.charge("total", 1.0)
        assert timer.seconds == {}  # nothing was charged

    def test_reserved_name_rejected_on_span_timer_view_too(self):
        from repro.obs import ObsContext

        timer = ObsContext().timer()
        with pytest.raises(ValueError, match="reserved"):
            with timer.phase("total"):
                pass
