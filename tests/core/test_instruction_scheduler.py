"""The instruction-driven scheduling style (Section 3.1's footnote)."""

import pytest

from repro.core import (
    assert_valid_schedule,
    modulo_schedule,
    validate_schedule,
)
from repro.core.instruction_scheduler import InstructionDrivenScheduler
from repro.ir import DependenceGraph, DependenceKind
from repro.loopir import compile_loop_full
from repro.machine import bus_conflict_machine, cydra5, single_alu_machine
from repro.simulator import check_equivalence
from repro.workloads.kernels import KERNELS

from tests.conftest import chain_graph, cross_iteration_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestBasics:
    def test_chain_achieves_mii(self, alu):
        graph = chain_graph(alu, ["fadd"] * 4)
        result = modulo_schedule(graph, alu, style="instruction")
        assert result.ii == result.mii_result.mii
        assert_valid_schedule(graph, alu, result.schedule)

    def test_recurrence(self, alu):
        graph = cross_iteration_graph(alu, distance=1)
        result = modulo_schedule(graph, alu, style="instruction")
        assert_valid_schedule(graph, alu, result.schedule)

    def test_start_pinned(self, alu):
        graph = reduction_graph(alu)
        result = modulo_schedule(graph, alu, style="instruction")
        assert result.schedule.times[graph.START] == 0

    def test_unknown_style_rejected(self, alu):
        graph = chain_graph(alu, ["fadd"])
        with pytest.raises(ValueError):
            modulo_schedule(graph, alu, style="vibes")

    def test_same_cycle_producer_consumer_separated(self, alu):
        """The re-check of Estart inside one cycle's sweep: a consumer
        must not be placed in the same sweep as its just-placed
        producer unless the delay allows it."""
        graph = chain_graph(alu, ["fmul", "fadd"])
        result = modulo_schedule(graph, alu, style="instruction")
        assert (
            result.schedule.times[2] - result.schedule.times[1]
            >= alu.latency("fmul")
        )

    def test_budget_respected(self, alu):
        graph = chain_graph(alu, ["fadd"] * 6)
        scheduler = InstructionDrivenScheduler(graph, alu, ii=6)
        attempt = scheduler.run(budget=3)
        assert not attempt.success
        assert attempt.steps <= 3

    def test_complex_tables(self):
        machine = bus_conflict_machine()
        graph = DependenceGraph(machine)
        for i in range(3):
            graph.add_operation("fmul", dest=f"m{i}")
            graph.add_operation("fadd", dest=f"a{i}")
        graph.seal()
        result = modulo_schedule(graph, machine, style="instruction")
        assert_valid_schedule(graph, machine, result.schedule)


class TestAgainstKernels:
    @pytest.mark.parametrize(
        "name", ["sdot", "saxpy", "lfk5_tridiag", "select_chain", "srot"]
    )
    def test_kernels_verify_end_to_end(self, name):
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(
            lowered.graph, machine, budget_ratio=6.0, style="instruction"
        )
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        report = check_equivalence(lowered, result.schedule, n=21, seed=9)
        assert report.ok, report.describe()

    def test_operation_style_at_least_as_good_on_average(self):
        """The paper prefers operation scheduling; on the kernel corpus
        its II must not lose to the instruction style overall."""
        machine = cydra5()
        operation_total = 0
        instruction_total = 0
        for name in sorted(KERNELS)[:20]:
            graph = compile_loop_full(
                KERNELS[name].source, machine, name=name
            ).graph
            operation_total += modulo_schedule(
                graph, machine, budget_ratio=6.0, style="operation"
            ).ii
            instruction_total += modulo_schedule(
                graph, machine, budget_ratio=6.0, style="instruction"
            ).ii
        assert operation_total <= instruction_total
