"""Property-based tests on the core invariants (hypothesis).

Random dependence graphs are generated directly (not via the calibrated
corpus generator) so that shrinking produces minimal counterexamples.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    compute_mii,
    compute_mindist,
    height_r,
    mindist_feasible,
    modulo_schedule,
    validate_schedule,
)
from repro.core.mindist import NO_PATH
from repro.baselines import list_schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine, two_alu_machine

_OPCODES = ["fadd", "fsub", "fmul", "load", "store", "copy"]


@st.composite
def random_graphs(draw):
    """A small random graph: forward DAG edges plus back edges with
    distance >= 1 (so every II-feasibility invariant applies)."""
    machine = draw(st.sampled_from([single_alu_machine(), two_alu_machine()]))
    n = draw(st.integers(min_value=1, max_value=10))
    graph = DependenceGraph(machine, name="prop")
    ops = [
        graph.add_operation(draw(st.sampled_from(_OPCODES)), dest=f"v{i}")
        for i in range(n)
    ]
    n_edges = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_edges):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            distance = draw(st.integers(min_value=1, max_value=3))
        elif a < b:
            distance = draw(st.integers(min_value=0, max_value=2))
        else:
            distance = draw(st.integers(min_value=1, max_value=3))
        kind = draw(
            st.sampled_from(
                [DependenceKind.FLOW, DependenceKind.ANTI, DependenceKind.OUTPUT]
            )
        )
        graph.add_edge(ops[a], ops[b], kind, distance=distance)
    graph.seal()
    return machine, graph


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSchedulerProperties:
    @given(random_graphs())
    @_SETTINGS
    def test_schedule_is_always_valid(self, machine_graph):
        machine, graph = machine_graph
        result = modulo_schedule(graph, machine, budget_ratio=6.0)
        assert validate_schedule(graph, machine, result.schedule) == []

    @given(random_graphs())
    @_SETTINGS
    def test_ii_at_least_mii(self, machine_graph):
        machine, graph = machine_graph
        result = modulo_schedule(graph, machine, budget_ratio=6.0)
        assert result.ii >= result.mii_result.mii

    @given(random_graphs())
    @_SETTINGS
    def test_list_schedule_valid_and_bounds_modulo_sl(self, machine_graph):
        machine, graph = machine_graph
        schedule = list_schedule(graph, machine)
        # Every distance-0 edge must be honored by the list schedule.
        for edge in graph.edges:
            if edge.distance == 0:
                gap = schedule.times[edge.succ] - schedule.times[edge.pred]
                assert gap >= edge.delay


class TestMIIProperties:
    @given(random_graphs())
    @_SETTINGS
    def test_mindist_feasible_exactly_from_recmii(self, machine_graph):
        machine, graph = machine_graph
        result = compute_mii(graph, machine)
        dist, _ = compute_mindist(graph, result.rec_mii)
        assert mindist_feasible(dist)
        if result.rec_mii > 1:
            below, _ = compute_mindist(graph, result.rec_mii - 1)
            assert not mindist_feasible(below)

    @given(random_graphs())
    @_SETTINGS
    def test_heightr_equals_mindist_to_stop(self, machine_graph):
        machine, graph = machine_graph
        ii = compute_mii(graph, machine).mii
        heights = height_r(graph, ii)
        dist, index = compute_mindist(graph, ii)
        stop = index[graph.stop]
        for op in range(graph.n_ops):
            value = dist[index[op], stop]
            if value != NO_PATH:
                assert heights[op] == int(value)

    @given(random_graphs())
    @_SETTINGS
    def test_resmii_monotone_in_budgetless_sense(self, machine_graph):
        """ResMII never exceeds the achieved II."""
        machine, graph = machine_graph
        result = modulo_schedule(graph, machine, budget_ratio=6.0)
        assert result.mii_result.res_mii <= result.ii
