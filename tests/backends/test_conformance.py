"""Backend-conformance harness: every registered backend, one contract.

Each backend reachable through :func:`repro.backends.get_backend` must
produce deterministic, statically valid schedules with an II in the
documented bounds, emit observability spans and counters, and key the
result cache on its own name.  The suite is parametrized over
:func:`backend_names`, so registering a new backend automatically puts
it under contract.
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import (
    cache_key,
    evaluation_from_dict,
    evaluation_to_dict,
)
from repro.analysis.runner import evaluate_loop
from repro.backends import IIPolicy, SchedulerBackend, backend_names, get_backend
from repro.backends.z3bridge import SolverUnavailable, z3_available
from repro.check import check_schedule
from repro.core import compute_mii
from repro.core.scheduler import default_max_ii
from repro.ir import schedule_to_json
from repro.loopir import compile_loop_full
from repro.machine import cydra5
from repro.obs import ObsContext
from repro.workloads.corpus import CorpusLoop

_SOURCES = {
    "dot": "for i in n:\n    s = s + x[i] * y[i]\n",
    "daxpy": "for i in n:\n    y[i] = y[i] + a * x[i]\n",
    "clipped": (
        "for i in n:\n"
        "    t = a[i] * w + b[i+1]\n"
        "    if t > hi:\n"
        "        t = hi\n"
        "    s = s + t\n"
        "    c[i] = t\n"
    ),
}


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def graphs(machine):
    return {
        name: compile_loop_full(source, machine, name=name).graph
        for name, source in _SOURCES.items()
    }


@pytest.fixture(scope="module")
def loop(machine):
    lowered = compile_loop_full(_SOURCES["dot"], machine, name="dot")
    return CorpusLoop(
        name="dot",
        graph=lowered.graph,
        category="test",
        entry_freq=1,
        loop_freq=100,
        executed=True,
        lowered=lowered,
    )


def _backend(name):
    return get_backend(name)


class TestRegistry:
    def test_expected_backends_registered(self):
        assert {"exact", "ims", "list"} <= set(backend_names())

    def test_names_sorted_and_unique(self):
        names = backend_names()
        assert names == sorted(set(names))

    def test_unknown_backend_is_a_clean_error(self):
        with pytest.raises(ValueError, match="no-such-backend"):
            get_backend("no-such-backend")

    @pytest.mark.parametrize("name", backend_names())
    def test_instances_declare_capabilities(self, name):
        backend = _backend(name)
        assert isinstance(backend, SchedulerBackend)
        assert backend.name == name
        assert isinstance(backend.modulo, bool)
        assert isinstance(backend.proves_optimality, bool)


@pytest.mark.parametrize("name", backend_names())
class TestScheduleContract:
    def test_deterministic(self, name, machine, graphs):
        for graph in graphs.values():
            first = _backend(name).schedule(graph, machine, IIPolicy())
            second = _backend(name).schedule(graph, machine, IIPolicy())
            assert first.ii == second.ii
            assert schedule_to_json(
                first.schedule, machine
            ) == schedule_to_json(second.schedule, machine)

    def test_checker_finds_no_errors(self, name, machine, graphs):
        for graph in graphs.values():
            result = _backend(name).schedule(graph, machine, IIPolicy())
            diags = check_schedule(graph, machine, result.schedule)
            assert diags.ok, diags.render()

    def test_ii_within_bounds(self, name, machine, graphs):
        backend = _backend(name)
        for graph in graphs.values():
            mii = compute_mii(graph, machine, exact=True).mii
            result = backend.schedule(graph, machine, IIPolicy())
            assert result.ii >= mii
            if backend.modulo:
                assert result.ii <= default_max_ii(graph, mii)

    def test_result_is_attributed(self, name, machine, graphs):
        graph = graphs["dot"]
        result = _backend(name).schedule(graph, machine, IIPolicy())
        assert result.backend == name
        records = result.attempt_records
        assert records, "backends must report their attempt history"
        assert records[-1].success
        assert records[-1].ii == result.ii
        assert all(r.backend in backend_names() for r in records)

    def test_obs_spans_and_counters_emitted(self, name, machine, graphs):
        obs = ObsContext()
        _backend(name).schedule(graphs["dot"], machine, IIPolicy(), obs=obs)
        snapshot = obs.to_dict()
        assert any(
            span["name"].startswith("schedule") for span in snapshot["spans"]
        )
        counters = snapshot["metrics"]["counters"]
        assert any(
            counters.get(key, 0) >= 1
            for key in ("sched.loops", "exact.loops")
        )

    def test_optimality_claims_match_capability(self, name, machine, graphs):
        backend = _backend(name)
        for graph in graphs.values():
            mii = compute_mii(graph, machine, exact=True).mii
            result = backend.schedule(graph, machine, IIPolicy())
            if result.optimal:
                # A proven-minimal II at the MII needs no solver; above
                # it, only a proving backend may claim optimality.
                assert backend.proves_optimality or result.ii == mii


@pytest.mark.parametrize("name", backend_names())
class TestCacheAndPayload:
    def test_cache_key_depends_on_backend(self, name, machine, loop):
        key = cache_key(loop, machine, backend=name)
        others = [
            cache_key(loop, machine, backend=other)
            for other in backend_names()
            if other != name
        ]
        assert key not in others
        if name != "ims":
            assert key != cache_key(loop, machine)

    def test_payload_round_trips_backend_fields(self, name, machine, loop):
        evaluation = evaluate_loop(loop, machine, backend=name)
        payload = evaluation_to_dict(evaluation, machine)
        restored = evaluation_from_dict(payload, loop, machine)
        assert restored.backend == evaluation.backend == name
        assert restored.optimal == evaluation.optimal
        assert restored.result.attempt_records == (
            evaluation.result.attempt_records
        )
        assert restored.result.certificates == evaluation.result.certificates
        assert restored.ii == evaluation.ii


class TestSolverGating:
    def test_z3_absence_is_gated_not_fatal(self):
        # The exact backend must construct (and solve) without z3 ...
        backend = get_backend("exact")
        assert backend.solver in ("cdcl", "z3")
        if not z3_available():
            assert backend.solver == "cdcl"

    def test_explicit_z3_without_package_raises(self, monkeypatch):
        if z3_available():
            pytest.skip("z3 installed; the gate cannot trip")
        with pytest.raises(SolverUnavailable):
            get_backend("exact", solver="z3")

    def test_env_selected_z3_without_package_raises(self, monkeypatch):
        if z3_available():
            pytest.skip("z3 installed; the gate cannot trip")
        monkeypatch.setenv("REPRO_SAT_SOLVER", "z3")
        with pytest.raises(SolverUnavailable):
            get_backend("exact")
