"""Property-based soundness tests for the exact (SAT) backend.

Two families of guarantees are exercised here, on randomly generated
small graphs (hypothesis shrinks counterexamples to minimal form):

* the backend ordering invariant — ``exact II <= IMS II <= list SL``,
  with the exact II never below the MII lower bound; and
* certificate soundness — when the exact backend claims a proven-minimal
  II, re-timing the very same assignment at any lower II must make the
  independent validator report violations (if it did not, a legal
  schedule below the "proven minimum" would exist, contradicting the
  proof).
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.backends import IIPolicy, get_backend
from repro.check import check_schedule
from repro.core import compute_mii
from repro.core.schedule import Schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import (
    bus_conflict_machine,
    single_alu_machine,
    two_alu_machine,
)

_OPCODES = ["fadd", "fsub", "fmul", "load", "store", "copy"]

#: Reduced solver budgets: the generated graphs have <= 6 operations,
#: so every solvable instance fits far below these caps and anything
#: that does not is reported honestly as unproven rather than hanging
#: the suite.  The conflict cap matters most — a single adversarial
#: probe at the default 200k conflicts can burn minutes.
_POLICY_KW = dict(
    max_time_vars=2500, max_clauses=10000, max_conflicts=5000
)


@st.composite
def random_graphs(draw):
    """A small random graph over a machine with real resource contention."""
    machine = draw(
        st.sampled_from(
            [single_alu_machine(), two_alu_machine(), bus_conflict_machine()]
        )
    )
    n = draw(st.integers(min_value=1, max_value=6))
    opcodes = sorted(set(_OPCODES) & set(machine.opcode_names))
    graph = DependenceGraph(machine, name="prop")
    ops = [
        graph.add_operation(draw(st.sampled_from(opcodes)), dest=f"v{i}")
        for i in range(n)
    ]
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a < b:
            distance = draw(st.integers(min_value=0, max_value=2))
        else:
            distance = draw(st.integers(min_value=1, max_value=3))
        kind = draw(
            st.sampled_from(
                [
                    DependenceKind.FLOW,
                    DependenceKind.ANTI,
                    DependenceKind.OUTPUT,
                ]
            )
        )
        graph.add_edge(ops[a], ops[b], kind, distance=distance)
    graph.seal()
    return machine, graph


_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _exact():
    return get_backend("exact", **_POLICY_KW)


def _retimed(schedule: Schedule, ii: int) -> Schedule:
    """The same assignment (times, alternatives) declared at a lower II."""
    return Schedule(
        schedule.graph,
        ii,
        dict(schedule.times),
        dict(schedule.alternatives),
    )


class TestBackendOrdering:
    @given(random_graphs())
    @_SETTINGS
    def test_exact_below_ims_below_list_and_valid(self, machine_graph):
        machine, graph = machine_graph
        mii = compute_mii(graph, machine, exact=True).mii
        exact = _exact().schedule(graph, machine, IIPolicy())
        ims = get_backend("ims").schedule(graph, machine, IIPolicy())
        lst = get_backend("list").schedule(graph, machine, IIPolicy())
        assert mii <= exact.ii <= ims.ii <= lst.ii
        assert exact.optimal in (True, None)
        diags = check_schedule(graph, machine, exact.schedule)
        assert diags.ok, diags.render()


class TestCertificateSoundness:
    @given(random_graphs())
    @_SETTINGS
    def test_minimality_claims_are_certified_and_unbeatable(
        self, machine_graph
    ):
        machine, graph = machine_graph
        mii = compute_mii(graph, machine, exact=True).mii
        result = _exact().schedule(graph, machine, IIPolicy())
        if result.optimal is not True:
            return  # unproven: no minimality claim to attack
        certs = result.certificates
        assert result.ii in certs and certs[result.ii]["status"] == "sat"
        for lower in range(mii, result.ii):
            assert certs[lower]["status"] in ("unsat", "infeasible")
            diags = check_schedule(
                graph, machine, _retimed(result.schedule, lower)
            )
            assert not diags.ok, (
                f"proven-minimal II={result.ii} but the same assignment "
                f"passed validation at II={lower}"
            )


class TestKnownCounterexample:
    """A fixed 3-op loop on the bus-conflict machine whose MII=3 is
    infeasible: the exact backend must refute II=3 and prove II=4."""

    @pytest.fixture(scope="class")
    def instance(self):
        machine = bus_conflict_machine()
        graph = DependenceGraph(machine, name="bus3")
        a = graph.add_operation("fadd", dest="v0")
        b = graph.add_operation("fmul", dest="v1")
        c = graph.add_operation("fsub", dest="v2")
        graph.add_edge(c, c, DependenceKind.FLOW, distance=2)
        graph.add_edge(b, a, DependenceKind.FLOW, distance=1)
        graph.add_edge(b, b, DependenceKind.OUTPUT, distance=2)
        graph.add_edge(c, c, DependenceKind.FLOW, distance=3)
        graph.add_edge(c, a, DependenceKind.OUTPUT, distance=1)
        graph.seal()
        return machine, graph, (a, b, c)

    def test_proves_ii_4_with_refutation_at_mii(self, instance):
        machine, graph, _ = instance
        mii = compute_mii(graph, machine, exact=True).mii
        assert mii == 3
        result = _exact().schedule(graph, machine, IIPolicy())
        assert result.ii == 4
        assert result.optimal is True
        assert result.certificates[3]["status"] in ("unsat", "infeasible")
        assert result.certificates[4]["status"] == "sat"
        assert check_schedule(graph, machine, result.schedule).ok

    def test_retimed_below_proof_fails_validation(self, instance):
        machine, graph, _ = instance
        result = _exact().schedule(graph, machine, IIPolicy())
        diags = check_schedule(graph, machine, _retimed(result.schedule, 3))
        assert not diags.ok
        assert diags.errors

    def test_tampered_time_fails_validation(self, instance):
        machine, graph, ops = instance
        a, b, _ = ops
        result = _exact().schedule(graph, machine, IIPolicy())
        times = dict(result.schedule.times)
        # Violate the b -> a flow dependence (distance 1): pull the
        # consumer far before the producer's completion.
        times[a] = times[b] - 2 * result.ii
        tampered = Schedule(
            graph, result.ii, times, dict(result.schedule.alternatives)
        )
        diags = check_schedule(graph, machine, tampered)
        assert not diags.ok
