"""The corpus-evaluation engine: cache keys, caching, failure records."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.analysis.engine as engine_module
from repro.analysis import evaluate_corpus
from repro.analysis.engine import (
    EvaluationEngine,
    cache_key,
    evaluation_from_dict,
    evaluation_to_dict,
)
from repro.analysis.regression import load_timing_report, timing_speedup
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import cydra5
from repro.machine.serialize import machine_from_dict, machine_to_dict
from repro.workloads import build_corpus
from repro.workloads.corpus import CorpusLoop

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: Deterministic DSL loop used for the cross-process stability check.
DSL_SOURCE = "for i in n:\n    s = s + x[i] * y[i]\n"


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    return build_corpus(
        machine, n_synthetic=8, seed=13, include_kernels=False
    )


def _recurrence_graph(machine, distance=1, delay=None, extra_edge=False):
    """Small load->accumulate graph with a tunable recurrence."""
    graph = DependenceGraph(machine, name="probe")
    load = graph.add_operation("load", dest="v")
    acc = graph.add_operation("fadd", dest="s", srcs=("s", "v"))
    graph.add_edge(load, acc, DependenceKind.FLOW, delay=delay)
    graph.add_edge(acc, acc, DependenceKind.FLOW, distance=distance)
    if extra_edge:
        graph.add_edge(load, acc, DependenceKind.ANTI, distance=1)
    return graph.seal()


def _infeasible_loop(machine):
    """A deliberately infeasible loop: a zero-distance dependence circuit."""
    graph = DependenceGraph(machine, name="infeasible")
    a = graph.add_operation("fadd", dest="a", srcs=("b",))
    b = graph.add_operation("fmul", dest="b", srcs=("a",))
    graph.add_edge(a, b, DependenceKind.FLOW)
    graph.add_edge(b, a, DependenceKind.FLOW)
    return CorpusLoop(
        name="infeasible",
        graph=graph.seal(),
        category="synthetic",
        entry_freq=1,
        loop_freq=10,
        executed=True,
    )


class TestCacheKey:
    def test_stable_within_process(self, machine):
        graph = _recurrence_graph(machine)
        assert cache_key(graph, machine) == cache_key(graph, machine)

    def test_stable_across_rebuilds(self, machine):
        first = _recurrence_graph(machine)
        second = _recurrence_graph(machine)
        assert cache_key(first, machine) == cache_key(second, machine)

    def test_stable_across_corpus_rebuilds(self, machine, corpus):
        rebuilt = build_corpus(
            machine, n_synthetic=8, seed=13, include_kernels=False
        )
        for a, b in zip(corpus, rebuilt):
            assert cache_key(a, machine) == cache_key(b, machine)

    def test_stable_across_processes(self, machine):
        """The key must not depend on the interpreter's hash seed."""
        snippet = (
            "from repro.loopir import compile_loop_full\n"
            "from repro.machine import cydra5\n"
            "from repro.analysis.engine import cache_key\n"
            "machine = cydra5()\n"
            f"lowered = compile_loop_full({DSL_SOURCE!r}, machine, name='dot')\n"
            "print(cache_key(lowered.graph, machine))\n"
        )
        keys = []
        for hash_seed in ("0", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(SRC_DIR) + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            output = subprocess.run(
                [sys.executable, "-c", snippet],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            keys.append(output.stdout.strip())
        assert keys[0] == keys[1]
        assert len(keys[0]) == 64  # sha256 hex

    def test_edge_distance_changes_key(self, machine):
        base = _recurrence_graph(machine, distance=1)
        changed = _recurrence_graph(machine, distance=2)
        assert cache_key(base, machine) != cache_key(changed, machine)

    def test_edge_delay_changes_key(self, machine):
        base = _recurrence_graph(machine)
        changed = _recurrence_graph(machine, delay=7)
        assert cache_key(base, machine) != cache_key(changed, machine)

    def test_extra_edge_changes_key(self, machine):
        base = _recurrence_graph(machine)
        changed = _recurrence_graph(machine, extra_edge=True)
        assert cache_key(base, machine) != cache_key(changed, machine)

    def test_machine_latency_changes_key(self, machine):
        graph = _recurrence_graph(machine)
        description = machine_to_dict(machine)
        description["opcodes"][0]["latency"] += 1
        mutated = machine_from_dict(description)
        assert cache_key(graph, machine) != cache_key(graph, mutated)

    def test_budget_ratio_changes_key(self, machine):
        graph = _recurrence_graph(machine)
        assert cache_key(graph, machine, budget_ratio=6.0) != cache_key(
            graph, machine, budget_ratio=2.0
        )

    def test_exact_mii_changes_key(self, machine):
        graph = _recurrence_graph(machine)
        assert cache_key(graph, machine, exact_mii=True) != cache_key(
            graph, machine, exact_mii=False
        )

    def test_verify_iterations_changes_key(self, machine):
        graph = _recurrence_graph(machine)
        assert cache_key(graph, machine, verify_iterations=0) != cache_key(
            graph, machine, verify_iterations=16
        )

    def test_format_version_changes_key(self, machine, monkeypatch):
        graph = _recurrence_graph(machine)
        before = cache_key(graph, machine)
        monkeypatch.setattr(
            engine_module,
            "CODE_FORMAT_VERSION",
            engine_module.CODE_FORMAT_VERSION + 1,
        )
        assert cache_key(graph, machine) != before

    def test_profile_does_not_change_key(self, machine, corpus):
        """The execution profile scales the time model, not the schedule."""
        loop = corpus[0]
        twin = CorpusLoop(
            name=loop.name,
            graph=loop.graph,
            category=loop.category,
            entry_freq=loop.entry_freq + 5,
            loop_freq=loop.loop_freq * 2,
            executed=not loop.executed,
        )
        assert cache_key(loop, machine) == cache_key(twin, machine)


class TestPayloadRoundTrip:
    def test_round_trip_is_identity(self, machine, corpus):
        engine = EvaluationEngine(machine)
        evaluation = engine.evaluate_loop(corpus[0])
        payload = evaluation_to_dict(evaluation, machine)
        rebuilt = evaluation_from_dict(payload, corpus[0], machine)
        assert evaluation_to_dict(rebuilt, machine) == payload
        assert rebuilt.loop is corpus[0]
        assert rebuilt.ii == evaluation.ii
        assert rebuilt.exec_time == evaluation.exec_time

    def test_json_round_trip_is_identity(self, machine, corpus):
        engine = EvaluationEngine(machine)
        evaluation = engine.evaluate_loop(corpus[1])
        payload = evaluation_to_dict(evaluation, machine)
        assert json.loads(json.dumps(payload)) == payload


class TestCache:
    def test_warm_cache_skips_all_work(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        cold = engine.evaluate(corpus)
        assert cold.hits == 0 and cold.misses == len(corpus)
        assert cold.phase_seconds().get("scheduling", 0.0) > 0.0

        warm = engine.evaluate(corpus)
        assert warm.hits == len(corpus) and warm.misses == 0
        phases = warm.phase_seconds()
        assert phases.get("mindist", 0.0) == 0.0
        assert phases.get("scheduling", 0.0) == 0.0
        assert phases.get("simulation", 0.0) == 0.0
        assert all(t.cache_hit for t in warm.timings)

        canonical = lambda e: json.dumps(
            evaluation_to_dict(e, machine), sort_keys=True
        )
        assert list(map(canonical, warm.evaluations)) == list(
            map(canonical, cold.evaluations)
        )

    def test_cache_layout_is_content_addressed(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        engine.evaluate(corpus[:1])
        key = engine.key_for(corpus[0])
        path = engine.cache_path(key)
        assert path == tmp_path / "cache" / key[:2] / f"{key}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["format"].startswith(
            "repro.loop-evaluation"
        )

    def test_corrupt_entry_is_a_miss(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        engine.evaluate(corpus[:1])
        key = engine.key_for(corpus[0])
        engine.cache_path(key).write_text("{not json")
        again = engine.evaluate(corpus[:1])
        assert again.hits == 0 and again.misses == 1
        assert again.ok

    def test_corruption_is_counted_and_entry_replaced(
        self, machine, corpus, tmp_path
    ):
        """A garbled entry ticks cache_corrupt and is rewritten clean."""
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        clean = engine.evaluate(corpus[:2])
        assert clean.cache_corrupt == 0
        key = engine.key_for(corpus[0])
        path = engine.cache_path(key)
        path.write_bytes(path.read_bytes()[:40])  # truncated mid-document
        again = engine.evaluate(corpus[:2])
        assert again.cache_corrupt == 1
        assert again.hits == 1 and again.misses == 1
        assert again.ok
        # The rewrite left a loadable entry behind.
        third = engine.evaluate(corpus[:2])
        assert third.hits == 2 and third.cache_corrupt == 0

    def test_foreign_document_is_counted_corrupt(
        self, machine, corpus, tmp_path
    ):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        engine.evaluate(corpus[:1])
        path = engine.cache_path(engine.key_for(corpus[0]))
        path.write_text(json.dumps({"format": "someone-elses-cache"}))
        again = engine.evaluate(corpus[:1])
        assert again.cache_corrupt == 1 and again.ok

    def test_no_cache_flag_bypasses_directory(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(
            machine, cache_dir=tmp_path / "cache", use_cache=False
        )
        engine.evaluate(corpus[:2])
        assert not (tmp_path / "cache").exists()

    def test_config_change_invalidates(self, machine, corpus, tmp_path):
        cache = tmp_path / "cache"
        EvaluationEngine(machine, cache_dir=cache).evaluate(corpus)
        other = EvaluationEngine(
            machine, cache_dir=cache, budget_ratio=2.0
        ).evaluate(corpus)
        assert other.hits == 0 and other.misses == len(corpus)


class TestFailureRecords:
    def test_infeasible_loop_becomes_failure_record(self, machine, corpus):
        mixed = [corpus[0], _infeasible_loop(machine), corpus[1]]
        result = EvaluationEngine(machine).evaluate(mixed)
        assert len(result.evaluations) == 2
        assert [e.loop.name for e in result.evaluations] == [
            corpus[0].name,
            corpus[1].name,
        ]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 1
        assert failure.loop_name == "infeasible"
        assert failure.phase == "mindist"
        assert failure.error_type == "GraphError"
        assert "zero-distance" in failure.message
        assert failure.traceback
        assert not result.ok

    def test_evaluate_corpus_surfaces_failures(self, machine, corpus):
        mixed = [corpus[0], _infeasible_loop(machine), corpus[1]]
        failures = []
        evaluations = evaluate_corpus(mixed, machine, failures=failures)
        assert len(evaluations) == 2
        assert len(failures) == 1
        assert failures[0].loop_name == "infeasible"

    def test_failures_appear_in_timing_report(self, machine, corpus):
        mixed = [_infeasible_loop(machine), corpus[0]]
        report = EvaluationEngine(machine).evaluate(mixed).timing_report()
        assert report["n_failures"] == 1
        assert report["failures"][0]["loop"] == "infeasible"
        assert report["failures"][0]["error_type"] == "GraphError"

    def test_parallel_failures_also_structured(self, machine, corpus):
        mixed = [corpus[0], _infeasible_loop(machine), corpus[1]]
        result = EvaluationEngine(machine, jobs=2).evaluate(mixed)
        assert len(result.evaluations) == 2
        assert len(result.failures) == 1
        assert result.failures[0].error_type == "GraphError"

    def test_evaluate_loop_raises(self, machine):
        engine = EvaluationEngine(machine)
        with pytest.raises(RuntimeError, match="infeasible"):
            engine.evaluate_loop(_infeasible_loop(machine))


class TestTimingReport:
    def test_report_structure(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        result = engine.evaluate(corpus)
        report = result.timing_report()
        assert report["format"] == "repro.engine-timing.v1"
        assert report["machine"] == machine.name
        assert report["n_loops"] == len(corpus)
        assert len(report["loops"]) == len(corpus)
        record = report["loops"][0]
        assert set(record) == {
            "index", "loop", "key", "cache_hit", "seconds", "resumed"
        }
        assert record["seconds"]["total"] > 0.0

    def test_write_and_load_round_trip(self, machine, corpus, tmp_path):
        engine = EvaluationEngine(machine, cache_dir=tmp_path / "cache")
        cold = engine.evaluate(corpus)
        warm = engine.evaluate(corpus)
        cold_path = cold.write_timing_json(tmp_path / "cold.json")
        warm_path = warm.write_timing_json(tmp_path / "warm.json")
        cold_report = load_timing_report(cold_path)
        warm_report = load_timing_report(warm_path)
        assert warm_report["cache"]["hits"] == len(corpus)
        assert warm_report["cache"]["misses"] == 0
        assert timing_speedup(cold_report, warm_report) > 0.0

    def test_load_rejects_other_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_timing_report(path)
