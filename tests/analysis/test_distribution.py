"""Table-3-style distribution rows."""

import pytest

from repro.analysis import distribution_row


class TestDistributionRow:
    def test_basic_statistics(self):
        row = distribution_row("ops", [4, 4, 8, 12, 100], minimum_possible=4)
        assert row.frequency_of_minimum == pytest.approx(0.4)
        assert row.median == 8
        assert row.mean == pytest.approx(25.6)
        assert row.maximum == 100

    def test_minimum_possible_need_not_be_observed(self):
        row = distribution_row("x", [5, 6], minimum_possible=1)
        assert row.frequency_of_minimum == 0.0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            distribution_row("x", [], minimum_possible=0)

    def test_float_tolerance(self):
        row = distribution_row(
            "ratio", [1.0, 1.0 + 1e-12, 2.0], minimum_possible=1.0
        )
        assert row.frequency_of_minimum == pytest.approx(2 / 3)

    def test_cells_are_strings(self):
        row = distribution_row("x", [1, 2, 3], minimum_possible=1)
        assert all(isinstance(c, str) for c in row.cells())

    def test_skew_signature(self):
        """Long-tailed data shows median < mean, the paper's signature."""
        row = distribution_row(
            "skewed", [1] * 90 + [100] * 10, minimum_possible=1
        )
        assert row.median < row.mean
