"""Least-squares fits for the complexity study."""

import pytest

from repro.analysis import fit_linear, fit_power, fit_quadratic


class TestLinearFit:
    def test_exact_line_through_origin(self):
        xs = [1, 2, 3, 4]
        fit = fit_linear(xs, [3 * x for x in xs])
        assert fit.slope == pytest.approx(3.0)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-9)

    def test_with_intercept(self):
        xs = [0, 1, 2, 3]
        fit = fit_linear(xs, [2 * x + 5 for x in xs], through_origin=False)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)

    def test_noise_increases_residual(self):
        xs = list(range(1, 20))
        clean = fit_linear(xs, [2.0 * x for x in xs])
        noisy = fit_linear(
            xs, [2.0 * x + (1 if x % 2 else -1) * 10 for x in xs]
        )
        assert noisy.residual_std > clean.residual_std

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([], [])

    def test_describe_contains_slope(self):
        fit = fit_linear([1, 2], [3, 6])
        assert "3.0000N" in fit.describe()


class TestQuadraticFit:
    def test_exact_quadratic(self):
        xs = list(range(1, 10))
        fit = fit_quadratic(xs, [0.5 * x * x + 2 * x + 1 for x in xs])
        assert fit.a == pytest.approx(0.5)
        assert fit.b == pytest.approx(2.0)
        assert fit.c == pytest.approx(1.0)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_quadratic([1, 2], [1, 2])


class TestPowerFit:
    def test_recovers_exponent(self):
        xs = [2, 4, 8, 16, 32]
        fit = fit_power(xs, [3 * x**2 for x in xs])
        assert fit.exponent == pytest.approx(2.0, abs=0.01)
        assert fit.scale == pytest.approx(3.0, rel=0.05)

    def test_linear_data_has_unit_exponent(self):
        xs = [1, 2, 4, 8]
        fit = fit_power(xs, [5 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_nonpositive_points_dropped(self):
        fit = fit_power([0, 1, 2, 4], [9, 2, 4, 8])
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power([1], [1])
