"""The execution-time model."""

import pytest

from repro.analysis import execution_time, execution_time_bound


class TestExecutionTime:
    def test_formula(self):
        # 2 entries * SL 10 + (100 - 2) iterations * II 3.
        assert execution_time(2, 100, 10, 3) == 2 * 10 + 98 * 3

    def test_single_iteration_pays_only_sl(self):
        assert execution_time(1, 1, 10, 3) == 10

    def test_ii_dominates_long_loops(self):
        short = execution_time(1, 10, 50, 5)
        long = execution_time(1, 10_000, 50, 5)
        assert long / 10_000 == pytest.approx(5, rel=0.01)

    def test_invalid_frequencies_rejected(self):
        with pytest.raises(ValueError):
            execution_time(5, 3, 10, 1)
        with pytest.raises(ValueError):
            execution_time(-1, 3, 10, 1)

    def test_bound_uses_bounds(self):
        assert execution_time_bound(1, 100, 8, 2) == execution_time(
            1, 100, 8, 2
        )

    def test_bound_never_exceeds_actual_for_dominated_terms(self):
        actual = execution_time(1, 100, 10, 3)
        bound = execution_time_bound(1, 100, 9, 3)
        assert bound <= actual
