"""The corpus evaluation runner and the report renderer."""

import pytest

from repro.analysis import evaluate_corpus, evaluate_loop, render_series, render_table
from repro.machine import cydra5
from repro.workloads import build_corpus


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    return build_corpus(machine, n_synthetic=25, seed=7)


@pytest.fixture(scope="module")
def evaluations(machine, corpus):
    return evaluate_corpus(corpus, machine, budget_ratio=6.0)


class TestEvaluation:
    def test_every_loop_evaluated(self, corpus, evaluations):
        assert len(evaluations) == len(corpus)

    def test_ii_at_least_mii(self, evaluations):
        assert all(e.ii >= e.mii for e in evaluations)

    def test_sl_at_least_bound(self, evaluations):
        assert all(e.sl >= e.sl_bound for e in evaluations)
        assert all(e.sl_ratio >= 1.0 - 1e-9 for e in evaluations)

    def test_exec_time_at_least_bound(self, evaluations):
        assert all(e.exec_time >= e.exec_bound for e in evaluations)

    def test_schedule_ratio_at_least_one(self, evaluations):
        assert all(e.schedule_ratio >= 1.0 - 1e-9 for e in evaluations)

    def test_counters_populated(self, evaluations):
        sample = evaluations[0]
        assert sample.counters.findtimeslot_iters > 0
        assert sample.counters.mindist_invocations >= 0

    def test_single_loop_evaluation(self, machine, corpus):
        evaluation = evaluate_loop(corpus[0], machine)
        assert evaluation.loop is corpus[0]
        assert evaluation.n_real_ops == corpus[0].graph.n_real_ops


class TestReportRendering:
    def test_render_table_aligns_columns(self):
        text = render_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, two rows
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_render_series(self):
        text = render_series(
            "ratio", ["dilation", "ineff"], [(1.0, [0.05, 2.6]), (2.0, [0.03, 1.6])]
        )
        assert "ratio" in text
        assert "0.0500" in text

    def test_render_phase_summary_orders_and_pins_total(self):
        from repro.analysis import render_phase_summary

        text = render_phase_summary(
            {"scheduling": 2.0, "mindist": 3.0, "total": 5.0}
        )
        lines = text.splitlines()
        assert lines[0] == "engine phase seconds:"
        body = [line.split()[0] for line in lines[3:]]
        assert body == ["mindist", "scheduling", "total"]
