"""The consolidated Table-3 builder."""

import pytest

from repro.analysis import evaluate_corpus, table3_rows
from repro.machine import cydra5
from repro.workloads import build_corpus


@pytest.fixture(scope="module")
def rows():
    machine = cydra5()
    corpus = build_corpus(machine, n_synthetic=20, seed=11)
    return table3_rows(evaluate_corpus(corpus, machine, budget_ratio=6.0))


class TestTable3Rows:
    def test_eleven_rows_in_paper_order(self, rows):
        names = [row.name for row in rows]
        assert names[0] == "Number of operations"
        assert names[1] == "MII"
        assert names[-1] == "Number of nodes scheduled (ratio)"
        assert len(rows) == 11

    def test_ratio_rows_at_least_one(self, rows):
        by_name = {row.name: row for row in rows}
        for name in (
            "II / MII",
            "Schedule length (ratio)",
            "Execution time (ratio)",
            "Number of nodes scheduled (ratio)",
        ):
            assert by_name[name].median >= 1.0 - 1e-9

    def test_delta_row_consistent_with_ratio_row(self, rows):
        by_name = {row.name: row for row in rows}
        assert (
            by_name["II - MII"].frequency_of_minimum
            == by_name["II / MII"].frequency_of_minimum
        )

    def test_cells_render(self, rows):
        for row in rows:
            assert len(row.cells()) == 6
