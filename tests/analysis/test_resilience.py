"""Fault-tolerant corpus execution, proved end to end by fault injection.

Every resilience mechanism is exercised against the real engine with
deterministic injected faults (:mod:`repro.analysis.faultinject`): the
cooperative/SIGALRM watchdog, the pool reaper, crash-isolated retries,
the degradation ladder, cache-corruption recovery, checkpoint/resume and
the quarantine.  The load-bearing property throughout: after transient
faults are retried away, results are *bit-identical* to a clean run.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

import repro.analysis.engine as engine_module
from repro.analysis.engine import (
    EvaluationEngine,
    LoopFailure,
    _WatchdogAlarm,
    evaluation_to_dict,
)
from repro.analysis.faultinject import (
    ExoticError,
    FaultPlan,
    FaultSpecError,
    InjectedTransientError,
    NULL_PLAN,
    parse_fault_spec,
)
from repro.analysis.resilience import (
    DETERMINISTIC,
    Deadline,
    DeadlineExceeded,
    RESOURCE,
    ResultJournal,
    RetryPolicy,
    TRANSIENT,
    classify_failure,
    load_quarantine,
    write_quarantine,
)
from repro.core.mindist import compute_mindist
from repro.core.scheduler import SchedulingFailure, modulo_schedule
from repro.machine import cydra5
from repro.obs.context import ObsContext
from repro.workloads import build_corpus


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    return build_corpus(machine, n_synthetic=4, seed=3, include_kernels=False)


def _bytes_of(result, machine):
    """Canonical serialized records — the bit-identity yardstick."""
    return [
        json.dumps(evaluation_to_dict(e, machine), sort_keys=True)
        for e in result.evaluations
    ]


@pytest.fixture(scope="module")
def clean(machine, corpus):
    """A fault-free reference run (serial, no cache)."""
    result = EvaluationEngine(machine, fault_plan=NULL_PLAN).evaluate(corpus)
    assert result.ok
    return result


# ----------------------------------------------------------------------
# Policy units


def _expired_deadline():
    deadline = Deadline(1e-6)
    time.sleep(0.002)
    return deadline


class TestDeadline:
    def test_fresh_deadline_has_time(self):
        deadline = Deadline(60.0)
        assert not deadline.expired
        assert deadline.remaining() > 0
        deadline.check("anywhere")  # no raise

    def test_expired_deadline_raises_with_location(self):
        deadline = _expired_deadline()
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="mindist"):
            deadline.check("mindist")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_threads_through_mindist(self, machine, corpus):
        graph = corpus[0].graph
        with pytest.raises(DeadlineExceeded):
            compute_mindist(graph, 1, deadline=_expired_deadline())

    def test_threads_through_modulo_schedule(self, machine, corpus):
        with pytest.raises(DeadlineExceeded):
            modulo_schedule(
                corpus[0].graph, machine, deadline=_expired_deadline()
            )

    def test_watchdog_alarm_backstop(self):
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded, match="SIGALRM"):
            with _WatchdogAlarm(0.05):
                time.sleep(5.0)
        assert time.monotonic() - started < 2.0


class TestTaxonomy:
    @pytest.mark.parametrize(
        "error_type,kind",
        [
            ("WorkerCrash", TRANSIENT),
            ("WorkerHang", TRANSIENT),
            ("BrokenProcessPool", TRANSIENT),
            ("InjectedTransientError", TRANSIENT),
            ("DeadlineExceeded", RESOURCE),
            ("MemoryError", RESOURCE),
            ("GraphError", DETERMINISTIC),
            ("SchedulingFailure", DETERMINISTIC),
            ("VerificationError", DETERMINISTIC),
            ("NeverHeardOfThisError", DETERMINISTIC),
        ],
    )
    def test_classification(self, error_type, kind):
        assert classify_failure(error_type) == kind

    def test_deterministic_failures_never_retry(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(DETERMINISTIC, 0)
        assert policy.should_retry(TRANSIENT, 0)
        assert policy.should_retry(RESOURCE, 4)
        assert not policy.should_retry(TRANSIENT, 5)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)


class TestFaultSpec:
    def test_round_trips(self):
        plan = parse_fault_spec("crash@3;hang@5:60;raise@4:exotic!;corrupt@2")
        assert plan.spec() == "crash@3;hang@5:60;raise@4:exotic!;corrupt@2"
        assert plan.corrupts_cache(2) and not plan.corrupts_cache(3)
        assert [d.kind for d in plan.for_loop(3)] == ["crash"]
        assert plan.for_loop(2) == ()  # corrupt is engine-side

    def test_transient_fires_on_first_attempt_only(self):
        directive = parse_fault_spec("crash@0").directives[0]
        assert directive.fires(0) and not directive.fires(1)
        persistent = parse_fault_spec("crash@0!").directives[0]
        assert persistent.fires(0) and persistent.fires(7)

    @pytest.mark.parametrize(
        "bad", ["wedge@1", "crash", "crash@x", "raise@1:NoSuchError"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_from_env(self):
        plan = FaultPlan.from_env({"REPRO_FAULT_INJECT": "slow@1:0.5"})
        assert plan and plan.directives[0].kind == "slow"
        assert not FaultPlan.from_env({})


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = ResultJournal(tmp_path / "j.jsonl")
        with journal:
            journal.append("k1", 0, "a", payload={"format": "x", "ii": 3})
            journal.append("k2", 1, "b", failure={"error_type": "Boom"})
            journal.append("k1", 0, "a", payload={"format": "x", "ii": 4})
        records = journal.load()
        assert set(records) == {"k1", "k2"}
        assert records["k1"]["payload"]["ii"] == 4  # latest wins
        assert not records["k2"]["ok"]
        assert journal.completed_payloads() == {"k1": {"format": "x", "ii": 4}}

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(path) as journal:
            journal.append("k1", 0, "a", payload={"format": "x"})
            journal.append("k2", 1, "b", payload={"format": "x"})
        # Simulate the crash-interrupted write: clip the last line.
        text = path.read_text()
        path.write_text(text[: text.rindex("\n", 0, len(text) - 1) + 1 + 10])
        records = ResultJournal(path).load()
        assert set(records) == {"k1"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultJournal(tmp_path / "absent.jsonl").load() == {}


class TestQuarantine:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "quarantine.json"
        entries = [{"loop": "bad", "kind": DETERMINISTIC, "detail": {}}]
        write_quarantine(path, "cydra5", entries)
        assert load_quarantine(path) == entries

    def test_written_even_when_empty(self, tmp_path):
        path = write_quarantine(tmp_path / "q.json", "cydra5", [])
        assert load_quarantine(path) == []

    def test_foreign_document_rejected(self, tmp_path):
        path = tmp_path / "q.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_quarantine(path)


class TestFailurePickling:
    def test_scheduling_failure_survives_pickle(self):
        failure = SchedulingFailure(
            "no schedule", attempted_iis=[4, 5, 6],
            steps_by_ii={4: 60, 5: 60, 6: 12}, budget=60,
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.attempted_iis == [4, 5, 6]
        assert clone.detail()["budget_per_ii"] == 60
        assert clone.detail()["steps_total"] == 132
        assert clone.detail()["attempted_iis"] == [4, 5, 6]

    def test_loop_failure_record_survives_pickle(self):
        failure = LoopFailure(
            index=3, loop_name="l", phase="scheduling",
            error_type="ExoticError", message="exotic failure code=13",
            kind=DETERMINISTIC, attempts=1, detail={"code": 13},
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure

    def test_exotic_error_itself_refuses_pickle(self):
        with pytest.raises(TypeError):
            pickle.dumps(ExoticError(13, {}))


# ----------------------------------------------------------------------
# End-to-end fault injection


class TestTransientRetries:
    def test_serial_transient_is_retried_to_identical_result(
        self, machine, corpus, clean
    ):
        engine = EvaluationEngine(
            machine, fault_plan=parse_fault_spec("raise@1:transient")
        )
        result = engine.evaluate(corpus)
        assert result.ok
        assert result.retries == 1
        assert _bytes_of(result, machine) == _bytes_of(clean, machine)
        assert result.counters.snapshot() == clean.counters.snapshot()

    def test_serial_crash_analogue_is_recoverable(
        self, machine, corpus, clean
    ):
        # In-process a crash degrades to a transient exception (killing
        # the caller would defeat the harness); still retried away.
        engine = EvaluationEngine(
            machine, fault_plan=parse_fault_spec("crash@0")
        )
        result = engine.evaluate(corpus)
        assert result.ok and result.retries == 1
        assert _bytes_of(result, machine) == _bytes_of(clean, machine)

    def test_pool_crash_is_salvaged_and_retried(
        self, machine, corpus, clean
    ):
        engine = EvaluationEngine(
            machine, jobs=2, fault_plan=parse_fault_spec("crash@1")
        )
        result = engine.evaluate(corpus)
        assert result.ok
        assert result.crashes >= 1 and result.retries >= 1
        assert any("pool broke" in note for note in result.diagnostics)
        assert _bytes_of(result, machine) == _bytes_of(clean, machine)

    def test_retry_budget_exhaustion_quarantines(
        self, machine, corpus, tmp_path
    ):
        quarantine = tmp_path / "quarantine.json"
        engine = EvaluationEngine(
            machine,
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
            quarantine_path=quarantine,
            fault_plan=parse_fault_spec("raise@2:transient!"),
        )
        result = engine.evaluate(corpus)
        assert not result.ok and len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kind == TRANSIENT
        assert failure.attempts == 2  # original + one retry
        assert result.quarantined == 1
        entries = load_quarantine(quarantine)
        assert entries[0]["loop"] == corpus[2].name
        assert entries[0]["attempts"] == 2

    def test_deterministic_failure_is_never_retried(
        self, machine, corpus, tmp_path
    ):
        engine = EvaluationEngine(
            machine,
            quarantine_path=tmp_path / "q.json",
            fault_plan=parse_fault_spec("raise@0:ValueError!"),
        )
        result = engine.evaluate(corpus)
        assert result.retries == 0
        assert result.failures[0].kind == DETERMINISTIC
        assert result.failures[0].attempts == 1

    def test_exotic_exception_cannot_poison_the_pool(
        self, machine, corpus
    ):
        # ExoticError's instances refuse to pickle; the worker must
        # reduce it to a structured record before it rides back.
        engine = EvaluationEngine(
            machine, jobs=2, fault_plan=parse_fault_spec("raise@0:exotic!")
        )
        result = engine.evaluate(corpus)
        assert len(result.evaluations) == len(corpus) - 1
        failure = result.failures[0]
        assert failure.error_type == "ExoticError"
        assert "exotic failure code=13" in failure.message
        assert failure.kind == DETERMINISTIC


class TestWatchdogAndReaper:
    def test_slow_loop_times_out_and_retry_succeeds(
        self, machine, corpus, clean
    ):
        engine = EvaluationEngine(
            machine,
            loop_timeout=0.2,
            degrade=False,
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
            fault_plan=parse_fault_spec("slow@0:5"),
        )
        result = engine.evaluate(corpus)
        assert result.ok
        assert result.timeouts == 1 and result.retries == 1
        assert _bytes_of(result, machine) == _bytes_of(clean, machine)

    def test_hung_worker_is_reaped_and_loop_retried(
        self, machine, corpus, clean
    ):
        # The injected hang ignores SIGALRM, so only the pool-side
        # reaper can recover the worker.
        engine = EvaluationEngine(
            machine,
            jobs=2,
            loop_timeout=0.2,
            reap_after=1.0,
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            fault_plan=parse_fault_spec("hang@1:30"),
        )
        started = time.monotonic()
        result = engine.evaluate(corpus)
        assert time.monotonic() - started < 25.0
        assert result.ok
        assert result.reaped >= 1
        assert any("reaper" in note for note in result.diagnostics)
        assert _bytes_of(result, machine) == _bytes_of(clean, machine)


class TestDegradationLadder:
    def test_deadline_exhaustion_degrades_to_relaxed_ims(
        self, machine, corpus
    ):
        engine = EvaluationEngine(
            machine,
            loop_timeout=0.2,
            retry_policy=RetryPolicy(max_retries=0),
            fault_plan=parse_fault_spec("slow@0:5!"),
        )
        result = engine.evaluate(corpus)
        assert result.ok
        assert result.degraded == 1
        evaluation = result.evaluations[0]
        assert evaluation.degraded
        assert evaluation.degradation_level == 1
        assert evaluation.degradation["name"] == "relaxed-ims"
        assert evaluation.degradation["reason"] == "DeadlineExceeded"
        # A legal (if worse) modulo schedule was still produced.
        assert evaluation.ii >= 1

    def test_deadline_degradation_is_not_cached(
        self, machine, corpus, tmp_path
    ):
        engine = EvaluationEngine(
            machine,
            cache_dir=tmp_path / "cache",
            loop_timeout=0.2,
            retry_policy=RetryPolicy(max_retries=0),
            fault_plan=parse_fault_spec("slow@0:5!"),
        )
        first = engine.evaluate(corpus)
        assert first.degraded == 1
        # Wall-clock outcomes must not be resurrected: the degraded
        # loop misses again, the clean loops hit.
        second = engine.evaluate(corpus)
        assert second.hits == len(corpus) - 1
        assert second.misses == 1

    def test_budget_exhaustion_walks_to_list_fallback(
        self, machine, corpus, tmp_path, monkeypatch
    ):
        calls = {"n": 0}
        real = engine_module.modulo_schedule

        def always_out_of_budget(graph, machine_, **kwargs):
            calls["n"] += 1
            raise SchedulingFailure(
                "out of budget", attempted_iis=[2, 3],
                steps_by_ii={2: 9, 3: 9}, budget=9,
            )

        monkeypatch.setattr(
            engine_module, "modulo_schedule", always_out_of_budget
        )
        engine = EvaluationEngine(
            machine, cache_dir=tmp_path / "cache", fault_plan=NULL_PLAN
        )
        result = engine.evaluate(corpus[:1])
        assert result.ok and result.degraded == 1
        evaluation = result.evaluations[0]
        assert evaluation.degradation_level == 2
        assert evaluation.degradation["name"] == "list-fallback"
        assert evaluation.degradation["reason"] == "SchedulingFailure"
        assert evaluation.degradation["detail"]["attempted_iis"] == [2, 3]
        assert evaluation.degradation["detail"]["budget_per_ii"] == 9
        assert "relaxed_error" in evaluation.degradation
        assert evaluation.result.budget_ratio == 0.0
        assert calls["n"] == 2  # rung 0 and rung 1 both tried
        # Budget exhaustion is deterministic, so the fallback is cached.
        monkeypatch.setattr(engine_module, "modulo_schedule", real)
        warm = engine.evaluate(corpus[:1])
        assert warm.hits == 1
        assert warm.evaluations[0].degradation_level == 2

    def test_no_degrade_surfaces_budget_detail(
        self, machine, corpus, monkeypatch
    ):
        def always_out_of_budget(graph, machine_, **kwargs):
            raise SchedulingFailure(
                "out of budget", attempted_iis=[2], steps_by_ii={2: 9},
                budget=9,
            )

        monkeypatch.setattr(
            engine_module, "modulo_schedule", always_out_of_budget
        )
        engine = EvaluationEngine(machine, degrade=False, fault_plan=NULL_PLAN)
        result = engine.evaluate(corpus[:1])
        assert not result.ok
        failure = result.failures[0]
        assert failure.error_type == "SchedulingFailure"
        assert failure.kind == DETERMINISTIC
        assert failure.detail["attempted_iis"] == [2]
        assert failure.detail["budget_per_ii"] == 9


class TestCorruptionInjection:
    def test_injected_corruption_is_recovered_next_run(
        self, machine, corpus, tmp_path, clean
    ):
        cache = tmp_path / "cache"
        poisoned = EvaluationEngine(
            machine, cache_dir=cache,
            fault_plan=parse_fault_spec("corrupt@0"),
        )
        first = poisoned.evaluate(corpus)
        assert first.ok and first.cache_corrupt == 0

        healthy = EvaluationEngine(machine, cache_dir=cache,
                                   fault_plan=NULL_PLAN)
        second = healthy.evaluate(corpus)
        assert second.cache_corrupt == 1
        assert second.hits == len(corpus) - 1 and second.misses == 1
        assert second.ok
        assert _bytes_of(second, machine) == _bytes_of(clean, machine)


class TestCheckpointResume:
    def test_resume_skips_journaled_loops(self, machine, corpus, tmp_path):
        journal = tmp_path / "journal.jsonl"
        first = EvaluationEngine(
            machine, journal_path=journal, fault_plan=NULL_PLAN
        ).evaluate(corpus[:2])
        assert first.ok

        # "Restart" over the full corpus: only the unfinished loops run.
        obs = ObsContext()
        resumed = EvaluationEngine(
            machine, journal_path=journal, resume=True, obs=obs,
            fault_plan=NULL_PLAN,
        ).evaluate(corpus)
        assert resumed.ok
        assert resumed.resume_skipped == 2
        assert resumed.misses == len(corpus) - 2
        assert [t.resumed for t in resumed.timings] == (
            [True, True] + [False] * (len(corpus) - 2)
        )
        assert (
            obs.metrics.snapshot()["counters"]["engine.resume.skipped"] == 2
        )

        clean = EvaluationEngine(machine, fault_plan=NULL_PLAN).evaluate(
            corpus
        )
        assert _bytes_of(resumed, machine) == _bytes_of(clean, machine)

    def test_mid_run_kill_leaves_a_resumable_journal(
        self, machine, corpus, tmp_path
    ):
        # Simulate dying mid-run: keep only the journal prefix plus a
        # torn final line, exactly what fsync-per-record guarantees.
        journal = tmp_path / "journal.jsonl"
        EvaluationEngine(
            machine, journal_path=journal, fault_plan=NULL_PLAN
        ).evaluate(corpus)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:2]) + lines[2][:25])

        resumed = EvaluationEngine(
            machine, journal_path=journal, resume=True, fault_plan=NULL_PLAN
        ).evaluate(corpus)
        assert resumed.ok
        assert resumed.resume_skipped == 2
        assert resumed.misses == len(corpus) - 2

    def test_resume_without_journal_is_an_error(self, machine):
        with pytest.raises(ValueError, match="journal"):
            EvaluationEngine(machine, resume=True)

    def test_config_change_invalidates_journal_records(
        self, machine, corpus, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        EvaluationEngine(
            machine, journal_path=journal, fault_plan=NULL_PLAN
        ).evaluate(corpus[:2])
        # Different budget ratio -> different content-addressed keys ->
        # nothing resumes, nothing stale is served.
        other = EvaluationEngine(
            machine, budget_ratio=2.0, journal_path=journal, resume=True,
            fault_plan=NULL_PLAN,
        ).evaluate(corpus[:2])
        assert other.resume_skipped == 0
        assert other.misses == 2


class TestObsIdentityUnderFaults:
    def test_metrics_identical_after_transient_retry(self, machine, corpus):
        def run(plan):
            obs = ObsContext()
            EvaluationEngine(machine, obs=obs, fault_plan=plan).evaluate(
                corpus
            )
            return obs.metrics.snapshot()

        clean = run(NULL_PLAN)
        faulted = run(parse_fault_spec("raise@1:transient"))
        assert "resilience.retries" in faulted["counters"]
        for kind in ("counters", "gauges", "histograms"):
            filtered = {
                name: value
                for name, value in faulted[kind].items()
                if not name.startswith("resilience.")
            }
            assert filtered == clean[kind]

    def test_clean_run_has_no_resilience_metrics(self, machine, corpus):
        obs = ObsContext()
        EvaluationEngine(machine, obs=obs, fault_plan=NULL_PLAN).evaluate(
            corpus
        )
        names = list(obs.metrics.snapshot()["counters"])
        assert not [n for n in names if n.startswith("resilience.")]
        assert "engine.resume.skipped" not in names
        assert "cache.corrupt" not in names


class TestCli:
    def test_corpus_resilience_flags(self, machine, tmp_path, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "corpus", "--loops", "4", "--seed", "3", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--loop-timeout", "60", "--retries", "1",
            ],
            out=out,
        )
        assert code == 0
        assert "engine:" in out.getvalue()
        assert (tmp_path / "cache" / "journal.jsonl").is_file()
        assert (tmp_path / "cache" / "quarantine.json").is_file()

    def test_corpus_resume_without_journal_exits_2(self, tmp_path):
        import io

        from repro.cli import main

        code = main(
            ["corpus", "--loops", "4", "--no-cache", "--resume"],
            out=io.StringIO(),
        )
        assert code == 2


class TestAttemptMetadataNormalization:
    """The ladder journals *which backend* tried every candidate II.

    Before attempt records were normalized, a degraded payload only
    said "list-fallback" at the top level — the journal could not tell
    which rung (full IMS, relaxed IMS, list) produced which candidate
    II.  Every rung now contributes AttemptRecords naming its backend,
    concatenated in ladder order, and they survive the cache payload.
    """

    def _out_of_budget(self, graph, machine_, **kwargs):
        raise SchedulingFailure(
            "out of budget", attempted_iis=[2, 3],
            steps_by_ii={2: 9, 3: 9}, budget=9,
        )

    def test_every_rung_names_its_backend(
        self, machine, corpus, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            engine_module, "modulo_schedule", self._out_of_budget
        )
        journal = tmp_path / "journal.jsonl"
        engine = EvaluationEngine(
            machine,
            cache_dir=tmp_path / "cache",
            journal_path=journal,
            fault_plan=NULL_PLAN,
        )
        result = engine.evaluate(corpus[:1])
        assert result.ok and result.degraded == 1
        evaluation = result.evaluations[0]
        assert evaluation.backend == "list"
        assert evaluation.degradation["backend"] == "list"
        records = evaluation.result.attempt_records
        # Rung 0 (full IMS) and rung 1 (relaxed IMS) each tried IIs 2
        # and 3 before the list rung won: five records, ladder order.
        assert [r.backend for r in records] == ["ims"] * 4 + ["list"]
        assert [r.success for r in records] == [False] * 4 + [True]
        assert [r.ii for r in records[:4]] == [2, 3, 2, 3]
        assert all(r.reason == "budget" for r in records[:4])
        assert records[-1].reason == "scheduled"
        assert records[-1].ii == evaluation.ii

    def test_journal_payload_round_trips_the_records(
        self, machine, corpus, tmp_path, monkeypatch
    ):
        real = engine_module.modulo_schedule
        monkeypatch.setattr(
            engine_module, "modulo_schedule", self._out_of_budget
        )
        journal = tmp_path / "journal.jsonl"
        engine = EvaluationEngine(
            machine,
            cache_dir=tmp_path / "cache",
            journal_path=journal,
            fault_plan=NULL_PLAN,
        )
        cold = engine.evaluate(corpus[:1])
        records = cold.evaluations[0].result.attempt_records

        # The journal's payload carries the same normalized records.
        payloads = [
            json.loads(line)["payload"]
            for line in journal.read_text().splitlines()
            if line.strip() and json.loads(line).get("ok")
        ]
        assert len(payloads) == 1
        search = payloads[0]["search"]
        assert search["backend"] == "list"
        assert [r["backend"] for r in search["attempt_records"]] == (
            ["ims"] * 4 + ["list"]
        )

        # A warm cache hit restores them bit-for-bit.
        monkeypatch.setattr(engine_module, "modulo_schedule", real)
        warm = engine.evaluate(corpus[:1])
        assert warm.hits == 1
        assert warm.evaluations[0].result.attempt_records == records
        assert warm.evaluations[0].degradation["backend"] == "list"

    def test_relaxed_rung_is_attributed_to_ims(
        self, machine, corpus, monkeypatch
    ):
        real = engine_module.modulo_schedule
        calls = {"n": 0}

        def first_call_fails(graph, machine_, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SchedulingFailure(
                    "out of budget", attempted_iis=[2],
                    steps_by_ii={2: 9}, budget=9,
                )
            return real(graph, machine_, **kwargs)

        monkeypatch.setattr(
            engine_module, "modulo_schedule", first_call_fails
        )
        engine = EvaluationEngine(machine, fault_plan=NULL_PLAN)
        result = engine.evaluate(corpus[:1])
        assert result.ok and result.degraded == 1
        evaluation = result.evaluations[0]
        assert evaluation.degradation["name"] == "relaxed-ims"
        assert evaluation.degradation["backend"] == "ims"
        records = evaluation.result.attempt_records
        assert records[0].backend == "ims" and not records[0].success
        assert records[-1].backend == "ims" and records[-1].success
