"""Property: parallel evaluation is bit-identical to the serial path.

``evaluate_corpus(jobs=N)`` must return exactly the records the serial
path returns — same order, same canonical serialized bytes — for any
worker count.  Both paths round-trip through the engine's JSON payload,
so equality is checked on the canonical (sorted-key) serialization, which
is what "bit-identical" means for these records.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import evaluate_corpus
from repro.analysis.engine import EvaluationEngine, evaluation_to_dict
from repro.machine import cydra5
from repro.workloads import build_corpus


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    """The full test corpus: every DSL kernel plus synthetic graphs."""
    return build_corpus(machine, n_synthetic=15, seed=5)


@pytest.fixture(scope="module")
def serial_bytes(machine, corpus):
    """Canonical serialization of every record from the serial path."""
    evaluations = evaluate_corpus(corpus, machine, jobs=1)
    assert len(evaluations) == len(corpus)
    return [
        json.dumps(evaluation_to_dict(e, machine), sort_keys=True)
        for e in evaluations
    ]


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_parallel_is_bit_identical_to_serial(
    machine, corpus, serial_bytes, jobs
):
    evaluations = evaluate_corpus(corpus, machine, jobs=jobs)
    assert [e.loop.name for e in evaluations] == [l.name for l in corpus]
    parallel_bytes = [
        json.dumps(evaluation_to_dict(e, machine), sort_keys=True)
        for e in evaluations
    ]
    assert parallel_bytes == serial_bytes


@pytest.mark.parametrize("jobs", [2, 4])
def test_cached_parallel_still_identical(
    machine, corpus, serial_bytes, jobs, tmp_path
):
    """Cold parallel run, then warm cached run: both match the serial path."""
    engine = EvaluationEngine(
        machine, jobs=jobs, cache_dir=tmp_path / "cache"
    )
    for expected_hits in (0, len(corpus)):
        result = engine.evaluate(corpus)
        assert result.hits == expected_hits
        recovered = [
            json.dumps(evaluation_to_dict(e, machine), sort_keys=True)
            for e in result.evaluations
        ]
        assert recovered == serial_bytes


def test_result_order_is_deterministic_not_completion_order(machine, corpus):
    """Many workers over a shuffled-size corpus still yield corpus order."""
    result = EvaluationEngine(machine, jobs=4).evaluate(corpus)
    assert [t.loop_name for t in result.timings] == [l.name for l in corpus]
    assert [t.index for t in result.timings] == list(range(len(corpus)))
