"""Telemetry determinism across the engine's fan-out.

Spans carry the wall-clock; everything in the metrics registry and the
run-level counter aggregate is deterministic, so those snapshots must be
byte-identical whatever ``jobs`` is — and must survive a warm cache,
where no loop is re-scheduled at all.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import evaluate_corpus
from repro.analysis.engine import EvaluationEngine
from repro.core.stats import Counters
from repro.machine import cydra5
from repro.obs import ObsContext
from repro.workloads import build_corpus


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def corpus(machine):
    return build_corpus(machine, n_synthetic=12, seed=9)


def _traced_run(machine, corpus, jobs, cache_dir=None, use_cache=False):
    obs = ObsContext()
    engine = EvaluationEngine(
        machine, jobs=jobs, obs=obs,
        cache_dir=cache_dir, use_cache=use_cache or cache_dir is not None,
    )
    result = engine.evaluate(corpus)
    return obs, result


class TestMetricsByteIdentity:
    @pytest.fixture(scope="class")
    def serial(self, machine, corpus):
        obs, result = _traced_run(machine, corpus, jobs=1)
        return (
            json.dumps(obs.metrics.snapshot(), sort_keys=True),
            json.dumps(result.counters.snapshot(), sort_keys=True),
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_metric_snapshot_identical_across_jobs(
        self, machine, corpus, serial, jobs
    ):
        """Acceptance: jobs=1 and jobs=N produce the same metric bytes."""
        obs, result = _traced_run(machine, corpus, jobs=jobs)
        assert json.dumps(obs.metrics.snapshot(), sort_keys=True) == serial[0]
        assert (
            json.dumps(result.counters.snapshot(), sort_keys=True) == serial[1]
        )

    def test_warm_cache_preserves_the_aggregate(
        self, machine, corpus, serial, tmp_path
    ):
        """Complexity counters come back from the cache, not just from
        freshly evaluated loops — a warm run reports the same totals."""
        cache = tmp_path / "cache"
        _, cold = _traced_run(machine, corpus, jobs=2, cache_dir=cache)
        obs, warm = _traced_run(machine, corpus, jobs=2, cache_dir=cache)
        assert warm.hits == len(corpus) and warm.misses == 0
        assert (
            json.dumps(warm.counters.snapshot(), sort_keys=True) == serial[1]
        )
        snap = obs.metrics.snapshot()
        assert snap["counters"]["engine.cache.hits"] == len(corpus)
        assert snap["counters"]["algo.ops_scheduled"] > 0

    def test_metrics_hold_the_algorithm_counters(self, machine, corpus):
        obs, result = _traced_run(machine, corpus, jobs=1)
        counters = obs.metrics.snapshot()["counters"]
        for name, value in result.counters.snapshot().items():
            assert counters["algo." + name] == value
        assert counters["engine.loops"] == len(corpus)
        assert counters["engine.failures"] == 0

    def test_metrics_hold_the_mrt_hotpath_counters(self, machine, corpus):
        """The bitmask-MRT kernel reports its probe counts: every conflict
        check the scheduler issued, and how many were answered by the
        single-AND fast path (all of them — the per-attempt setup compiles
        self-conflicting alternatives out up front).  The MinDist-memo
        counter is registered even when structurally zero, so the snapshot
        keys are deterministic."""
        obs, _ = _traced_run(machine, corpus, jobs=2)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["mrt.conflict_checks"] > 0
        assert counters["mrt.mask_fastpath"] > 0
        assert counters["mrt.mask_fastpath"] == counters["mrt.conflict_checks"]
        assert "mii.mindist_cache_hits" in counters

    def test_metrics_hold_the_ii_search_kernel_counters(self, machine, corpus):
        """The parametric-MinDist and batched-slot kernels report their
        work: every materialized MinDist(II) plane and every batched
        FindTimeSlot probe, identical whatever ``--jobs`` produced them."""
        serial, _ = _traced_run(machine, corpus, jobs=1)
        fanned, _ = _traced_run(machine, corpus, jobs=4)
        for obs in (serial, fanned):
            counters = obs.metrics.snapshot()["counters"]
            assert counters["mindist.parametric_evals"] > 0
            assert counters["sched.slot_batch_probes"] > 0
        assert (
            serial.metrics.snapshot()["counters"]
            == fanned.metrics.snapshot()["counters"]
        )


class TestCountersSurviveTheRunner:
    def test_evaluate_corpus_merges_into_caller_counters(
        self, machine, corpus
    ):
        serial, parallel = Counters(), Counters()
        evaluate_corpus(corpus, machine, jobs=1, counters=serial)
        evaluate_corpus(corpus, machine, jobs=2, counters=parallel)
        assert serial.snapshot() == parallel.snapshot()
        assert serial.ops_scheduled > 0
        assert serial.mindist_closure_inner > 0

    def test_timing_report_carries_the_aggregate(self, machine, corpus):
        obs, result = _traced_run(machine, corpus, jobs=2)
        report = result.timing_report()
        assert report["counters"] == result.counters.snapshot()
        assert report["counters"]["ops_scheduled"] > 0
        assert report["metrics"] == obs.metrics.snapshot()

    def test_untraced_report_has_no_metrics_block(self, machine, corpus):
        result = EvaluationEngine(machine, jobs=1).evaluate(corpus)
        report = result.timing_report()
        assert report["metrics"] is None
        assert report["counters"]["ops_scheduled"] > 0


class TestSpanCoverage:
    def test_fanout_spans_reparent_under_the_run_root(self, machine, corpus):
        obs, _ = _traced_run(machine, corpus, jobs=2)
        root = next(s for s in obs.spans if s.name == "corpus.evaluate")
        loops = [s for s in obs.spans if s.name == "loop"]
        assert len(loops) == len(corpus)
        assert {s.parent_id for s in loops} == {root.span_id}
        indices = sorted(s.attrs["index"] for s in loops)
        assert indices == list(range(len(corpus)))

    def test_snapshot_round_trips_the_engine_boundary(self, machine, corpus):
        """Worker snapshots crossed a process boundary; the merged record
        still schema-validates end to end."""
        from repro.obs.schema import records_from_snapshot, validate_records

        obs, _ = _traced_run(machine, corpus, jobs=2)
        assert validate_records(records_from_snapshot(obs.to_dict())) == []


class TestObservatoryDeterminism:
    """The run store sees the same determinism the snapshots promise:
    re-ingesting a run is a no-op, and a run diffed against itself is
    clean whatever ``jobs`` produced it."""

    def _record(self, store, machine, corpus, jobs):
        from repro.obs.store import RunStore  # noqa: F401  (type context)

        obs, result = _traced_run(machine, corpus, jobs=jobs)
        return store.ingest_run_artifacts(
            obs.to_dict(),
            run={"command": "corpus", "jobs": jobs},
            timing_report=result.timing_report(),
            source="test",
        )

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_double_ingest_dedupes_by_run_id(self, machine, corpus, jobs):
        from repro.obs.store import RunStore

        obs, result = _traced_run(machine, corpus, jobs=jobs)
        snapshot = obs.to_dict()
        report = result.timing_report()
        with RunStore(":memory:") as store:
            first = store.ingest_run_artifacts(
                snapshot, run={"jobs": jobs}, timing_report=report
            )
            again = store.ingest_run_artifacts(
                snapshot, run={"jobs": jobs}, timing_report=report
            )
            assert first.created and not again.created
            assert first.run_id == again.run_id
            assert len(store.runs()) == 1

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_self_diff_reports_zero_regressions(self, machine, corpus, jobs):
        from repro.obs.analyze import diff_runs
        from repro.obs.store import RunStore

        with RunStore(":memory:") as store:
            run_id = self._record(store, machine, corpus, jobs).run_id
            diff = diff_runs(store, run_id, run_id)
            assert diff.clean
            assert diff.regressions == []
            assert diff.new_failure_kinds == []
            assert diff.vanished_failure_kinds == []
            assert diff.slower_loops == []

    def test_serial_vs_parallel_runs_diff_clean(self, machine, corpus):
        """jobs=1 and jobs=4 trace the same work; only timing jitter
        separates them, and the noise gate eats that."""
        from repro.obs.analyze import diff_runs
        from repro.obs.store import RunStore

        with RunStore(":memory:") as store:
            serial = self._record(store, machine, corpus, jobs=1).run_id
            parallel = self._record(store, machine, corpus, jobs=4).run_id
            diff = diff_runs(store, serial, parallel)
            assert diff.new_failure_kinds == []
            assert diff.counter_deltas == {}  # metrics are byte-identical
