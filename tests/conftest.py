"""Shared fixtures and graph-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import DependenceGraph, DependenceKind
from repro.machine import (
    bus_conflict_machine,
    cydra5,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)


@pytest.fixture
def alu():
    return single_alu_machine()


@pytest.fixture
def two_alu():
    return two_alu_machine()


@pytest.fixture
def cydra():
    return cydra5()


@pytest.fixture
def figure1_machine():
    return bus_conflict_machine()


@pytest.fixture
def superscalar():
    return superscalar_machine()


def chain_graph(machine, opcodes, name="chain"):
    """A sealed graph: a straight dependence chain of the given opcodes."""
    graph = DependenceGraph(machine, name=name)
    previous = None
    for index, opcode in enumerate(opcodes):
        op = graph.add_operation(opcode, dest=f"v{index}")
        if previous is not None:
            graph.add_edge(previous, op, DependenceKind.FLOW)
        previous = op
    return graph.seal()


def reduction_graph(machine, load_op="load", acc_op="fadd", name="reduce"):
    """load -> accumulate, with a distance-1 self recurrence on the add."""
    graph = DependenceGraph(machine, name=name)
    load = graph.add_operation(load_op, dest="v")
    acc = graph.add_operation(acc_op, dest="s", srcs=("s", "v"))
    graph.add_edge(load, acc, DependenceKind.FLOW)
    graph.add_edge(acc, acc, DependenceKind.FLOW, distance=1)
    return graph.seal()


def cross_iteration_graph(machine, distance=2, name="cross"):
    """Two-op circuit whose recurrence spans ``distance`` iterations."""
    graph = DependenceGraph(machine, name=name)
    a = graph.add_operation("fadd", dest="a", srcs=("b",))
    b = graph.add_operation("fmul", dest="b", srcs=("a",))
    graph.add_edge(a, b, DependenceKind.FLOW)
    graph.add_edge(b, a, DependenceKind.FLOW, distance=distance)
    return graph.seal()
