"""Lowering: DSA form, address recurrences, memory dependence distances."""

import pytest

from repro.ir import DependenceKind
from repro.loopir import LoweringError, compile_loop_full
from repro.machine import single_alu_machine


@pytest.fixture
def machine():
    return single_alu_machine()


def _ops_by_opcode(graph, opcode):
    return [op for op in graph.real_operations() if op.opcode == opcode]


def _edges_between(graph, pred, succ):
    return [e for e in graph.succ_edges(pred) if e.succ == succ]


class TestAddressRecurrences:
    def test_one_address_increment_per_array(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i] + a[i+1] + b[i]\n", machine
        )
        aadds = [
            op
            for op in lowered.graph.real_operations()
            if op.attrs.get("role") == "address"
        ]
        assert len(aadds) == 3  # a, b, c

    def test_address_has_distance_one_self_loop(self, machine):
        lowered = compile_loop_full("for i in n:\n    b[i] = a[i]\n", machine)
        for op in lowered.graph.real_operations():
            if op.attrs.get("role") != "address":
                continue
            self_edges = _edges_between(lowered.graph, op.index, op.index)
            assert len(self_edges) == 1
            assert self_edges[0].distance == 1

    def test_memory_ops_depend_on_address_at_distance_one(self, machine):
        lowered = compile_loop_full("for i in n:\n    b[i] = a[i]\n", machine)
        graph = lowered.graph
        load = _ops_by_opcode(graph, "load")[0]
        addr_edges = [
            e
            for e in graph.pred_edges(load.index)
            if graph.operation(e.pred).attrs.get("role") == "address"
        ]
        assert addr_edges and addr_edges[0].distance == 1


class TestScalarDSA:
    def test_no_scalar_anti_or_output_edges(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i]\n    t = t + 1.0\n    b[i] = t\n",
            machine,
        )
        for edge in lowered.graph.edges:
            pred = lowered.graph.operation(edge.pred)
            succ = lowered.graph.operation(edge.succ)
            if pred.opcode in ("load", "store") and succ.opcode in (
                "load",
                "store",
            ):
                continue  # memory edges may be anti/output
            assert edge.kind in (DependenceKind.FLOW,), edge

    def test_loop_carried_scalar_distance_one(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    s = s + a[i]\n", machine
        )
        graph = lowered.graph
        assert "s" in lowered.carried_defs
        definition = lowered.carried_defs["s"]
        carried = [
            e
            for e in graph.succ_edges(definition)
            if e.distance == 1 and e.succ == definition
        ]
        assert carried, "final def must feed its own next-iteration read"

    def test_loop_invariant_becomes_livein(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    b[i] = q * a[i]\n", machine
        )
        assert "q" in lowered.live_in_scalars
        assert "q" not in lowered.carried_defs

    def test_final_defs_cover_all_assigned_scalars(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i]\n    s = s + t\n", machine
        )
        assert set(lowered.final_defs) == {"t", "s"}

    def test_redefinition_within_iteration_uses_latest(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i]\n    t = t * 2.0\n    b[i] = t\n",
            machine,
        )
        graph = lowered.graph
        store = _ops_by_opcode(graph, "store")[0]
        mul = _ops_by_opcode(graph, "fmul")[0]
        assert _edges_between(graph, mul.index, store.index)

    def test_constant_assignment_materializes_limm(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    t = 3.0\n    b[i] = t\n", machine
        )
        assert _ops_by_opcode(lowered.graph, "limm")


class TestMemoryDependences:
    def _mem_edges(self, lowered):
        """Memory-analysis edges: both ends reference the *same* array.

        (A load feeding a store's value operand is plain data flow, not a
        memory dependence.)
        """
        graph = lowered.graph
        edges = []
        for edge in graph.edges:
            pred = graph.operation(edge.pred)
            succ = graph.operation(edge.succ)
            if (
                pred.opcode in ("load", "store")
                and succ.opcode in ("load", "store")
                and pred.attrs.get("array") == succ.attrs.get("array")
            ):
                edges.append(edge)
        return edges

    def test_store_to_load_flow_distance(self, machine):
        # a[i+1] written, a[i] read => the load reads what was stored one
        # iteration earlier: flow store->load at distance 1.
        lowered = compile_loop_full(
            "for i in n:\n    a[i+1] = b[i]\n    c[i] = a[i]\n", machine
        )
        edges = self._mem_edges(lowered)
        flows = [e for e in edges if e.kind is DependenceKind.FLOW]
        assert any(e.distance == 1 for e in flows)

    def test_load_then_store_same_iteration_is_anti(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i]\n    a[i] = t + 1.0\n", machine
        )
        edges = self._mem_edges(lowered)
        antis = [e for e in edges if e.kind is DependenceKind.ANTI]
        assert any(e.distance == 0 for e in antis)

    def test_forward_anti_dependence_distance(self, machine):
        # load a[i+2] before store a[i]: the store two iterations later
        # overwrites what was read: anti load->store distance 2.
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i+2]\n    a[i] = t * 0.5\n", machine
        )
        edges = self._mem_edges(lowered)
        antis = [e for e in edges if e.kind is DependenceKind.ANTI]
        assert any(e.distance == 2 for e in antis)

    def test_recurrent_store_load_pair(self, machine):
        # x[i] = x[i-1] + ... : flow from the store to next iteration's load.
        lowered = compile_loop_full(
            "for i in n:\n    x[i] = x[i-1] + y[i]\n", machine
        )
        edges = self._mem_edges(lowered)
        assert any(
            e.kind is DependenceKind.FLOW and e.distance == 1 for e in edges
        )

    def test_independent_arrays_have_no_memory_edges(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    b[i] = a[i]\n", machine
        )
        assert self._mem_edges(lowered) == []

    def test_load_load_pairs_never_create_edges(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i] + a[i+1]\n", machine
        )
        edges = self._mem_edges(lowered)
        for edge in edges:
            pred = lowered.graph.operation(edge.pred)
            succ = lowered.graph.operation(edge.succ)
            assert "store" in (pred.opcode, succ.opcode)


class TestPredication:
    def test_guarded_store_is_predicated(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    if a[i] > 0.0:\n        b[i] = a[i]\n",
            machine,
        )
        store = _ops_by_opcode(lowered.graph, "store")[0]
        assert store.predicate is not None
        assert store.attrs["predicated"] is True

    def test_guarded_assign_becomes_select(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    if a[i] > 0.0:\n        s = s + a[i]\n",
            machine,
        )
        assert _ops_by_opcode(lowered.graph, "select")

    def test_else_guard_materializes_pnot(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    if a[i] > 0.0:\n"
            "        s = s + 1.0\n"
            "    else:\n"
            "        s = s - 1.0\n",
            machine,
        )
        assert _ops_by_opcode(lowered.graph, "pnot")

    def test_shared_condition_compiled_once(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    if a[i] > 0.0:\n"
            "        s = s + 1.0\n"
            "    else:\n"
            "        t = t - 1.0\n",
            machine,
        )
        cmps = _ops_by_opcode(lowered.graph, "cmp_gt")
        assert len(cmps) == 1

    def test_boolean_guard_uses_pand(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    if a[i] > 0.0 and a[i] < 1.0:\n"
            "        b[i] = a[i]\n",
            machine,
        )
        assert _ops_by_opcode(lowered.graph, "pand")


class TestLoopControl:
    def test_brtop_present_with_self_loop(self, machine):
        lowered = compile_loop_full("for i in n:\n    b[i] = a[i]\n", machine)
        brtops = _ops_by_opcode(lowered.graph, "brtop")
        assert len(brtops) == 1
        self_edges = _edges_between(
            lowered.graph, brtops[0].index, brtops[0].index
        )
        assert self_edges[0].distance == 1

    def test_ivar_used_as_value_gets_recurrence(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    b[i] = 0.5 * i\n", machine
        )
        ivars = [
            op
            for op in lowered.graph.real_operations()
            if op.attrs.get("role") == "ivar"
        ]
        assert len(ivars) == 1
