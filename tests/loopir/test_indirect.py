"""Indirect array references: gather/scatter with conservative deps."""

import pytest

from repro.core import compute_mii, modulo_schedule, validate_schedule
from repro.ir import DependenceKind
from repro.loopir import ParseError, compile_loop_full, parse_loop
from repro.loopir.ast import ArrayRef, IndirectRef, IndirectStore
from repro.machine import cydra5, single_alu_machine
from repro.simulator import check_equivalence


@pytest.fixture
def machine():
    return cydra5()


class TestParsing:
    def test_indirect_load(self):
        loop = parse_loop("for i in n:\n    t = x[perm[i]]\n")
        assert loop.body[0].value == IndirectRef("x", ArrayRef("perm", 0))

    def test_indirect_store(self):
        loop = parse_loop("for i in n:\n    h[idx[i+1]] = 1.0\n")
        statement = loop.body[0]
        assert isinstance(statement, IndirectStore)
        assert statement.index == ArrayRef("idx", 1)

    def test_doubly_indirect_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = x[a[b[i]]]\n")

    def test_arrays_include_index_arrays(self):
        loop = parse_loop("for i in n:\n    h[idx[i]] = w[i]\n")
        assert loop.arrays() == ["h", "idx", "w"]


class TestDependences:
    def _mem_edges(self, lowered, array):
        graph = lowered.graph

        def is_ref(index):
            op = graph.operation(index)
            return (
                op.opcode in ("load", "store")
                and op.attrs.get("array") == array
            )

        return [
            e for e in graph.edges if is_ref(e.pred) and is_ref(e.succ)
        ]

    def test_scatter_serializes_against_itself(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = w[i]\n", machine
        )
        edges = self._mem_edges(lowered, "h")
        self_edges = [e for e in edges if e.pred == e.succ]
        assert self_edges and self_edges[0].distance == 1
        assert self_edges[0].kind is DependenceKind.OUTPUT

    def test_gather_after_scatter_bidirectional(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = h[idx[i]] + w[i]\n", machine
        )
        edges = self._mem_edges(lowered, "h")
        kinds = {(e.kind, e.distance) for e in edges if e.pred != e.succ}
        # load before store in program order: anti at 0; the store must
        # precede next iteration's load: flow at 1.
        assert (DependenceKind.ANTI, 0) in kinds
        assert (DependenceKind.FLOW, 1) in kinds

    def test_histogram_recurrence_clamps_ii(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = h[idx[i]] + w[i]\n", machine
        )
        result = compute_mii(lowered.graph, machine)
        # load(20) -> fadd(4) -> store(2) -> next load: the serialization
        # chain sets the RecMII.
        assert result.rec_mii >= 26
        assert result.mii == result.rec_mii

    def test_pure_gather_does_not_serialize(self, machine):
        """Reads through a permutation are loads only: no store, no
        conservative circuit, pipelining unhindered."""
        lowered = compile_loop_full(
            "for i in n:\n    y[i] = 2.0 * x[perm[i]]\n", machine
        )
        result = compute_mii(lowered.graph, machine)
        assert result.rec_mii <= 3

    def test_direct_refs_to_other_arrays_unaffected(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = w[i]\n    c[i] = w[i]\n",
            machine,
        )
        assert self._mem_edges(lowered, "c") == []

    def test_indirect_loads_not_value_numbered_across_stores(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = h[idx[i]] + 1.0\n", machine
        )
        loads = [
            op
            for op in lowered.graph.real_operations()
            if op.opcode == "load" and op.attrs.get("array") == "h"
        ]
        assert len(loads) == 1  # read once, before the store


class TestEndToEnd:
    @pytest.mark.parametrize(
        "name, source",
        [
            ("histogram", "for i in n:\n    h[idx[i]] = h[idx[i]] + w[i]\n"),
            ("gather", "for i in n:\n    y[i] = x[perm[i]] - x[i]\n"),
            ("scatter", "for i in n:\n    out[sel[i]] = v[i] * 2.0\n"),
            (
                "gather_reduce",
                "for i in n:\n    s = s + table[key[i]]\n",
            ),
            (
                "conditional_scatter",
                "for i in n:\n"
                "    if w[i] > 0.0:\n"
                "        h[idx[i]] = w[i]\n",
            ),
        ],
    )
    @pytest.mark.parametrize("machine_factory", [cydra5, single_alu_machine])
    def test_verified_against_oracle(self, name, source, machine_factory):
        machine = machine_factory()
        lowered = compile_loop_full(source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        for seed in (0, 3):
            report = check_equivalence(lowered, result.schedule, n=33, seed=seed)
            assert report.ok, report.describe()

    def test_duplicate_indices_ordered_correctly(self):
        """Two iterations hitting the same histogram bucket must both
        land — the classic failure of unserialized scatters."""
        from repro.simulator import make_initial_state, run_pipelined, run_reference

        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    h[idx[i]] = h[idx[i]] + 1.0\n", machine
        )
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        n = 12
        state = make_initial_state(lowered, n, seed=1)
        for i in range(n):
            state.arrays["idx"][i] = float(i % 3)  # heavy collisions
        reference = run_reference(lowered.loop, state.copy(), n)
        pipelined = run_pipelined(lowered, result.schedule, state.copy(), n)
        assert reference.differences(pipelined) == []
        assert reference.arrays["h"][0] == state.arrays["h"][0] + 4.0
