"""The DSL parser: grammar coverage and error reporting."""

import pytest

from repro.loopir import ParseError, parse_loop
from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    If,
    IVar,
    NotOp,
    Num,
    Scalar,
    Store,
)


class TestHeader:
    def test_ivar_and_trip(self):
        loop = parse_loop("for i in n:\n    x[i] = 1.0\n")
        assert loop.ivar == "i"
        assert loop.trip == "n"

    def test_missing_colon_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n\n    x[i] = 1.0\n")

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("")


class TestStatements:
    def test_scalar_assignment(self):
        loop = parse_loop("for i in n:\n    t = 2.5\n")
        assert loop.body == [Assign("t", Num(2.5))]

    def test_store(self):
        loop = parse_loop("for i in n:\n    a[i+1] = x\n")
        assert loop.body == [Store("a", 1, Scalar("x"))]

    def test_store_negative_offset(self):
        loop = parse_loop("for i in n:\n    a[i-2] = x\n")
        assert loop.body[0].offset == -2

    def test_subscript_must_use_ivar(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    a[j] = 1.0\n")

    def test_subscript_offset_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    a[i+k] = 1.0\n")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = 1.0 2.0\n")


class TestExpressions:
    def _expr(self, text):
        return parse_loop(f"for i in n:\n    t = {text}\n").body[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = self._expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_left_associativity(self):
        expr = self._expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)
        assert expr.right == Scalar("c")

    def test_array_load(self):
        assert self._expr("v[i+3]") == ArrayRef("v", 3)

    def test_ivar_as_value(self):
        assert self._expr("i") == IVar()

    def test_unary_minus_literal_folds(self):
        assert self._expr("-2.0") == Num(-2.0)

    def test_unary_minus_expression_becomes_neg(self):
        expr = self._expr("-a")
        assert expr == Call("neg", (Scalar("a"),))

    def test_intrinsics(self):
        assert self._expr("sqrt(a)") == Call("sqrt", (Scalar("a"),))
        assert self._expr("min(a, b)") == Call(
            "min", (Scalar("a"), Scalar("b"))
        )

    def test_intrinsic_arity_checked(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = min(a)\n")

    def test_intrinsic_name_as_scalar_when_not_called(self):
        assert self._expr("neg + 1.0") == BinOp("+", Scalar("neg"), Num(1.0))

    def test_scientific_notation(self):
        assert self._expr("1.5e-3") == Num(0.0015)

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = for\n")


class TestConditionals:
    def test_if_else(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if a[i] > 0.0:\n"
            "        s = s + 1.0\n"
            "    else:\n"
            "        s = s - 1.0\n"
        )
        statement = loop.body[0]
        assert isinstance(statement, If)
        assert isinstance(statement.cond, Compare)
        assert len(statement.then_body) == 1
        assert len(statement.else_body) == 1

    def test_nested_if(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if a[i] > 0.0:\n"
            "        if a[i] > 1.0:\n"
            "            t = 2.0\n"
        )
        outer = loop.body[0]
        assert isinstance(outer.then_body[0], If)

    def test_and_or_not(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if a > 0.0 and not b < 1.0 or c == 2.0:\n"
            "        t = 1.0\n"
        )
        cond = loop.body[0].cond
        assert isinstance(cond, BoolOp) and cond.op == "or"
        assert isinstance(cond.left, BoolOp) and cond.left.op == "and"
        assert isinstance(cond.left.right, NotOp)

    def test_parenthesized_condition(self):
        loop = parse_loop(
            "for i in n:\n"
            "    if (a > 0.0 or b > 0.0) and c > 0.0:\n"
            "        t = 1.0\n"
        )
        cond = loop.body[0].cond
        assert cond.op == "and"
        assert cond.left.op == "or"

    def test_empty_if_body_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    if a > 0.0:\n    t = 1.0\n")

    def test_else_without_if_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    else:\n        t = 1.0\n")

    def test_assignment_with_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = a > b\n")


class TestLexical:
    def test_comments_stripped(self):
        loop = parse_loop("for i in n:  # loop\n    t = 1.0  # body\n")
        assert len(loop.body) == 1

    def test_blank_lines_ignored(self):
        loop = parse_loop("for i in n:\n\n    t = 1.0\n\n")
        assert len(loop.body) == 1

    def test_tab_indentation_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n\tt = 1.0\n")

    def test_unexpected_indent_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("for i in n:\n    t = 1.0\n        u = 2.0\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_loop("for i in n:\n    t = $\n")
        assert "line 2" in str(excinfo.value)

    def test_arrays_helpers(self):
        loop = parse_loop(
            "for i in n:\n"
            "    t = a[i] + b[i]\n"
            "    if c[i] > 0.0:\n"
            "        d[i] = t\n"
        )
        assert loop.arrays_read() == ["a", "b", "c"]
        assert loop.arrays_written() == ["d"]
        assert loop.arrays() == ["a", "b", "c", "d"]
