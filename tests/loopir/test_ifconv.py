"""IF-conversion: guards are the conjunction of dominating conditions,
and every branch condition is pinned at its If's program point."""

from repro.loopir import if_convert, parse_loop
from repro.loopir.ast import Assign, BoolOp, Compare, NotOp, Store
from repro.loopir.ifconv import CondEvaluation, PredicatedStatement


def _convert(text):
    return if_convert(parse_loop(text))


def _guarded(entries):
    return [e for e in entries if isinstance(e, PredicatedStatement)]


def _markers(entries):
    return [e for e in entries if isinstance(e, CondEvaluation)]


class TestFlattening:
    def test_unguarded_statements_pass_through(self):
        statements = _guarded(
            _convert("for i in n:\n    t = 1.0\n    a[i] = t\n")
        )
        assert [s.guard for s in statements] == [None, None]
        assert isinstance(statements[0].statement, Assign)
        assert isinstance(statements[1].statement, Store)

    def test_then_branch_guarded_by_condition(self):
        statements = _guarded(
            _convert("for i in n:\n    if x > 0.0:\n        t = 1.0\n")
        )
        assert isinstance(statements[0].guard, Compare)

    def test_else_branch_guarded_by_negation(self):
        statements = _guarded(
            _convert(
                "for i in n:\n"
                "    if x > 0.0:\n"
                "        t = 1.0\n"
                "    else:\n"
                "        t = 2.0\n"
            )
        )
        assert isinstance(statements[1].guard, NotOp)
        assert statements[1].guard.operand is statements[0].guard

    def test_nested_guards_conjoin(self):
        statements = _guarded(
            _convert(
                "for i in n:\n"
                "    if x > 0.0:\n"
                "        if y > 0.0:\n"
                "            t = 1.0\n"
            )
        )
        guard = statements[0].guard
        assert isinstance(guard, BoolOp) and guard.op == "and"

    def test_statement_order_preserved(self):
        statements = _guarded(
            _convert(
                "for i in n:\n"
                "    a[i] = 1.0\n"
                "    if x > 0.0:\n"
                "        b[i] = 2.0\n"
                "    c[i] = 3.0\n"
            )
        )
        arrays = [s.statement.array for s in statements]
        assert arrays == ["a", "b", "c"]

    def test_no_branches_remain(self):
        entries = _convert(
            "for i in n:\n"
            "    if x > 0.0:\n"
            "        if y > 0.0:\n"
            "            a[i] = 1.0\n"
            "        else:\n"
            "            a[i] = 2.0\n"
            "    else:\n"
            "        a[i] = 3.0\n"
        )
        statements = _guarded(entries)
        assert all(
            isinstance(s.statement, (Assign, Store)) for s in statements
        )
        assert len(statements) == 3


class TestCondEvaluationMarkers:
    def test_one_marker_per_if_in_program_order(self):
        entries = _convert(
            "for i in n:\n"
            "    if x > 0.0:\n"
            "        t = 1.0\n"
            "    if y > 0.0:\n"
            "        t = 2.0\n"
        )
        markers = _markers(entries)
        assert len(markers) == 2
        assert isinstance(entries[0], CondEvaluation)

    def test_marker_precedes_its_guarded_statements(self):
        entries = _convert(
            "for i in n:\n    if x > 0.0:\n        t = 1.0\n"
        )
        marker_pos = next(
            i for i, e in enumerate(entries) if isinstance(e, CondEvaluation)
        )
        stmt_pos = next(
            i
            for i, e in enumerate(entries)
            if isinstance(e, PredicatedStatement) and e.guard is not None
        )
        assert marker_pos < stmt_pos

    def test_guards_share_the_marked_node(self):
        """Then- and else-guards must reference the very node the marker
        evaluates, so lowering pins one predicate for both."""
        entries = _convert(
            "for i in n:\n"
            "    if x > 0.0:\n"
            "        t = 1.0\n"
            "    else:\n"
            "        t = 2.0\n"
        )
        marker = _markers(entries)[0]
        then_stmt, else_stmt = _guarded(entries)
        assert then_stmt.guard is marker.cond
        assert else_stmt.guard.operand is marker.cond

    def test_nested_marker_order(self):
        entries = _convert(
            "for i in n:\n"
            "    if x > 0.0:\n"
            "        if y > 0.0:\n"
            "            t = 1.0\n"
        )
        markers = _markers(entries)
        assert len(markers) == 2
        # Outer first, inner second.
        assert isinstance(entries[0], CondEvaluation)
        assert isinstance(entries[1], CondEvaluation)
