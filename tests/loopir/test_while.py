"""WHILE-loops: speculative execution with an alive-predicate recurrence."""

import pytest

from repro.core import compute_mii, modulo_schedule, validate_schedule
from repro.loopir import compile_loop_full, parse_loop
from repro.loopir.ast import Compare
from repro.machine import cydra5, single_alu_machine
from repro.simulator import (
    check_equivalence,
    make_initial_state,
    run_pipelined,
    run_reference,
)


@pytest.fixture
def machine():
    return cydra5()


class TestParsing:
    def test_while_clause(self):
        loop = parse_loop("for i in n while s > 0.0:\n    s = s - d[i]\n")
        assert isinstance(loop.while_cond, Compare)
        assert loop.trip == "n"

    def test_plain_loop_has_no_condition(self):
        loop = parse_loop("for i in n:\n    a[i] = 1.0\n")
        assert loop.while_cond is None

    def test_boolean_while_condition(self):
        loop = parse_loop(
            "for i in n while s > 0.0 and x[i] < hi:\n    s = s - x[i]\n"
        )
        assert loop.while_cond is not None


class TestLowering:
    def test_alive_recurrence_exists(self, machine):
        lowered = compile_loop_full(
            "for i in n while s > 0.0:\n    s = s - d[i]\n", machine
        )
        assert lowered.alive_op is not None
        alive = lowered.graph.operation(lowered.alive_op)
        assert alive.attrs["role"] == "alive"
        self_edges = [
            e
            for e in lowered.graph.succ_edges(lowered.alive_op)
            if e.succ == lowered.alive_op
        ]
        assert self_edges and self_edges[0].distance == 1

    def test_all_stores_guarded_by_alive(self, machine):
        lowered = compile_loop_full(
            "for i in n while q > 0.0:\n"
            "    a[i] = x[i]\n"
            "    if x[i] > 0.0:\n"
            "        b[i] = x[i]\n",
            machine,
        )
        for op in lowered.graph.real_operations():
            if op.opcode == "store":
                assert op.attrs["predicated"] is True
                assert op.predicate is not None

    def test_alive_survives_dce(self, machine):
        # The loop writes nothing through the alive path directly, yet
        # the alive op must survive for exit detection.
        lowered = compile_loop_full(
            "for i in n while s > 0.0:\n    s = s - d[i]\n", machine
        )
        assert lowered.alive_op is not None
        assert (
            lowered.graph.operation(lowered.alive_op).attrs["role"] == "alive"
        )

    def test_while_recurrence_contributes_to_mii(self, machine):
        lowered = compile_loop_full(
            "for i in n while s > 0.0:\n    s = s - d[i]\n", machine
        )
        result = compute_mii(lowered.graph, machine)
        # alive's pand self-circuit: delay 2 at distance 1.
        assert result.rec_mii >= 2


class TestSemantics:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_data_dependent_exit(self, machine, seed):
        lowered = compile_loop_full(
            "for i in n while x[i] < limit:\n"
            "    s = s + x[i]\n"
            "    y[i] = s\n",
            machine,
            name="while_threshold",
        )
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        report = check_equivalence(lowered, result.schedule, n=31, seed=seed)
        assert report.ok, report.describe()

    def test_exit_on_first_iteration(self, machine):
        lowered = compile_loop_full(
            "for i in n while gate > 0.0:\n    a[i] = 7.0\n    s = s + 1.0\n",
            machine,
        )
        result = modulo_schedule(lowered.graph, machine)
        state = make_initial_state(lowered, 10, seed=0)
        state.scalars["gate"] = -1.0
        reference = run_reference(lowered.loop, state.copy(), 10)
        pipelined = run_pipelined(lowered, result.schedule, state.copy(), 10)
        assert reference.differences(pipelined) == []
        # Nothing committed, scalars untouched.
        assert pipelined.arrays["a"][0] == state.arrays["a"][0]
        assert pipelined.scalars["s"] == state.scalars["s"]

    def test_exit_mid_loop_exact_boundary(self, machine):
        lowered = compile_loop_full(
            "for i in n while countdown > 0.5:\n"
            "    countdown = countdown - 1.0\n"
            "    out[i] = countdown\n",
            machine,
        )
        result = modulo_schedule(lowered.graph, machine)
        n = 20
        state = make_initial_state(lowered, n, seed=0)
        state.scalars["countdown"] = 5.0
        reference = run_reference(lowered.loop, state.copy(), n)
        pipelined = run_pipelined(lowered, result.schedule, state.copy(), n)
        assert reference.differences(pipelined) == []
        # Exactly five iterations ran.
        assert pipelined.scalars["countdown"] == 0.0
        assert pipelined.arrays["out"][4] == 0.0
        assert pipelined.arrays["out"][5] == state.arrays["out"][5]

    def test_condition_never_false_runs_all_iterations(self, machine):
        lowered = compile_loop_full(
            "for i in n while one > 0.0:\n    y[i] = x[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        state = make_initial_state(lowered, 12, seed=2)
        state.scalars["one"] = 1.0
        reference = run_reference(lowered.loop, state.copy(), 12)
        pipelined = run_pipelined(lowered, result.schedule, state.copy(), 12)
        assert reference.differences(pipelined) == []

    def test_while_on_single_alu(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(
            "for i in n while s < 9.0:\n    s = s + a[i]\n    b[i] = s\n",
            machine,
        )
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = check_equivalence(lowered, result.schedule, n=17, seed=7)
        assert report.ok, report.describe()
