"""Whole-stack fuzzing: random loop programs, end to end (hypothesis).

Random ASTs are generated directly (so hypothesis can shrink failures to
minimal programs), compiled through IF-conversion + lowering, modulo
scheduled, and executed on the pipelined simulator against the sequential
oracle.  Any dependence-analysis, scheduling or simulation bug surfaces
as a state mismatch on randomized data.
"""

import os

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import modulo_schedule, validate_schedule
from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Compare,
    If,
    IndirectRef,
    IndirectStore,
    IVar,
    Loop,
    Num,
    Scalar,
    Store,
)
from repro.loopir.ifconv import if_convert
from repro.loopir.lower import lower_loop
from repro.machine import cydra5, two_alu_machine
from repro.simulator import check_equivalence

_ARRAYS = ["a", "b", "c"]
_SCALARS = ["s", "t", "u"]
_BINOPS = ["+", "-", "*"]
_CMPS = ["<", "<=", "==", "!=", ">", ">="]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2:
        leaf = draw(st.integers(min_value=0, max_value=3))
    else:
        leaf = draw(st.integers(min_value=0, max_value=6))
    if leaf == 0:
        return Num(round(draw(st.floats(-4, 4, allow_nan=False)), 2))
    if leaf == 1:
        return Scalar(draw(st.sampled_from(_SCALARS)))
    if leaf == 2:
        return ArrayRef(
            draw(st.sampled_from(_ARRAYS)),
            draw(st.integers(min_value=-2, max_value=2)),
        )
    if leaf == 3:
        return IVar()
    if leaf == 6:
        # An indirect gather through a dedicated index array.
        return IndirectRef(
            draw(st.sampled_from(_ARRAYS)),
            ArrayRef("idx", draw(st.integers(min_value=-1, max_value=1))),
        )
    if leaf == 4:
        return BinOp(
            draw(st.sampled_from(_BINOPS)),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    fn = draw(st.sampled_from(["abs", "neg", "min", "max"]))
    arity = 1 if fn in ("abs", "neg") else 2
    args = tuple(draw(expressions(depth=depth + 1)) for _ in range(arity))
    return Call(fn, args)


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(min_value=0, max_value=3 if depth < 1 else 1))
    if kind == 0:
        return Assign(draw(st.sampled_from(_SCALARS)), draw(expressions()))
    if kind == 1:
        return Store(
            draw(st.sampled_from(_ARRAYS)),
            draw(st.integers(min_value=-2, max_value=2)),
            draw(expressions()),
        )
    if kind == 3:
        return IndirectStore(
            draw(st.sampled_from(_ARRAYS)),
            ArrayRef("idx", draw(st.integers(min_value=-1, max_value=1))),
            draw(expressions()),
        )
    cond = Compare(
        draw(st.sampled_from(_CMPS)), draw(expressions()), draw(expressions())
    )
    then_body = draw(
        st.lists(statements(depth=depth + 1), min_size=1, max_size=2)
    )
    else_body = draw(
        st.lists(statements(depth=depth + 1), min_size=0, max_size=2)
    )
    return If(cond, then_body, else_body)


@st.composite
def loops(draw):
    body = draw(st.lists(statements(), min_size=1, max_size=4))
    while_cond = None
    if draw(st.booleans()):
        while_cond = Compare(
            draw(st.sampled_from(_CMPS)),
            draw(expressions()),
            draw(expressions()),
        )
    return Loop(
        ivar="i", trip="n", body=body, name="fuzz", while_cond=while_cond
    )


#: Raise via REPRO_FUZZ_EXAMPLES for long fuzzing sessions.
_SETTINGS = settings(
    max_examples=int(os.environ.get("REPRO_FUZZ_EXAMPLES", "40")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestWholeStack:
    @given(loops(), st.sampled_from([7, 23]))
    @_SETTINGS
    def test_random_programs_pipeline_correctly(self, loop, n):
        machine = cydra5()
        lowered = lower_loop(loop, if_convert(loop), machine)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        report = check_equivalence(lowered, result.schedule, n=n, seed=13)
        assert report.ok, report.describe() + "\n" + lowered.graph.describe()

    @given(loops())
    @_SETTINGS
    def test_random_programs_on_two_alu_machine(self, loop):
        machine = two_alu_machine()
        lowered = lower_loop(loop, if_convert(loop), machine)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = check_equivalence(lowered, result.schedule, n=11, seed=5)
        assert report.ok, report.describe()
