"""Minimal counterexamples the whole-stack fuzzer found, pinned forever.

Each test is a shrunk hypothesis counterexample that exposed a real bug
during development; they run as plain examples so the bugs can never
quietly return (see docs/VERIFICATION.md for the stories).
"""

import pytest

from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Compare,
    If,
    IndirectRef,
    IVar,
    Loop,
    Num,
    Scalar,
    Store,
)
from repro.loopir.ifconv import if_convert
from repro.loopir.lower import lower_loop
from repro.machine import cydra5, two_alu_machine
from repro.simulator import check_equivalence


def _verify(loop_or_source, machine, n=13, seeds=(0, 1, 2, 5)):
    if isinstance(loop_or_source, str):
        lowered = compile_loop_full(loop_or_source, machine, name="regression")
    else:
        lowered = lower_loop(loop_or_source, if_convert(loop_or_source), machine)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    for seed in seeds:
        report = check_equivalence(lowered, result.schedule, n=n, seed=seed)
        assert report.ok, report.describe()


@pytest.fixture(params=[cydra5, two_alu_machine])
def machine(request):
    return request.param()


class TestFuzzRegressions:
    def test_find1_assign_from_induction_variable(self, machine):
        """``s = i`` aliased the scalar to the induction recurrence and
        dropped its distance-1 read semantics."""
        _verify("for i in n:\n    s = i\n", machine)

    def test_find2_else_guard_staleness(self, machine):
        """The else-branch re-evaluated its condition after the
        then-branch redefined the scalar the condition reads."""
        _verify(
            "for i in n:\n"
            "    if 0.0 < s:\n"
            "        s = 0.0\n"
            "    else:\n"
            "        s = 1.0\n",
            machine,
        )

    def test_find3_while_condition_array_missing(self, machine):
        """An array read only by the while-condition was absent from
        Loop.arrays(), so the simulators had no storage for it."""
        _verify("for i in n while 0.0 < a[i]:\n    s = 0.0\n", machine)

    def test_find4_carried_scalar_aliasing(self, machine):
        """Two loop-carried scalars aliased to one defining op collapsed
        their distinct initial values."""
        loop = Loop(
            ivar="i",
            trip="n",
            body=[
                If(
                    Compare("<", Scalar("s"), Num(0.0)),
                    [Assign("u", Num(0.0))],
                    [],
                ),
                Assign("s", Scalar("u")),
            ],
            name="alias",
        )
        _verify(loop, machine)

    def test_find5_stale_indirect_condition(self, machine):
        """A cached predicate reading an array *indirectly* was not
        invalidated by a store to that array."""

        def cond():
            return Compare(
                ">",
                BinOp(
                    "-",
                    Call("neg", (Scalar("t"),)),
                    Call("abs", (IVar(),)),
                ),
                IndirectRef("c", ArrayRef("idx", 1)),
            )

        loop = Loop(
            ivar="i",
            trip="n",
            body=[
                Assign("s", Num(0.0)),
                If(cond(), [Assign("s", Num(0.0))], []),
                Store("c", 0, Num(0.0)),
                If(cond(), [Assign("u", ArrayRef("a", 0))], []),
            ],
            name="stale",
        )
        _verify(loop, machine, n=11)

    def test_pass_through_chain_of_aliases(self, machine):
        """Deeper variant of find 4: a chain of pass-throughs."""
        _verify(
            "for i in n:\n"
            "    t = u\n"
            "    u = s\n"
            "    s = x[i]\n"
            "    y[i] = t + u + s\n",
            machine,
        )
