"""Value numbering (CSE) and dead-code elimination."""

import pytest

from repro.core import modulo_schedule
from repro.loopir import compile_loop_full, eliminate_dead_code
from repro.machine import cydra5, single_alu_machine
from repro.simulator import check_equivalence


@pytest.fixture
def machine():
    return cydra5()


def _ops(lowered, opcode):
    return [
        op for op in lowered.graph.real_operations() if op.opcode == opcode
    ]


class TestValueNumbering:
    def test_duplicate_loads_merged(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i] * a[i] + a[i]\n", machine
        )
        assert len(_ops(lowered, "load")) == 1

    def test_duplicate_arithmetic_merged(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = (x + y) * (x + y)\n", machine
        )
        assert len(_ops(lowered, "fadd")) == 1

    def test_commutative_operands_merged(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = x * y + y * x\n", machine
        )
        assert len(_ops(lowered, "fmul")) == 1

    def test_noncommutative_not_merged(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = (x - y) + (y - x)\n", machine
        )
        assert len(_ops(lowered, "fsub")) == 2

    def test_store_kills_load_cache(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    t = a[i]\n"
            "    a[i] = t + 1.0\n"
            "    u = a[i]\n"
            "    b[i] = u\n",
            machine,
        )
        # The read after the store must be a second, distinct load.
        assert len(_ops(lowered, "load")) == 2

    def test_store_to_other_array_does_not_kill(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    t = a[i]\n"
            "    b[i] = t\n"
            "    c[i] = a[i]\n",
            machine,
        )
        assert len(_ops(lowered, "load")) == 1

    def test_optimize_off_keeps_duplicates(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i] + a[i]\n",
            machine,
            optimize=False,
        )
        assert len(_ops(lowered, "load")) == 2

    def test_different_offsets_not_merged(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i] + a[i+1]\n", machine
        )
        assert len(_ops(lowered, "load")) == 2

    def test_cse_preserves_semantics(self, machine):
        source = (
            "for i in n:\n"
            "    t = a[i] * q\n"
            "    if a[i] * q > lim:\n"
            "        b[i] = t\n"
            "    s = s + a[i] * q\n"
        )
        for optimize in (True, False):
            lowered = compile_loop_full(source, machine, optimize=optimize)
            result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
            report = check_equivalence(lowered, result.schedule, n=23, seed=6)
            assert report.ok, report.describe()

    def test_cse_lowers_resmii(self, machine):
        source = (
            "for i in n:\n"
            "    cr[i] = ar[i] * br[i] - ai[i] * bi[i]\n"
            "    ci[i] = ar[i] * bi[i] + ai[i] * br[i]\n"
        )
        with_cse = compile_loop_full(source, machine)
        without = compile_loop_full(source, machine, optimize=False)
        on = modulo_schedule(with_cse.graph, machine).ii
        off = modulo_schedule(without.graph, machine).ii
        assert on < off


class TestDeadCodeElimination:
    def test_shadowed_definition_removed(self, machine):
        optimized = compile_loop_full(
            "for i in n:\n"
            "    u = a[i] * 2.0\n"
            "    u = b[i] + 1.0\n"
            "    c[i] = u\n",
            machine,
        )
        raw = compile_loop_full(
            "for i in n:\n"
            "    u = a[i] * 2.0\n"
            "    u = b[i] + 1.0\n"
            "    c[i] = u\n",
            machine,
            optimize=False,
        )
        assert optimized.graph.n_real_ops < raw.graph.n_real_ops
        # The dead multiply and its load are both gone.
        assert len(_ops(optimized, "fmul")) == 0

    def test_idempotent_when_nothing_dead(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n    c[i] = a[i]\n", machine
        )
        assert eliminate_dead_code(lowered) is lowered

    def test_final_scalar_defs_are_roots(self, machine):
        """A scalar assigned and never read is still observable after the
        loop, so its computation survives."""
        lowered = compile_loop_full(
            "for i in n:\n    t = a[i] * q\n    b[i] = a[i]\n", machine
        )
        assert len(_ops(lowered, "fmul")) == 1
        assert "t" in lowered.final_defs

    def test_metadata_remapped(self, machine):
        lowered = compile_loop_full(
            "for i in n:\n"
            "    u = a[i] * 2.0\n"
            "    u = 1.0\n"
            "    s = s + b[i]\n",
            machine,
        )
        graph = lowered.graph
        for name, op in {**lowered.final_defs, **lowered.carried_defs}.items():
            assert 0 < op < graph.stop
        for op in graph.real_operations():
            for descriptor in op.attrs.get("operands", ()):
                if descriptor[0] == "op":
                    assert 0 < descriptor[1] < graph.stop

    def test_dce_preserves_semantics(self, machine):
        source = (
            "for i in n:\n"
            "    u = a[i] / (b[i] + 1.5)\n"
            "    u = a[i] - b[i]\n"
            "    if u > 0.0:\n"
            "        c[i] = u\n"
            "    s = s + u\n"
        )
        lowered = compile_loop_full(source, machine)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = check_equivalence(lowered, result.schedule, n=19, seed=12)
        assert report.ok, report.describe()

    def test_works_on_single_alu(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(
            "for i in n:\n    u = x\n    u = y\n    a[i] = u\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        report = check_equivalence(lowered, result.schedule, n=9, seed=1)
        assert report.ok
