"""Cross-module integration: the full compiler pipeline, end to end.

DSL text -> parse -> IF-convert -> lower (DSA + dependence analysis) ->
MII -> iterative modulo schedule -> static validation -> code generation
(lifetimes, MVE, rotating registers, prologue/kernel/epilogue) ->
pipelined simulation against the sequential oracle.
"""

import pytest

from repro import (
    SchedulingFailure,
    compute_mii,
    cydra5,
    modulo_schedule,
    single_alu_machine,
    validate_schedule,
)
from repro.baselines import list_schedule, unroll_and_schedule
from repro.codegen import (
    allocate_rotating,
    compute_lifetimes,
    emit_pipelined_code,
    modulo_variable_expansion,
)
from repro.codegen.rotation import verify_rotating_allocation
from repro.ir import DelayModel, DependenceGraph, DependenceKind
from repro.loopir import compile_loop_full
from repro.machine import superscalar_machine
from repro.simulator import check_equivalence

_SOURCE = """
for i in n:
    t = a[i] * w + b[i+1]
    if t > hi:
        t = hi
    s = s + t
    c[i] = t
"""


@pytest.fixture(scope="module")
def machine():
    return cydra5()


@pytest.fixture(scope="module")
def pipeline(machine):
    lowered = compile_loop_full(_SOURCE, machine, name="integration")
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    return lowered, result


class TestFullPipeline:
    def test_schedule_statically_valid(self, machine, pipeline):
        lowered, result = pipeline
        assert validate_schedule(lowered.graph, machine, result.schedule) == []

    def test_schedule_semantically_correct(self, pipeline):
        lowered, result = pipeline
        for seed in (0, 1, 2):
            report = check_equivalence(lowered, result.schedule, n=29, seed=seed)
            assert report.ok, report.describe()

    def test_codegen_chain(self, machine, pipeline):
        lowered, result = pipeline
        graph, schedule = lowered.graph, result.schedule
        lifetimes = compute_lifetimes(graph, schedule)
        kernel = modulo_variable_expansion(graph, schedule, lifetimes)
        assert kernel.length == kernel.unroll * result.ii
        allocation = allocate_rotating(graph, schedule, lifetimes)
        assert verify_rotating_allocation(graph, schedule, allocation) == []
        code = emit_pipelined_code(graph, schedule)
        prologue, epilogue = code.instance_count()
        assert prologue + epilogue > 0  # multi-stage pipeline

    def test_modulo_beats_list_scheduling_throughput(self, machine, pipeline):
        lowered, result = pipeline
        sequential = list_schedule(lowered.graph, machine)
        assert result.ii < sequential.times[lowered.graph.stop]

    def test_unrolling_needs_code_growth_to_compete(self, machine, pipeline):
        lowered, result = pipeline
        flat = unroll_and_schedule(lowered.graph, machine, 1)
        assert flat.effective_ii >= result.ii


class TestDelayModels:
    def test_conservative_model_never_negative_delays(self):
        machine = superscalar_machine()
        graph = DependenceGraph(machine, delay_model=DelayModel.CONSERVATIVE)
        a = graph.add_operation("fadd", dest="a")
        b = graph.add_operation("fadd", dest="b")
        graph.add_edge(a, b, DependenceKind.ANTI)
        graph.add_edge(a, b, DependenceKind.OUTPUT)
        graph.seal()
        assert all(e.delay >= 0 for e in graph.edges)
        result = modulo_schedule(graph, machine)
        assert validate_schedule(graph, machine, result.schedule) == []

    def test_vliw_model_can_tighten_ii(self):
        """Negative anti delays admit IIs the conservative model may not."""
        machine = superscalar_machine()

        def build(model):
            graph = DependenceGraph(machine, delay_model=model)
            a = graph.add_operation("load", dest="a")
            b = graph.add_operation("load", dest="b")
            graph.add_edge(a, b, DependenceKind.ANTI, distance=1)
            return graph.seal()

        vliw = compute_mii(build(DelayModel.VLIW), machine)
        conservative = compute_mii(build(DelayModel.CONSERVATIVE), machine)
        assert vliw.mii <= conservative.mii


class TestFailureModes:
    def test_impossible_ii_cap_raises(self):
        machine = single_alu_machine()
        graph = DependenceGraph(machine)
        a = graph.add_operation("fdiv", dest="a", srcs=("a",))
        graph.add_edge(a, a, DependenceKind.FLOW, distance=1)  # RecMII 8
        graph.seal()
        with pytest.raises(SchedulingFailure):
            modulo_schedule(graph, machine, max_ii=7)
