"""Register pressure: MaxLive and its relation to the block allocator."""

import pytest

from repro.codegen import (
    allocate_rotating,
    compute_lifetimes,
    register_pressure,
)
from repro.core import Schedule, modulo_schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine
from repro.workloads.kernels import KERNELS


@pytest.fixture
def alu():
    return single_alu_machine()


class TestHandCases:
    def _one_value(self, alu, consumer_delay):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd", dest="a")
        b = graph.add_operation("fadd", dest="b", srcs=("a",))
        graph.add_edge(a, b, DependenceKind.FLOW, delay=consumer_delay)
        return graph.seal()

    def test_short_lifetime_counts_once(self, alu):
        graph = self._one_value(alu, consumer_delay=1)
        result = modulo_schedule(graph, alu)
        report = register_pressure(graph, result.schedule)
        assert report.max_live >= 1

    def test_lifetime_spanning_k_iis_counts_k_everywhere(self, alu):
        graph = self._one_value(alu, consumer_delay=6)  # II will be 2
        result = modulo_schedule(graph, alu)
        lifetimes = compute_lifetimes(graph, result.schedule)
        report = register_pressure(graph, result.schedule, lifetimes)
        value = lifetimes[1]
        floor_count = value.length // result.ii
        assert min(report.per_slot) >= floor_count

    def test_per_slot_length_is_ii(self, alu):
        graph = self._one_value(alu, consumer_delay=3)
        result = modulo_schedule(graph, alu)
        report = register_pressure(graph, result.schedule)
        assert len(report.per_slot) == result.ii

    def test_zero_length_values_ignored(self, alu):
        graph = DependenceGraph(alu)
        graph.add_operation("store")
        graph.seal()
        result = modulo_schedule(graph, alu)
        report = register_pressure(graph, result.schedule)
        assert report.max_live == 0

    def test_describe(self, alu):
        graph = self._one_value(alu, consumer_delay=2)
        result = modulo_schedule(graph, alu)
        text = register_pressure(graph, result.schedule).describe()
        assert "MaxLive" in text


class TestAllocatorBound:
    @pytest.mark.parametrize(
        "name", ["sdot", "saxpy", "lfk1_hydro", "iir_filter2", "stencil5"]
    )
    def test_rotating_size_at_least_max_live(self, name):
        """The block allocator can never beat the MaxLive lower bound."""
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = register_pressure(lowered.graph, result.schedule)
        allocation = allocate_rotating(lowered.graph, result.schedule)
        assert allocation.size >= report.max_live

    def test_average_never_exceeds_max(self):
        machine = cydra5()
        lowered = compile_loop_full(KERNELS["srot"].source, machine)
        result = modulo_schedule(lowered.graph, machine)
        report = register_pressure(lowered.graph, result.schedule)
        assert report.avg_live <= report.max_live + 1e-9
