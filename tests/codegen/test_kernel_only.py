"""Kernel-only code generation with stage predicates."""

import pytest

from repro.codegen import allocate_rotating, emit_kernel_only, emit_pipelined_code
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5
from repro.workloads.kernels import KERNELS


def _emitted(name):
    machine = cydra5()
    lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    code = emit_kernel_only(lowered.graph, result.schedule)
    return lowered, result, code


class TestStructure:
    def test_exactly_ii_rows(self):
        _, result, code = _emitted("sdot")
        assert len(code.rows) == result.ii

    def test_each_op_once_with_its_stage_predicate(self):
        lowered, result, code = _emitted("sdot")
        seen = {}
        for row in code.rows:
            for item in row:
                seen[item.op] = item.stage
        for op in lowered.graph.real_operations():
            assert seen[op.index] == result.schedule.stage(op.index)

    def test_zero_code_expansion(self):
        lowered, _, code = _emitted("lfk1_hydro")
        total = sum(len(row) for row in code.rows)
        assert total == lowered.graph.n_real_ops

    def test_rotating_register_names_used(self):
        lowered, result, code = _emitted("sdot")
        allocation = allocate_rotating(lowered.graph, result.schedule)
        rendered = code.render()
        assert "r[" in rendered
        assert code.rotating_size == allocation.size

    def test_render_mentions_predicates_and_brtop(self):
        _, _, code = _emitted("saxpy")
        text = code.render()
        assert "(p[" in text
        assert "brtop" in text


class TestTiming:
    def test_total_cycles_formula(self):
        _, result, code = _emitted("sdot")
        n = 100
        assert code.total_cycles(n) == (n + code.stage_count - 1) * result.ii
        assert code.total_cycles(0) == 0

    @pytest.mark.parametrize("name", ["sdot", "stencil5"])
    def test_kernel_only_vs_explicit_cost(self, name):
        """Kernel-only pays at most (SC*II - SL) extra cycles relative to
        the explicit prologue/kernel/epilogue layout, never less than it."""
        lowered, result, code = _emitted(name)
        explicit_cycles = (100 - 1) * result.ii + result.schedule_length
        kernel_only_cycles = code.total_cycles(100)
        assert kernel_only_cycles >= explicit_cycles
        slack = code.stage_count * result.ii - result.schedule_length
        assert kernel_only_cycles - explicit_cycles == slack

    def test_consumer_distance_addresses_offset_register(self):
        lowered, result, code = _emitted("sdot")
        acc = lowered.carried_defs["s"]
        allocation = allocate_rotating(lowered.graph, result.schedule)
        base = allocation.bases[acc]
        # The accumulator reads itself at distance 1: r[base + 1].
        rendered = code.render()
        assert f"r[{base + 1}]" in rendered
