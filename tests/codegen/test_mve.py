"""Modulo variable expansion: kernel unrolling and renaming."""

import pytest

from repro.codegen import compute_lifetimes, modulo_variable_expansion
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine


def _expanded(source, machine, name="loop"):
    lowered = compile_loop_full(source, machine, name=name)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    kernel = modulo_variable_expansion(lowered.graph, result.schedule)
    return lowered, result, kernel


class TestStructure:
    def test_kernel_rows_equal_unroll_times_ii(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    s = s + x[i] * y[i]\n", cydra5()
        )
        assert len(kernel.rows) == kernel.unroll * result.ii
        assert kernel.length == kernel.unroll * result.ii

    def test_each_op_appears_once_per_copy(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    y[i] = x[i] * 2.0\n", single_alu_machine()
        )
        counts = {}
        for row in kernel.rows:
            for item in row:
                counts[item.op] = counts.get(item.op, 0) + 1
        for op in lowered.graph.real_operations():
            assert counts[op.index] == kernel.unroll

    def test_code_growth_equals_unroll(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    s = s + x[i]\n", cydra5()
        )
        growth = kernel.code_growth(lowered.graph.n_real_ops)
        assert growth == pytest.approx(kernel.unroll)

    def test_row_slots_match_schedule(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        for row_index, row in enumerate(kernel.rows):
            for item in row:
                assert (
                    result.schedule.times[item.op] % result.ii
                    == row_index % result.ii
                )


class TestRenaming:
    def test_unroll_covers_longest_lifetime(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    s = s + x[i] * y[i]\n", cydra5()
        )
        lifetimes = compute_lifetimes(lowered.graph, result.schedule)
        longest = max(l.length for l in lifetimes.values())
        assert kernel.unroll * result.ii >= longest

    def test_destinations_distinct_across_copies(self):
        lowered, result, kernel = _expanded(
            "for i in n:\n    y[i] = x[i] + 1.0\n", cydra5()
        )
        if kernel.unroll < 2:
            pytest.skip("no expansion needed for this schedule")
        per_op = {}
        for row in kernel.rows:
            for item in row:
                if item.dest is not None:
                    per_op.setdefault(item.op, set()).add(item.dest)
        for op, dests in per_op.items():
            assert len(dests) == kernel.unroll

    def test_consumer_reads_producer_copy_offset_by_distance(self):
        """The accumulator reads its own previous copy."""
        machine = single_alu_machine()
        lowered, result, kernel = _expanded(
            "for i in n:\n    s = s + x[i]\n", machine
        )
        if kernel.unroll < 2:
            pytest.skip("no expansion needed for this schedule")
        acc_op = lowered.carried_defs["s"]
        items = [
            item
            for row in kernel.rows
            for item in row
            if item.op == acc_op
        ]
        for item in items:
            expected_src = f"{lowered.graph.operation(acc_op).dest}@" + str(
                (item.copy - 1) % kernel.unroll
            )
            assert expected_src in item.srcs

    def test_render_mentions_unroll(self):
        _, _, kernel = _expanded(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        assert f"unroll={kernel.unroll}" in kernel.render()
