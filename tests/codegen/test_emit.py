"""Prologue / kernel / epilogue layout: the structural invariants."""

import pytest

from repro.codegen import emit_pipelined_code
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine
from repro.workloads.kernels import KERNELS


def _emitted(source, machine, name="loop"):
    lowered = compile_loop_full(source, machine, name=name)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    return lowered, result, emit_pipelined_code(lowered.graph, result.schedule)


class TestRampLengths:
    def test_ramp_is_stage_count_minus_one_iis(self):
        lowered, result, code = _emitted(
            "for i in n:\n    s = s + x[i]\n", cydra5()
        )
        expected = (result.schedule.stage_count - 1) * result.ii
        assert code.prologue_length == expected
        assert code.epilogue_length == expected

    def test_single_stage_loop_has_empty_ramps(self):
        lowered, result, code = _emitted(
            "for i in n:\n    t = 1.0\n    y[i] = t\n", single_alu_machine()
        )
        if result.schedule.stage_count == 1:
            assert code.prologue == [] and code.epilogue == []


class TestInstanceCounts:
    @pytest.mark.parametrize("name", ["sdot", "saxpy", "lfk1_hydro", "stencil5"])
    def test_prologue_and_epilogue_counts(self, name):
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        code = emit_pipelined_code(lowered.graph, result.schedule)
        schedule = result.schedule
        stage_sum = sum(
            schedule.stage(op.index)
            for op in lowered.graph.real_operations()
        )
        stage_count = schedule.stage_count
        n_real = lowered.graph.n_real_ops
        prologue, epilogue = code.instance_count()
        assert epilogue == stage_sum
        assert prologue == (stage_count - 1) * n_real - stage_sum

    @pytest.mark.parametrize("name", ["sdot", "lfk5_tridiag"])
    def test_n_iterations_execute_n_times_ops(self, name):
        """prologue + (n - SC + 1) kernel traversals + epilogue covers
        every operation of every iteration exactly once."""
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        code = emit_pipelined_code(lowered.graph, result.schedule)
        n = result.schedule.stage_count + 5
        prologue, epilogue = code.instance_count()
        kernel_instances = (
            n - result.schedule.stage_count + 1
        ) * lowered.graph.n_real_ops
        assert (
            prologue + kernel_instances + epilogue
            == n * lowered.graph.n_real_ops
        )


class TestLayout:
    def test_prologue_rows_hold_filling_iterations(self):
        lowered, result, code = _emitted(
            "for i in n:\n    s = s + x[i]\n", cydra5()
        )
        ii = result.ii
        for cycle, row in enumerate(code.prologue):
            for op, lag in row:
                assert result.schedule.times[op] + lag * ii == cycle

    def test_epilogue_rows_hold_draining_iterations(self):
        lowered, result, code = _emitted(
            "for i in n:\n    s = s + x[i]\n", cydra5()
        )
        ii = result.ii
        for offset, row in enumerate(code.epilogue):
            for op, lag in row:
                assert result.schedule.times[op] - lag * ii == offset
                assert lag >= 1

    def test_render_includes_all_sections(self):
        lowered, result, code = _emitted(
            "for i in n:\n    s = s + x[i]\n", cydra5()
        )
        text = code.render(lowered.graph)
        assert "prologue" in text
        assert "kernel" in text
        assert "epilogue" in text

    def test_mve_can_be_disabled(self):
        lowered, result, _ = _emitted(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        code = emit_pipelined_code(
            lowered.graph, result.schedule, use_mve=False
        )
        assert code.kernel is None
