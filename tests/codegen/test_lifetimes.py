"""Value lifetimes under a schedule."""

import pytest

from repro.codegen import compute_lifetimes
from repro.codegen.lifetimes import mve_unroll_factor
from repro.core import Schedule, modulo_schedule
from repro.ir import DependenceGraph, DependenceKind
from repro.machine import single_alu_machine

from tests.conftest import chain_graph, reduction_graph


@pytest.fixture
def alu():
    return single_alu_machine()


class TestBasics:
    def test_unused_value_lives_for_its_latency(self, alu):
        graph = chain_graph(alu, ["fmul"])  # latency 3, consumer only STOP
        schedule = modulo_schedule(graph, alu).schedule
        lifetimes = compute_lifetimes(graph, schedule)
        lifetime = lifetimes[1]
        assert lifetime.length == 3

    def test_consumer_extends_lifetime(self, alu):
        graph = DependenceGraph(alu)
        a = graph.add_operation("fadd", dest="a")
        b = graph.add_operation("fadd", dest="b")
        graph.add_edge(a, b, DependenceKind.FLOW, delay=5)
        graph.seal()
        schedule = modulo_schedule(graph, alu).schedule
        lifetimes = compute_lifetimes(graph, schedule)
        assert lifetimes[a].end == schedule.times[b]

    def test_cross_iteration_consumer_adds_ii_per_distance(self, alu):
        graph = reduction_graph(alu)
        result = modulo_schedule(graph, alu)
        schedule = result.schedule
        lifetimes = compute_lifetimes(graph, schedule)
        acc = lifetimes[2]
        assert acc.end == schedule.times[2] + result.ii  # self use, d=1

    def test_stores_have_no_lifetime_entry(self, alu):
        graph = DependenceGraph(alu)
        load = graph.add_operation("load", dest="v")
        store = graph.add_operation("store")  # no destination register
        graph.add_edge(load, store, DependenceKind.FLOW)
        graph.seal()
        schedule = modulo_schedule(graph, alu).schedule
        lifetimes = compute_lifetimes(graph, schedule)
        assert store not in lifetimes

    def test_instances_at(self, alu):
        graph = chain_graph(alu, ["fmul"])
        schedule = modulo_schedule(graph, alu).schedule
        lifetime = compute_lifetimes(graph, schedule)[1]
        assert lifetime.instances_at(1) == lifetime.length + 1
        assert lifetime.instances_at(lifetime.length + 1) == 1


class TestUnrollFactor:
    def test_short_lifetimes_need_no_unroll(self, alu):
        graph = chain_graph(alu, ["fadd"])
        schedule = modulo_schedule(graph, alu).schedule
        lifetimes = compute_lifetimes(graph, schedule)
        assert mve_unroll_factor(lifetimes, schedule.ii) == 1

    def test_long_lifetime_forces_unroll(self, alu):
        graph = chain_graph(alu, ["load", "fadd"])  # load lives 2 cycles
        result = modulo_schedule(graph, alu)
        lifetimes = compute_lifetimes(graph, result.schedule)
        factor = mve_unroll_factor(lifetimes, result.ii)
        longest = max(l.length for l in lifetimes.values())
        assert factor >= -(-longest // result.ii)
