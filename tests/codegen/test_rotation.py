"""Rotating-register allocation: widths, disjoint blocks, safety."""

import pytest

from repro.codegen import allocate_rotating, compute_lifetimes
from repro.codegen.rotation import verify_rotating_allocation
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine
from repro.workloads.kernels import KERNELS


def _allocated(source, machine):
    lowered = compile_loop_full(source, machine)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    allocation = allocate_rotating(lowered.graph, result.schedule)
    return lowered, result, allocation


class TestAllocation:
    def test_blocks_are_disjoint(self):
        lowered, result, allocation = _allocated(
            "for i in n:\n    s = s + x[i] * y[i]\n", cydra5()
        )
        spans = []
        for op, base in allocation.bases.items():
            spans.append((base, base + allocation.widths[op]))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_size_is_sum_of_widths(self):
        _, _, allocation = _allocated(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        assert allocation.size == sum(allocation.widths.values())

    def test_width_covers_read_distance(self):
        lowered, result, allocation = _allocated(
            "for i in n:\n    s = s + x[i]\n", single_alu_machine()
        )
        acc = lowered.carried_defs["s"]
        # The accumulator is read at distance 1, so needs >= 2 slots.
        assert allocation.widths[acc] >= 2

    def test_register_names(self):
        _, _, allocation = _allocated(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        op = min(allocation.bases)
        assert allocation.register_for_def(op) == f"r[{allocation.bases[op]}]"
        assert allocation.register_for_use(op, 0) == allocation.register_for_def(op)

    def test_excessive_read_distance_rejected(self):
        _, _, allocation = _allocated(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        op = min(allocation.bases)
        with pytest.raises(ValueError):
            allocation.register_for_use(op, allocation.widths[op] + 1)

    def test_describe_lists_blocks(self):
        _, _, allocation = _allocated(
            "for i in n:\n    y[i] = x[i]\n", single_alu_machine()
        )
        assert "rotating file" in allocation.describe()


class TestSafety:
    @pytest.mark.parametrize(
        "name", ["sdot", "saxpy", "lfk5_tridiag", "iir_filter2", "stencil5"]
    )
    def test_verifier_accepts_real_kernels(self, name):
        machine = cydra5()
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        allocation = allocate_rotating(lowered.graph, result.schedule)
        problems = verify_rotating_allocation(
            lowered.graph, result.schedule, allocation
        )
        assert problems == []

    def test_verifier_rejects_shrunk_width(self):
        machine = cydra5()
        lowered = compile_loop_full(
            "for i in n:\n    s = s + x[i] * y[i]\n", machine
        )
        result = modulo_schedule(lowered.graph, machine)
        allocation = allocate_rotating(lowered.graph, result.schedule)
        lifetimes = compute_lifetimes(lowered.graph, result.schedule)
        victim = max(
            lifetimes, key=lambda op: lifetimes[op].length
        )
        allocation.widths[victim] = max(
            0, lifetimes[victim].length // result.ii - 1
        )
        problems = verify_rotating_allocation(
            lowered.graph, result.schedule, allocation
        )
        assert problems
