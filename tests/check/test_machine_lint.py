"""Satellite: the machine-description linter over every shipped machine.

The shipped machines must be clean (or explicitly waived with an inline
``# lint: waive(CODE)`` comment in their defining module); the waiver
mechanism itself is exercised against a synthetic machine whose factory
carries the comment.
"""

import inspect

import pytest

from repro.check import lint_machine, waivers_in_source
from repro.machine import (
    bus_conflict_machine,
    cydra5,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)

FACTORIES = {
    "cydra5": cydra5,
    "single_alu": single_alu_machine,
    "two_alu": two_alu_machine,
    "superscalar": superscalar_machine,
    "bus_conflict": bus_conflict_machine,
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_shipped_machine_clean_or_waived(name):
    factory = FACTORIES[name]
    machine = factory()
    waivers = waivers_in_source(inspect.getmodule(factory))
    diags = lint_machine(machine, waivers=waivers)
    unwaived = [d for d in diags if d.code != "LINT000"]
    assert not unwaived, diags.render()


def _waived_machine():  # lint: waive(MACH001)
    """A machine with a deliberately dead resource, waived inline."""
    from repro.machine.machine import MachineDescription
    from repro.machine.opcodes import Opcode
    from repro.machine.resources import ReservationTable

    return MachineDescription(
        "waived_dead_resource",
        ("alu", "spare_bus"),
        [Opcode("add", 1, [ReservationTable("alu", [("alu", 0)])])],
    )


class TestWaiverMechanism:
    def test_finding_fires_without_waiver(self):
        diags = lint_machine(_waived_machine())
        assert "MACH001" in diags.codes()

    def test_inline_comment_waives_the_finding(self):
        machine = _waived_machine()
        waivers = waivers_in_source(_waived_machine)
        assert waivers == frozenset({"MACH001"})
        diags = lint_machine(machine, waivers=waivers)
        assert "MACH001" not in diags.codes()
        assert "LINT000" in diags.codes()
        assert diags.ok  # waived findings are informational

    def test_waiver_does_not_hide_other_codes(self):
        from repro.machine.machine import MachineDescription
        from repro.machine.opcodes import Opcode
        from repro.machine.resources import ReservationTable

        machine = MachineDescription(
            "waived_but_late",
            ("alu", "spare_bus"),
            [Opcode("add", 1, [ReservationTable("alu", [("alu", 0), ("alu", 1)])])],
        )
        diags = lint_machine(machine, waivers={"MACH001"})
        assert "MACH003" in diags.codes()
