"""The diagnostics framework: codes, severities, waivers, renderers."""

import json

import pytest

from repro.check import (
    CODES,
    Diagnostics,
    Severity,
    apply_waivers,
    parse_waivers,
    render_human,
    waivers_in_source,
)


class TestRegistry:
    def test_every_code_has_severity_and_summary(self):
        for code, (severity, summary) in CODES.items():
            assert isinstance(severity, Severity)
            assert summary

    def test_code_families_present(self):
        families = {code.rstrip("0123456789") for code in CODES}
        assert families == {"SCHED", "CODE", "GRAPH", "MACH", "MIND", "SIM",
                            "LINT"}

    def test_unregistered_code_rejected(self):
        diags = Diagnostics()
        with pytest.raises(ValueError):
            diags.add("NOPE999", "made up")


class TestDiagnostics:
    def test_add_uses_default_severity(self):
        diags = Diagnostics()
        diags.add("SCHED005", "edge broken", unit="loop 'x'")
        (finding,) = list(diags)
        assert finding.severity is Severity.ERROR
        assert not diags.ok
        assert diags.codes() == ["SCHED005"]

    def test_severity_override_and_counts(self):
        diags = Diagnostics()
        diags.add("GRAPH002", "off-model", severity=Severity.ERROR)
        diags.add("MACH001", "dead resource")
        assert len(diags.errors) == 1
        assert len(diags.warnings) == 1
        assert not diags.ok  # warnings alone would be ok

    def test_warnings_do_not_fail(self):
        diags = Diagnostics()
        diags.add("MACH001", "dead resource")
        assert diags.ok

    def test_render_groups_errors_first(self):
        diags = Diagnostics()
        diags.add("MACH001", "a warning")
        diags.add("SCHED005", "an error")
        text = render_human(diags)
        assert text.index("SCHED005") < text.index("MACH001")
        assert "1 error" in text

    def test_json_document_round_trips(self):
        diags = Diagnostics()
        diags.add("SCHED009", "conflict", unit="loop 'x'", obj="resource alu",
                  slot=3)
        document = json.loads(diags.to_json(run={"command": "test"}))
        assert document["format"] == "repro.check.v1"
        assert document["counts"]["error"] == 1
        (entry,) = document["diagnostics"]
        assert entry["code"] == "SCHED009"
        assert entry["detail"]["slot"] == 3
        assert document["run"] == {"command": "test"}


class TestWaivers:
    def test_parse_waivers(self):
        text = "x = 1  # lint: waive(MACH001)\ny = 2  # lint: waive(MACH002, MACH003)\n"
        assert parse_waivers(text) == frozenset(
            {"MACH001", "MACH002", "MACH003"}
        )

    def test_waivers_in_source_of_function(self):
        def machine_factory():
            resources = ("alu", "spare")  # lint: waive(MACH001)
            return resources

        assert waivers_in_source(machine_factory) == frozenset({"MACH001"})

    def test_apply_waivers_downgrades_to_lint000(self):
        diags = Diagnostics()
        diags.add("MACH001", "dead resource", unit="machine 'm'")
        diags.add("MACH003", "late hold", unit="machine 'm'")
        waived = apply_waivers(diags, {"MACH001"})
        codes = waived.codes()
        assert "LINT000" in codes and "MACH003" in codes
        assert "MACH001" not in codes
        lint = next(d for d in waived if d.code == "LINT000")
        assert lint.severity is Severity.INFO
        assert lint.detail["waived_code"] == "MACH001"
