"""Tests of the static verification and lint subsystem."""
