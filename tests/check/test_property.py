"""Hypothesis property: the static validator agrees with the simulator.

For random perturbations of a legal schedule, acceptance by the static
validator must imply the pipelined execution matches the sequential
oracle — and, contrapositively, any perturbation the simulator rejects
(a dynamic dependence violation or a state mismatch) must already have
been rejected statically.  The validator may be *stricter* (it also
checks resource conflicts the simulator cannot observe), so the
implication is one-way by construction; the reverse direction is pinned
by targeted flow-edge violations that both must reject.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.check import check_schedule
from repro.check.mutate import DOT_SOURCE, RECURRENCE_SOURCE, _clone
from repro.core import modulo_schedule
from repro.ir.edges import DependenceKind
from repro.loopir import compile_loop_full
from repro.machine import single_alu_machine, two_alu_machine
from repro.simulator import check_equivalence

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FIXTURES = {}


def _fixture(source_name):
    if source_name not in _FIXTURES:
        source = {"dot": DOT_SOURCE, "recurrence": RECURRENCE_SOURCE}[
            source_name
        ]
        machine = {"dot": single_alu_machine, "recurrence": two_alu_machine}[
            source_name
        ]()
        lowered = compile_loop_full(source, machine)
        result = modulo_schedule(lowered.graph, machine)
        _FIXTURES[source_name] = (lowered, machine, result.schedule)
    return _FIXTURES[source_name]


@given(
    source_name=st.sampled_from(["dot", "recurrence"]),
    seed=st.integers(min_value=0, max_value=2**16),
    deltas=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=-4, max_value=6),
        ),
        min_size=1,
        max_size=3,
    ),
)
@_SETTINGS
def test_validator_acceptance_implies_simulator_acceptance(
    source_name, seed, deltas
):
    lowered, machine, schedule = _fixture(source_name)
    perturbed = _clone(schedule)
    real = [
        op.index
        for op in perturbed.graph.real_operations()
    ]
    for pick, delta in deltas:
        op = real[pick % len(real)]
        perturbed.times[op] = max(0, perturbed.times[op] + delta)
    diags = check_schedule(lowered.graph, machine, perturbed)
    report = check_equivalence(lowered, perturbed, n=6, seed=seed)
    if diags.ok:
        assert report.ok, (
            "validator accepted a schedule the simulator rejects:\n"
            + report.describe()
        )
    if not report.ok:
        # Contrapositive: anything observably wrong at run time must
        # already be a static finding.
        assert not diags.ok


@given(seed=st.integers(min_value=0, max_value=2**16))
@_SETTINGS
def test_flow_violations_rejected_by_both(seed):
    """Pulling a consumer inside its producer's delay fails both checkers."""
    lowered, machine, schedule = _fixture("dot")
    graph = lowered.graph
    edge = next(
        e
        for e in graph.edges
        if e.kind is DependenceKind.FLOW
        and e.distance == 0
        and e.delay >= 2
        and not graph.operation(e.pred).is_pseudo
        and not graph.operation(e.succ).is_pseudo
    )
    bad = _clone(schedule)
    bad.times[edge.succ] = bad.times[edge.pred]
    diags = check_schedule(graph, machine, bad)
    assert "SCHED005" in diags.codes()
    report = check_equivalence(lowered, bad, n=6, seed=seed)
    assert not report.ok
    assert "SIM002" in report.diagnostics().codes()
