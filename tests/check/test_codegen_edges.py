"""Satellite: codegen edge cases the validator and simulator must agree on.

Three corners that historically break modulo-scheduling codegen:

* **zero-trip loops** — the pipelined form must drain to exactly the
  sequential state when the loop body never runs (and when it runs fewer
  times than the kernel has stages);
* **lifetimes longer than the II** — modulo variable expansion must
  unroll far enough that no copy overwrites a value still live;
* **omega > 1 recurrences** — cross-iteration uses reaching back more
  than one iteration (``y[i-2]``) exercise the ``t(q) >= t(p) + delay -
  dist*II`` inequality with ``dist > 1`` and the renaming distance math.
"""

import math

import pytest

from repro.check import check_schedule
from repro.check.codegen import check_codegen
from repro.check.mutate import _clone
from repro.codegen import compute_lifetimes, modulo_variable_expansion
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine
from repro.simulator import check_equivalence

DOT = "for i in n:\n    s = s + x[i] * y[i]\n"
IIR2 = "for i in n:\n    y[i] = a0 * x[i] + b1 * y[i-1] + b2 * y[i-2]\n"


def _scheduled(source, machine):
    lowered = compile_loop_full(source, machine)
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    return lowered, result


class TestZeroTrip:
    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_short_trip_counts_match_sequential(self, n):
        """Trip counts at or below the stage count drain correctly."""
        lowered, result = _scheduled(DOT, cydra5())
        report = check_equivalence(lowered, result.schedule, n=n)
        assert report.ok, report.describe()
        assert report.n == n

    def test_zero_trip_schedule_still_validates(self):
        lowered, result = _scheduled(DOT, cydra5())
        diags = check_schedule(
            lowered.graph, cydra5(), result.schedule, codegen=True
        )
        assert diags.ok, diags.render()


class TestLongLifetimes:
    def test_lifetime_exceeding_ii_forces_unroll(self):
        """Cydra-5 latencies stretch lifetimes past the II: MVE must
        unroll, and the unroll the generator picks is exactly the one
        the validator re-derives from the lifetimes."""
        lowered, result = _scheduled(DOT, cydra5())
        lifetimes = compute_lifetimes(lowered.graph, result.schedule)
        longest = max(v.length for v in lifetimes.values())
        assert longest > result.ii, "fixture no longer stresses MVE"

        kernel = modulo_variable_expansion(lowered.graph, result.schedule)
        assert kernel.unroll == max(
            math.ceil(v.length / result.ii) for v in lifetimes.values()
        )
        assert kernel.unroll >= 2

        diags = check_codegen(lowered.graph, result.schedule, kernel=kernel)
        assert diags.ok, diags.render()

    def test_under_unrolled_kernel_is_rejected(self):
        """An unroll one short of the longest lifetime trips CODE001."""
        from repro.codegen.mve import MVEKernel

        lowered, result = _scheduled(DOT, cydra5())
        kernel = modulo_variable_expansion(lowered.graph, result.schedule)
        assert kernel.unroll >= 2
        short = MVEKernel(
            ii=kernel.ii,
            unroll=kernel.unroll - 1,
            rows=kernel.rows[: (kernel.unroll - 1) * kernel.ii],
        )
        diags = check_codegen(lowered.graph, result.schedule, kernel=short)
        assert "CODE001" in diags.codes()


class TestOmegaGreaterThanOne:
    def test_iir2_has_distance_two_flow(self):
        lowered, _ = _scheduled(IIR2, cydra5())
        distances = {
            e.distance for e in lowered.graph.edges if e.distance > 1
        }
        assert distances, "iir2 fixture lost its omega>1 dependence"

    def test_schedule_and_codegen_validate(self):
        lowered, result = _scheduled(IIR2, cydra5())
        diags = check_schedule(
            lowered.graph, cydra5(), result.schedule, codegen=True
        )
        assert diags.ok, diags.render()

    def test_pipelined_execution_matches_oracle(self):
        lowered, result = _scheduled(IIR2, cydra5())
        report = check_equivalence(lowered, result.schedule, n=24)
        assert report.ok, report.describe()

    def test_cross_iteration_slack_is_not_free(self):
        """dist*II slack is real: remove it and SCHED005 fires with the
        distance spelled out in the finding."""
        lowered, result = _scheduled(IIR2, cydra5())
        graph = lowered.graph
        edge = next(
            e
            for e in graph.edges
            if e.distance >= 2
            and not graph.operation(e.pred).is_pseudo
            and not graph.operation(e.succ).is_pseudo
        )
        bad = _clone(result.schedule)
        # Violate t(q) >= t(p) + delay - dist*II by one cycle.
        bad.times[edge.succ] = (
            bad.times[edge.pred]
            + edge.delay
            - edge.distance * result.ii
            - 1
        )
        diags = check_schedule(graph, cydra5(), bad)
        findings = [d for d in diags if d.code == "SCHED005"]
        assert findings
        assert any(
            d.detail.get("distance") == edge.distance for d in findings
        )

    def test_single_alu_omega2_also_clean(self):
        machine = single_alu_machine()
        lowered, result = _scheduled(IIR2, machine)
        diags = check_schedule(
            lowered.graph, machine, result.schedule, codegen=True
        )
        assert diags.ok, diags.render()
        report = check_equivalence(lowered, result.schedule, n=16)
        assert report.ok, report.describe()
