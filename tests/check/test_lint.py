"""Lint passes: registry, graph/mindist cleanliness on production input."""

from repro.check import lint_graph, lint_mindist, registered_passes
from repro.check.lint import check_mindist_matrix
from repro.core.mii import compute_mii
from repro.core.mindist import compute_mindist
from repro.loopir import compile_loop_full
from repro.machine import single_alu_machine

DOT = "for i in n:\n    s = s + x[i] * y[i]\n"


class TestRegistry:
    def test_targets_covered(self):
        targets = {p.target for p in registered_passes()}
        assert targets == {"graph", "machine", "mindist"}

    def test_pass_names_unique_and_described(self):
        passes = registered_passes()
        names = [p.name for p in passes]
        assert len(set(names)) == len(names)
        for lint in passes:
            assert lint.codes
            assert lint.describe().startswith(lint.name)

    def test_target_filter(self):
        machine_passes = registered_passes("machine")
        assert machine_passes
        assert all(p.target == "machine" for p in machine_passes)


class TestFrontEndGraphsAreClean:
    def test_lint_graph_clean(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        diags = lint_graph(lowered.graph)
        assert diags.ok, diags.render()
        assert len(diags) == 0

    def test_lint_mindist_clean(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        diags = lint_mindist(lowered.graph, machine)
        assert diags.ok, diags.render()


class TestMindistMatrix:
    def test_production_matrix_passes(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        mii = compute_mii(lowered.graph, machine, exact=True)
        for ii in (mii.rec_mii, mii.rec_mii + 1):
            dist, _ = compute_mindist(lowered.graph, ii)
            diags = check_mindist_matrix(
                dist, ii, mii.rec_mii, rec_mii_exact=mii.rec_mii_exact
            )
            assert diags.ok, diags.render()

    def test_infeasible_ii_has_positive_diagonal(self):
        """Below RecMII the diagonal goes positive — and MIND002 agrees."""
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        mii = compute_mii(lowered.graph, machine, exact=True)
        if mii.rec_mii < 2:
            return  # no infeasible II to probe
        ii = mii.rec_mii - 1
        dist, _ = compute_mindist(lowered.graph, ii)
        diags = check_mindist_matrix(
            dist, ii, mii.rec_mii, rec_mii_exact=mii.rec_mii_exact
        )
        assert diags.ok, diags.render()
