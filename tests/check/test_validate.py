"""The independent schedule validator (acceptance side).

Rejection coverage — one corrupted fixture per code — lives in
``test_mutants.py``; this file pins the acceptance behavior: production
schedules (modulo, list-baseline, all machines) pass, and the
``Schedule.modulo`` flag selects the right occupancy grid.
"""

import pytest

from repro.baselines import list_schedule
from repro.check import check_schedule
from repro.core import modulo_schedule
from repro.core.validate import assert_valid_schedule, validate_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5, single_alu_machine, two_alu_machine

DOT = "for i in n:\n    s = s + x[i] * y[i]\n"


@pytest.fixture(
    params=[single_alu_machine, two_alu_machine, cydra5],
    ids=["single_alu", "two_alu", "cydra5"],
)
def machine(request):
    return request.param()


class TestAcceptance:
    def test_modulo_schedule_accepted(self, machine):
        lowered = compile_loop_full(DOT, machine)
        result = modulo_schedule(lowered.graph, machine)
        diags = check_schedule(lowered.graph, machine, result.schedule)
        assert diags.ok, diags.render()

    def test_codegen_cross_checks_accepted(self, machine):
        lowered = compile_loop_full(DOT, machine)
        result = modulo_schedule(lowered.graph, machine)
        diags = check_schedule(
            lowered.graph, machine, result.schedule, codegen=True
        )
        assert diags.ok, diags.render()
        assert len(diags) == 0

    def test_list_schedule_accepted_on_linear_grid(self, machine):
        """The list baseline must not be folded mod II (false wrap conflicts)."""
        lowered = compile_loop_full(DOT, machine)
        schedule = list_schedule(lowered.graph, machine)
        assert schedule.modulo is False
        diags = check_schedule(lowered.graph, machine, schedule)
        assert diags.ok, diags.render()

    def test_list_schedule_would_fail_as_modulo(self):
        """Folding a linear single-ALU schedule at II=SL creates conflicts
        unless the schedule is sparse; the flag is what protects it."""
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        schedule = list_schedule(lowered.graph, machine)
        # Sanity: the linear grid books each cycle at most once.
        diags = check_schedule(lowered.graph, machine, schedule)
        assert "SCHED010" not in diags.codes()


class TestLegacyStringApi:
    def test_validate_schedule_returns_messages(self):
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        result = modulo_schedule(lowered.graph, machine)
        assert validate_schedule(lowered.graph, machine, result.schedule) == []
        bad_times = dict(result.schedule.times)
        bad_times[lowered.graph.START] = 3
        from repro.core.schedule import Schedule

        bad = Schedule(
            lowered.graph, result.schedule.ii, bad_times,
            dict(result.schedule.alternatives),
        )
        problems = validate_schedule(lowered.graph, machine, bad)
        assert any("START" in p for p in problems)
        with pytest.raises(AssertionError):
            assert_valid_schedule(lowered.graph, machine, bad)

    def test_diagnostics_carry_edge_identity(self):
        """SCHED005 names the edge: op ids, kind, distance, delay."""
        machine = single_alu_machine()
        lowered = compile_loop_full(DOT, machine)
        result = modulo_schedule(lowered.graph, machine)
        from repro.check.mutate import mutant

        diags = mutant("squeezed-edge").run()
        finding = next(d for d in diags if d.code == "SCHED005")
        for key in ("pred", "succ", "kind", "distance", "delay", "gap",
                    "required"):
            assert key in finding.detail
        assert result is not None  # the clean baseline still schedules
