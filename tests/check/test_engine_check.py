"""Engine strict mode (``check=True``): validate-before-cache semantics."""

import json

from repro.analysis.engine import EvaluationEngine, StaticCheckError
from repro.check import Diagnostics
from repro.machine import single_alu_machine
from repro.workloads import build_corpus


def _small_corpus(machine, n=4):
    corpus = build_corpus(machine, n_synthetic=n, seed=7)
    return corpus[: n + 2]


class TestStaticCheckError:
    def test_carries_diagnostics_document(self):
        diags = Diagnostics()
        diags.add("SCHED005", "edge broken", unit="loop 'x'")
        error = StaticCheckError(diags)
        assert "SCHED005" in str(error)
        document = error.detail()
        assert document["format"] == "repro.check.v1"
        assert document["counts"]["error"] == 1


class TestStrictRun:
    def test_clean_corpus_passes_with_check(self, tmp_path):
        machine = single_alu_machine()
        corpus = _small_corpus(machine)
        engine = EvaluationEngine(
            machine, cache_dir=tmp_path / "cache", check=True
        )
        result = engine.evaluate(corpus)
        assert result.ok, [f.describe() for f in result.failures]
        assert len(result.evaluations) == len(corpus)

    def test_check_phase_metrics_tick(self, tmp_path):
        from repro.obs import ObsContext

        machine = single_alu_machine()
        corpus = _small_corpus(machine)
        obs = ObsContext()
        engine = EvaluationEngine(machine, use_cache=False, check=True, obs=obs)
        result = engine.evaluate(corpus)
        assert result.ok
        counters = obs.to_dict()["metrics"]["counters"]
        assert counters["check.schedules"] == len(corpus)
        assert counters.get("check.rejected", 0) == 0

    def test_no_check_metrics_on_clean_run(self):
        """Metric identity: check.* counters exist only in strict mode."""
        from repro.obs import ObsContext

        machine = single_alu_machine()
        corpus = _small_corpus(machine, n=2)
        obs = ObsContext()
        engine = EvaluationEngine(machine, use_cache=False, obs=obs)
        engine.evaluate(corpus)
        counters = obs.to_dict()["metrics"]["counters"]
        assert not any(name.startswith("check.") for name in counters)

    def test_cache_shared_between_modes(self, tmp_path):
        """The cache key excludes the flag: strict runs reuse warm entries."""
        machine = single_alu_machine()
        corpus = _small_corpus(machine)
        cache = tmp_path / "cache"
        warm = EvaluationEngine(machine, cache_dir=cache)
        warm.evaluate(corpus)
        strict = EvaluationEngine(machine, cache_dir=cache, check=True)
        result = strict.evaluate(corpus)
        assert result.ok
        assert result.hits == len(corpus)
        assert result.misses == 0

    def test_tampered_cache_entry_detected_and_reevaluated(self, tmp_path):
        """Strict mode re-validates cache hits; a poisoned entry is rebuilt."""
        machine = single_alu_machine()
        corpus = _small_corpus(machine)
        cache = tmp_path / "cache"
        warm = EvaluationEngine(machine, cache_dir=cache)
        warm.evaluate(corpus)

        # Poison one entry: push a real operation to a negative cycle.  The
        # document still parses and carries the right format, so only the
        # strict re-validation can notice.
        poisoned = None
        for path in sorted(cache.glob("*/*.json")):
            data = json.loads(path.read_text())
            times = data.get("schedule", {}).get("times")
            if not times:
                continue
            victim = next(op for op in times if op not in ("0",))
            times[victim] = -50
            path.write_text(json.dumps(data))
            poisoned = path
            break
        assert poisoned is not None, "no cache entry found to poison"

        # A lenient run trusts the poisoned entry verbatim...
        lenient = EvaluationEngine(machine, cache_dir=cache)
        assert lenient.evaluate(corpus).cache_corrupt == 0

        # ...a strict run rejects it, deletes it, and re-evaluates.
        strict = EvaluationEngine(machine, cache_dir=cache, check=True)
        result = strict.evaluate(corpus)
        assert result.ok, [f.describe() for f in result.failures]
        assert result.cache_corrupt == 1
        assert len(result.evaluations) == len(corpus)

    def test_degraded_schedules_are_checked_and_pass(self):
        """The list-scheduler rung must satisfy the validator too."""
        machine = single_alu_machine()
        corpus = _small_corpus(machine)
        engine = EvaluationEngine(
            machine,
            use_cache=False,
            check=True,
            budget_ratio=1.0,
            loop_timeout=0.000001,  # force the ladder on every loop
        )
        result = engine.evaluate(corpus)
        assert result.ok, [f.describe() for f in result.failures]
