"""Negative-path regression: every diagnostic code fires where expected.

Each mutant in :mod:`repro.check.mutate` corrupts one production artifact
in one targeted way; the suite asserts (a) the registry covers every code
that has a checker, (b) each mutant trips exactly its code, and (c) the
uncorrupted base fixtures are clean — so it is the mutation, not the
fixture, that the checker is catching.
"""

import pytest

from repro.check import CODES, check_schedule
from repro.check.diagnostics import Severity
from repro.check.mutate import (
    DOT_SOURCE,
    MUTANTS,
    MUTANTS_BY_CODE,
    _codegen_artifacts,
    _machine,
    _scheduled,
    mutant,
)

#: LINT000 is the waiver marker, not a finding a corruption can provoke;
#: it is covered by the waiver-mechanism tests instead.
UNMUTATED = {"LINT000"}


def test_every_code_has_a_mutant():
    missing = set(CODES) - set(MUTANTS_BY_CODE) - UNMUTATED
    assert not missing, f"codes without a negative-path mutant: {sorted(missing)}"


def test_mutant_names_unique():
    names = [m.name for m in MUTANTS]
    assert len(set(names)) == len(names)


@pytest.mark.parametrize("m", MUTANTS, ids=[m.name for m in MUTANTS])
def test_mutant_fires_its_code(m):
    diags = m.run()
    assert m.code in diags.codes(), (
        f"mutant {m.name!r} ({m.description}) did not trip {m.code}: "
        f"{diags.render()}"
    )
    # Codes whose default severity is ERROR must also fail the unit;
    # advisory (WARNING) codes leave ``ok`` true by design.
    default_severity, _ = CODES[m.code]
    if default_severity is Severity.ERROR:
        assert not diags.ok


def test_base_fixtures_are_clean():
    """The uncorrupted artifacts every mutant starts from all validate."""
    for machine_name in ("single_alu", "cydra5"):
        lowered, schedule = _scheduled(machine_name, DOT_SOURCE)
        diags = check_schedule(
            lowered.graph, _machine(machine_name), schedule, codegen=True
        )
        assert diags.ok, diags.render()
    from repro.check.codegen import check_codegen

    graph, schedule, kernel, allocation, code = _codegen_artifacts()
    diags = check_codegen(
        graph, schedule, kernel=kernel, allocation=allocation, code=code
    )
    assert diags.ok, diags.render()


def test_mutant_lookup():
    assert mutant("zero-ii") is MUTANTS[0]
    assert mutant("not-a-mutant") is None


def test_sim_mutants_report_the_offender():
    """SIM002 names the ops, the cycle, and the violated edge."""
    diags = mutant("early-consumer").run()
    (finding,) = [d for d in diags if d.code == "SIM002"]
    message = finding.message
    assert "cycle" in message
    assert "distance=" in message and "delay=" in message
    assert "op " in message
