"""Table 4: empirical computational complexity of the sub-activities.

The paper fits the innermost-loop execution counts of each sub-activity
against N (operations per loop) and concludes: edges E ~ 3.0N; SCC
identification, ResMII, MII, HeightR and Estart all empirically linear;
FindTimeSlot quadratic (0.0587 N^2 + ...); hence iterative modulo
scheduling is empirically O(N^2) overall.  This bench reproduces the fits
(slopes differ — different machine and corpus — but the orders must hold,
which the log-log power-fit exponents assert).
"""

from repro.analysis import fit_linear, fit_power, fit_quadratic, render_table
from repro.core import Counters
from repro.core.heights import height_r


def test_table4_complexity(machine, corpus, evaluations, emit, benchmark):
    n = [e.n_ops for e in evaluations]
    measurements = {
        "Edges (E)": [e.n_edges for e in evaluations],
        "SCC identification": [e.counters.scc_steps for e in evaluations],
        "ResMII calculation": [e.counters.resmii_steps for e in evaluations],
        "MII calculation (MinDist inner)": [
            e.counters.mindist_inner for e in evaluations
        ],
        "HeightR calculation": [e.counters.heightr_inner for e in evaluations],
        "Estart calculation": [e.counters.estart_preds for e in evaluations],
        "FindTimeSlot": [e.counters.findtimeslot_iters for e in evaluations],
    }
    rows = []
    exponents = {}
    for name, values in measurements.items():
        linear = fit_linear(n, values)
        power = fit_power(n, values)
        exponents[name] = power.exponent
        rows.append(
            [
                name,
                f"{linear.slope:.4f}N",
                f"{linear.residual_std:.1f}",
                f"N^{power.exponent:.2f}",
            ]
        )
    quad = fit_quadratic(n, measurements["FindTimeSlot"])
    rows.append(
        [
            "FindTimeSlot (quadratic fit)",
            f"{quad.a:.4f}N^2 + {quad.b:.3f}N",
            f"{quad.residual_std:.1f}",
            "",
        ]
    )
    text = render_table(
        ["Activity", "LMS fit", "resid std", "power fit"],
        rows,
        title=f"Table 4 (empirical complexity) over {len(evaluations)} loops:",
    )
    emit("table4_complexity", text)

    # Order assertions: linear activities stay well below quadratic growth;
    # MinDist is super-linear only through SCC sizes (weakly correlated
    # with N, as the paper notes), so it gets a looser band.
    for name in ("Edges (E)", "SCC identification", "ResMII calculation"):
        assert exponents[name] <= 1.3, (name, exponents[name])
    # HeightR/Estart pick up a mild superlinearity through displacement
    # (rescheduled operations re-scan their predecessors); they must stay
    # clearly below FindTimeSlot's quadratic.
    for name in ("HeightR calculation", "Estart calculation"):
        assert exponents[name] <= 1.8, (name, exponents[name])
    # FindTimeSlot is the quadratic one; its exponent must clearly exceed
    # every other activity's.
    assert exponents["FindTimeSlot"] >= 1.9
    assert all(
        exponents["FindTimeSlot"] > exponents[name] + 0.3
        for name in exponents
        if name != "FindTimeSlot"
    )
    assert quad.a > 0

    benchmark(height_r, corpus[0].graph, evaluations[0].mii, Counters())
