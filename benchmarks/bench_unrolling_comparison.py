"""Section 4.3's comparison with unroll-before-scheduling.

The paper argues that an unrolling scheme must come within ~2.8% of the
execution-time bound *without* replicating more than 2.18x of the loop
body to be competitive with iterative modulo scheduling — and that real
unrollers replicate many tens of copies.  This bench measures, per unroll
factor, the throughput (cycles per original iteration) of
unroll-then-list-schedule against the modulo scheduler's II, plus the
code growth both pay (the modulo scheduler's growth is its scheduling
inefficiency: ~1.59 copies-equivalent at BudgetRatio 2, per the paper's
accounting).
"""

import statistics

from repro.analysis import render_table
from repro.baselines import unroll_and_schedule

FACTORS = [1, 2, 4, 8, 16]
#: Number of corpus loops to unroll (16x replication of 1327 loops is
#: needlessly slow; a prefix keeps all hand-written kernels in the mix).
SAMPLE = 150


def test_unrolling_comparison(machine, corpus, evaluations, emit, benchmark):
    sample = evaluations[:SAMPLE]
    rows = []
    ratio_by_factor = {}
    for factor in FACTORS:
        ratios = []
        for evaluation in sample:
            unrolled = unroll_and_schedule(
                evaluation.loop.graph, machine, factor
            )
            ratios.append(unrolled.effective_ii / evaluation.ii)
        mean_ratio = statistics.fmean(ratios)
        ratio_by_factor[factor] = mean_ratio
        rows.append(
            [
                str(factor),
                f"{mean_ratio:.2f}",
                f"{statistics.median(ratios):.2f}",
                f"{factor:.2f}x",
            ]
        )
    text = render_table(
        [
            "unroll factor",
            "mean cycles/iter vs modulo II",
            "median",
            "code growth",
        ],
        rows,
        title=(
            f"Unroll-before-scheduling vs iterative modulo scheduling "
            f"({len(sample)} loops):"
        ),
    )
    emit("unrolling_comparison", text)

    # Shape: unrolling monotonically approaches modulo throughput but is
    # still behind at the paper's 2.18x code-growth budget (factor 2).
    assert ratio_by_factor[1] > ratio_by_factor[16]
    assert ratio_by_factor[2] > 1.05
    assert ratio_by_factor[16] >= 1.0 - 1e-9

    benchmark(unroll_and_schedule, sample[0].loop.graph, machine, 4)
