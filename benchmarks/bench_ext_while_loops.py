"""Extension: WHILE-loops pipelined via speculation ([36], [41]).

The paper's conclusion claims modulo scheduling handles "DO-loops,
WHILE-loops and loops with early exits" given predication.  Our front end
implements the WHILE scheme: the exit condition becomes an *alive*
predicate recurrence (``alive[k] = alive[k-1] and cond[k]``), iterations
beyond the exit execute speculatively, and alive-guarded stores keep them
from committing.  This bench measures what that costs: the II of each
kernel in DO form versus its WHILE form (same body plus a data-dependent
exit), and the exactness of early-exit behavior.
"""

from repro.analysis import render_table
from repro.core import compute_mii, modulo_schedule
from repro.loopir import compile_loop_full
from repro.simulator import check_equivalence

PAIRS = {
    "accumulate": (
        "for i in n:\n    s = s + x[i]\n    y[i] = s\n",
        "for i in n while s < limit:\n    s = s + x[i]\n    y[i] = s\n",
    ),
    "scale": (
        "for i in n:\n    y[i] = g * x[i]\n",
        "for i in n while x[i] > -9.0:\n    y[i] = g * x[i]\n",
    ),
    "search_update": (
        "for i in n:\n    best = max(best, x[i])\n    t[i] = best\n",
        "for i in n while best < target:\n"
        "    best = max(best, x[i])\n"
        "    t[i] = best\n",
    ),
}


def test_while_loop_overhead(machine, emit, benchmark):
    rows = []
    for name, (do_source, while_source) in PAIRS.items():
        do_loop = compile_loop_full(do_source, machine, name=f"{name}_do")
        while_loop = compile_loop_full(
            while_source, machine, name=f"{name}_while"
        )
        do_result = modulo_schedule(do_loop.graph, machine, budget_ratio=6.0)
        while_result = modulo_schedule(
            while_loop.graph, machine, budget_ratio=6.0
        )
        for seed in (0, 1):
            report = check_equivalence(
                while_loop, while_result.schedule, n=29, seed=seed
            )
            assert report.ok, report.describe()
        rows.append(
            [
                name,
                str(do_loop.graph.n_real_ops),
                str(while_loop.graph.n_real_ops),
                str(do_result.ii),
                str(while_result.ii),
            ]
        )
        # The WHILE form may cost II (exit recurrence + extra predicate
        # work on the memory ports) but must still pipeline: far below
        # the sequential schedule length.
        assert while_result.ii < while_result.schedule_length
        assert while_result.ii >= do_result.ii

    text = render_table(
        ["kernel", "ops (DO)", "ops (WHILE)", "II (DO)", "II (WHILE)"],
        rows,
        title="WHILE-loop speculation overhead (same body, added exit):",
    )
    emit("ext_while_loops", text)

    lowered = compile_loop_full(
        PAIRS["accumulate"][1], machine, name="accumulate_while"
    )
    benchmark(modulo_schedule, lowered.graph, machine, 6.0)
