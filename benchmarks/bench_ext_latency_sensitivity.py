"""Extension: how load latency shapes pipelined loops.

The paper fixed the load latency at 20 cycles (Section 4.1) — a machine
design choice with consequences modulo scheduling is uniquely placed to
expose.  Sweeping the Cydra 5's load latency shows the classic trade:

* *throughput* (II) is almost flat — software pipelining hides latency,
  which is its whole point — except where a long-latency load sits on a
  recurrence circuit;
* what latency actually costs is *pipeline depth* (schedule length and
  stages) and *registers* (MaxLive grows with the number of in-flight
  loads).
"""

import statistics

from repro.analysis import render_table
from repro.codegen import register_pressure
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import cydra5_variant
from repro.workloads import KERNELS

LATENCIES = [1, 4, 10, 20, 30]
#: Kernels without loads on recurrences (II should stay flat) plus two
#: with memory recurrences (II must track the latency).
FLAT = ["saxpy", "sdot", "stencil5", "lfk1_hydro", "polyval4"]
RECURRENT = ["lfk5_tridiag", "lfk11_first_sum"]


def _measure(latency):
    machine = cydra5_variant(latency)
    flat_ii, flat_sl, flat_live = [], [], []
    rec_ii = []
    for name in FLAT + RECURRENT:
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        if name in FLAT:
            flat_ii.append(result.ii)
            flat_sl.append(result.schedule_length)
            flat_live.append(
                register_pressure(lowered.graph, result.schedule).max_live
            )
        else:
            rec_ii.append(result.ii)
    return {
        "flat_ii": statistics.fmean(flat_ii),
        "flat_sl": statistics.fmean(flat_sl),
        "flat_live": statistics.fmean(flat_live),
        "rec_ii": statistics.fmean(rec_ii),
    }


def test_latency_sensitivity(emit, benchmark):
    rows = []
    by_latency = {}
    for latency in LATENCIES:
        m = _measure(latency)
        by_latency[latency] = m
        rows.append(
            [
                str(latency),
                f"{m['flat_ii']:.1f}",
                f"{m['flat_sl']:.1f}",
                f"{m['flat_live']:.1f}",
                f"{m['rec_ii']:.1f}",
            ]
        )
    text = render_table(
        [
            "load latency",
            "II (latency-tolerant)",
            "SL",
            "MaxLive",
            "II (memory recurrence)",
        ],
        rows,
        title=(
            f"Load-latency sensitivity ({len(FLAT)} latency-tolerant + "
            f"{len(RECURRENT)} recurrent kernels):"
        ),
    )
    emit("ext_latency_sensitivity", text)

    low, high = by_latency[LATENCIES[0]], by_latency[LATENCIES[-1]]
    # Pipelining hides latency: II of latency-tolerant kernels grows far
    # slower than the 30x latency increase...
    assert high["flat_ii"] <= low["flat_ii"] * 1.6
    # ...while pipeline depth and register cost pay for it...
    assert high["flat_sl"] >= low["flat_sl"] + 20
    assert high["flat_live"] >= 2 * low["flat_live"]
    # ...and a load on a recurrence circuit passes latency straight
    # through to the II.
    assert high["rec_ii"] >= low["rec_ii"] + 25

    benchmark(_measure, 10)
