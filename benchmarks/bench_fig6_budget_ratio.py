"""Figure 6: execution-time dilation and scheduling cost vs BudgetRatio.

The paper sweeps BudgetRatio from 1.0 to 4.0 and reports two aggregate
curves: execution-time dilation over the lower bound (monotonically
decreasing, from ~5.2% to below 3%) and scheduling inefficiency (total
operation-scheduling steps per operation, *including* failed II attempts),
which first falls (fewer wasted larger-II attempts) and then creeps up
(effort spent on IIs that ultimately fail).  The sweet spot is around
BudgetRatio = 2, where the paper lands on 2.8% dilation at 1.59 steps/op.
"""

from repro.analysis import render_series
from repro.analysis.model import execution_time, execution_time_bound
from repro.core import SchedulingFailure, modulo_schedule

RATIOS = [1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0]


def _sweep_point(evaluations, machine, ratio):
    """One Figure-6 point: (dilation, inefficiency) at a BudgetRatio."""
    total_time = 0
    total_bound = 0
    total_steps = 0
    total_ops = 0
    for evaluation in evaluations:
        loop = evaluation.loop
        result = modulo_schedule(
            loop.graph,
            machine,
            budget_ratio=ratio,
            mii_result=evaluation.mii_result,
        )
        total_steps += result.steps_total
        total_ops += loop.graph.n_ops
        if loop.executed:
            sl_bound = evaluation.sl_bound_at_mii
            total_time += execution_time(
                loop.entry_freq, loop.loop_freq, result.schedule_length, result.ii
            )
            total_bound += execution_time_bound(
                loop.entry_freq, loop.loop_freq, sl_bound, evaluation.mii
            )
    dilation = (total_time - total_bound) / total_bound
    inefficiency = total_steps / total_ops
    return dilation, inefficiency


def test_fig6_budget_ratio_sweep(machine, evaluations, emit, benchmark):
    points = []
    for ratio in RATIOS:
        dilation, inefficiency = _sweep_point(evaluations, machine, ratio)
        points.append((ratio, [dilation, inefficiency]))
    text = render_series(
        "BudgetRatio",
        ["exec-time dilation", "scheduling inefficiency"],
        points,
        title=f"Figure 6 over {len(evaluations)} loops:",
    )
    emit("fig6_budget_ratio", text)

    dilations = {r: ys[0] for r, ys in points}
    inefficiencies = {r: ys[1] for r, ys in points}
    # Shape: dilation decreases (weakly) as the budget grows ...
    assert dilations[4.0] <= dilations[1.0] + 1e-9
    # ... and is small at the paper's recommended BudgetRatio of 2.
    assert dilations[2.0] <= 0.10  # paper: 0.028
    # The inefficiency stays in the low single digits everywhere and its
    # minimum sits in the interior of the sweep (the paper's "sweet spot"
    # around 1.5-2.0), not at either end.
    assert all(1.0 <= v <= 5.0 for v in inefficiencies.values())
    best = min(inefficiencies, key=inefficiencies.get)
    assert 1.0 < best < 4.0

    benchmark(
        modulo_schedule,
        evaluations[0].loop.graph,
        machine,
        2.0,
        mii_result=evaluations[0].mii_result,
    )
