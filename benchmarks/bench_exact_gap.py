"""Optimality-gap study: heuristic IMS against the proving exact backend.

For a corpus slice, every loop is scheduled twice — by iterative modulo
scheduling (the paper's heuristic) and by the exact SAT backend, which
searches II-by-II upward from the MII so that its first satisfiable II
is proven minimal (every lower II carries an UNSAT/infeasible
certificate).  The record appended to ``BENCH_EXACT.json`` at the
repository root answers the question Rau's Table 3 could only bound:
on what fraction of loops does the heuristic actually achieve the
minimal II (not merely the MII)?

Knobs (environment variables):

* ``REPRO_BENCH_EXACT_LOOPS``   — slice size (default 100);
* ``REPRO_BENCH_EXACT_VARS``    — solver time-variable budget;
* ``REPRO_BENCH_EXACT_CLAUSES`` — solver clause budget.

Loops whose proof blows the solver budget are reported honestly as
``unproven`` — never silently dropped and never counted as proven.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from time import perf_counter

from conftest import QUALITY_BUDGET_RATIO

from repro.backends import IIPolicy, get_backend
from repro.check import check_schedule
from repro.core.mii import compute_mii
from repro.core.scheduler import modulo_schedule

BENCH_EXACT = Path(__file__).resolve().parent.parent / "BENCH_EXACT.json"

_SLICE = int(os.environ.get("REPRO_BENCH_EXACT_LOOPS", "100"))
_MAX_VARS = int(os.environ.get("REPRO_BENCH_EXACT_VARS", "25000"))
_MAX_CLAUSES = int(os.environ.get("REPRO_BENCH_EXACT_CLAUSES", "60000"))


def _record(bench: str, payload: dict) -> None:
    """Append one result record to the BENCH_EXACT.json trajectory."""
    data = {"version": 1, "runs": []}
    if BENCH_EXACT.exists():
        data = json.loads(BENCH_EXACT.read_text())
    data["runs"].append(
        {"bench": bench, "unix_time": round(time.time(), 3), **payload}
    )
    BENCH_EXACT.write_text(json.dumps(data, indent=2) + "\n")


def test_optimality_gap(machine, corpus, emit):
    loops = corpus[:_SLICE]
    backend = get_backend(
        "exact", max_time_vars=_MAX_VARS, max_clauses=_MAX_CLAUSES
    )

    proven = 0
    achieved = 0
    unproven = []
    gap_rows = []
    gap_census: dict = {}
    start = perf_counter()
    for loop in loops:
        mii_result = compute_mii(loop.graph, machine)
        ims = modulo_schedule(
            loop.graph,
            machine,
            budget_ratio=QUALITY_BUDGET_RATIO,
            mii_result=mii_result,
        )
        loop_start = perf_counter()
        exact = backend.schedule(
            loop.graph, machine, IIPolicy(), mii_result=mii_result
        )
        seconds = perf_counter() - loop_start

        assert exact.ii <= ims.ii, loop.name
        diags = check_schedule(loop.graph, machine, exact.schedule)
        assert diags.ok, f"{loop.name}: {diags.render()}"

        if exact.optimal is True:
            proven += 1
            gap = ims.ii - exact.ii
            gap_census[gap] = gap_census.get(gap, 0) + 1
            if gap == 0:
                achieved += 1
            else:
                gap_rows.append(
                    {
                        "loop": loop.name,
                        "mii": mii_result.mii,
                        "ims_ii": ims.ii,
                        "exact_ii": exact.ii,
                        "gap": gap,
                        "seconds": round(seconds, 3),
                    }
                )
        else:
            unproven.append(
                {
                    "loop": loop.name,
                    "mii": mii_result.mii,
                    "ims_ii": ims.ii,
                    "exact_ii": exact.ii,
                    "seconds": round(seconds, 3),
                }
            )
    total_seconds = perf_counter() - start

    result = {
        "loops": len(loops),
        "budget_ratio": QUALITY_BUDGET_RATIO,
        "max_time_vars": _MAX_VARS,
        "max_clauses": _MAX_CLAUSES,
        "proven": proven,
        "ims_achieves_optimal": achieved,
        "ims_achieves_optimal_pct": round(100.0 * achieved / proven, 2)
        if proven
        else None,
        "gap_census": {str(k): v for k, v in sorted(gap_census.items())},
        "gaps": gap_rows,
        "unproven": unproven,
        "seconds": round(total_seconds, 2),
    }
    _record("optimality_gap", result)

    lines = [
        f"Optimality gap over {len(loops)} loops "
        f"({total_seconds:.1f}s, budgets {_MAX_VARS} vars / "
        f"{_MAX_CLAUSES} clauses):",
        f"  II proven minimal : {proven}/{len(loops)} "
        f"({len(unproven)} unproven)",
    ]
    if proven:
        lines.append(
            f"  IMS achieves II*  : {achieved}/{proven} "
            f"({100.0 * achieved / proven:.1f}% of proven loops)"
        )
    for row in gap_rows:
        lines.append(
            f"  gap +{row['gap']}: {row['loop']} "
            f"(MII {row['mii']}, IMS {row['ims_ii']}, "
            f"II* {row['exact_ii']}, {row['seconds']}s)"
        )
    for row in unproven:
        lines.append(
            f"  unproven: {row['loop']} (MII {row['mii']}, "
            f"IMS {row['ims_ii']}, exact {row['exact_ii']}, "
            f"{row['seconds']}s)"
        )
    emit("exact_optimality_gap", "\n".join(lines))

    # The study is only meaningful if the solver proved the bulk of the
    # slice; MII-matched loops alone already guarantee a large floor.
    assert proven >= len(loops) * 0.8
    assert proven + len(unproven) == len(loops)
