"""Ablation: what *iterative* buys — displacement vs greedy scheduling.

The paper's titular contribution over earlier modulo schedulers is the
iterative part: when the highest-priority operation finds no conflict-free
slot, it is placed anyway and the conflicting operations are displaced to
be rescheduled.  The greedy alternative simply abandons the candidate II.
This ablation runs both over the corpus and compares achieved II,
optimality rate, and candidate-II attempts.  The gap concentrates exactly
where the paper says iteration matters: loops whose operations carry
block/complex reservation tables.
"""

import statistics

from repro.analysis import render_table
from repro.core import SchedulingFailure, modulo_schedule

SAMPLE = 400
BUDGET_RATIO = 6.0


def _aggregate(evaluations, machine, style):
    optimal = 0
    ratios = []
    attempts = []
    deltas = []
    for evaluation in evaluations:
        result = modulo_schedule(
            evaluation.loop.graph,
            machine,
            budget_ratio=BUDGET_RATIO,
            mii_result=evaluation.mii_result,
            style=style,
        )
        if result.ii == evaluation.mii:
            optimal += 1
        ratios.append(result.ii / evaluation.mii)
        deltas.append(result.ii - evaluation.mii)
        attempts.append(result.attempts)
    return {
        "optimal": optimal / len(evaluations),
        "mean_ratio": statistics.fmean(ratios),
        "mean_delta": statistics.fmean(deltas),
        "max_delta": max(deltas),
        "mean_attempts": statistics.fmean(attempts),
    }


def test_ablation_iterative_vs_greedy(machine, evaluations, emit, benchmark):
    sample = evaluations[:SAMPLE]
    results = {
        style: _aggregate(sample, machine, style)
        for style in ("operation", "greedy")
    }
    rows = [
        [
            "iterative (paper)" if style == "operation" else "greedy",
            f"{r['optimal']:.3f}",
            f"{r['mean_ratio']:.3f}",
            f"{r['mean_delta']:.2f}",
            str(r["max_delta"]),
            f"{r['mean_attempts']:.2f}",
        ]
        for style, r in results.items()
    ]
    text = render_table(
        [
            "scheduler",
            "frac II=MII",
            "mean II/MII",
            "mean DeltaII",
            "max DeltaII",
            "II attempts",
        ],
        rows,
        title=(
            f"Iterative vs greedy (no displacement) over {len(sample)} "
            f"loops, BudgetRatio={BUDGET_RATIO}:"
        ),
    )
    emit("ablation_iterative", text)

    iterative = results["operation"]
    greedy = results["greedy"]
    # Displacement must never hurt, and must win somewhere: more optimal
    # IIs and strictly lower mean DeltaII across the corpus.
    assert iterative["optimal"] >= greedy["optimal"]
    assert iterative["mean_delta"] < greedy["mean_delta"]
    # Greedy burns more candidate IIs on the way to a schedule.
    assert greedy["mean_attempts"] >= iterative["mean_attempts"]

    benchmark(
        modulo_schedule,
        sample[0].loop.graph,
        machine,
        BUDGET_RATIO,
        mii_result=sample[0].mii_result,
        style="greedy",
    )
