"""Table 3, rows 1-6: program statistics over the corpus.

Regenerates the distribution rows for: number of operations, MII, minimum
modulo schedule length, max(0, RecMII - ResMII), number of non-trivial
SCCs, and number of nodes per SCC.  The paper's shape to reproduce: every
row heavily skewed toward its minimum (median < mean, long tail);
RecMII <= ResMII for the large majority of loops; very few non-trivial
SCCs, almost all of them tiny.
"""

from repro.analysis import render_table, table3_rows
from repro.analysis.runner import evaluate_loop


def _rows(evaluations):
    return table3_rows(evaluations)[:6]


def test_table3_program_stats(machine, corpus, evaluations, emit, benchmark):
    rows = _rows(evaluations)
    text = render_table(
        ["Measurement", "Min poss.", "Freq(min)", "Median", "Mean", "Max"],
        [row.cells() for row in rows],
        title=f"Table 3 (rows 1-6) over {len(evaluations)} loops:",
    )
    emit("table3_program_stats", text)

    by_name = {row.name: row for row in rows}
    # Shape assertions mirroring the paper's observations.
    ops = by_name["Number of operations"]
    assert ops.median < ops.mean  # skew with a long tail
    rec_gap = by_name["max(0, RecMII - ResMII)"]
    assert rec_gap.frequency_of_minimum >= 0.6  # paper: 0.84
    sccs = by_name["Number of non-trivial SCCs"]
    assert sccs.frequency_of_minimum >= 0.6  # paper: 0.773
    nodes = by_name["Number of nodes per SCC"]
    assert nodes.frequency_of_minimum >= 0.8  # paper: 0.93

    benchmark(evaluate_loop, corpus[0], machine)
