"""Extension: does the algorithm's quality survive other machine models?

The paper evaluates one machine (the Cydra 5).  A practical scheduler
must deliver the same near-optimality on very different targets — simple
tables, wide issue, short latencies.  This bench reruns the DSL-kernel
corpus on three additional machines and checks the headline metrics
(fraction of loops at II = MII, mean II/MII, steps per op) hold
everywhere.
"""

import statistics

from repro.analysis import render_table
from repro.core import compute_mii, modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import (
    cydra5,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)
from repro.workloads import KERNELS

MACHINES = [cydra5, two_alu_machine, superscalar_machine, single_alu_machine]


def test_machine_robustness(emit, benchmark):
    rows = []
    summary = {}
    for factory in MACHINES:
        machine = factory()
        optimal = 0
        ratios = []
        steps = []
        for name in sorted(KERNELS):
            lowered = compile_loop_full(
                KERNELS[name].source, machine, name=name
            )
            result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
            if result.delta_ii == 0:
                optimal += 1
            ratios.append(result.ii_ratio)
            steps.append(result.inefficiency)
        frac = optimal / len(KERNELS)
        summary[machine.name] = (frac, statistics.fmean(ratios))
        rows.append(
            [
                machine.name,
                f"{frac:.3f}",
                f"{statistics.fmean(ratios):.3f}",
                f"{max(ratios):.3f}",
                f"{statistics.fmean(steps):.2f}",
            ]
        )
    text = render_table(
        ["machine", "frac II=MII", "mean II/MII", "worst II/MII", "steps/op"],
        rows,
        title=f"Schedule quality across machines ({len(KERNELS)} kernels):",
    )
    emit("ext_machine_robustness", text)

    for name, (frac, mean_ratio) in summary.items():
        assert frac >= 0.85, name
        assert mean_ratio <= 1.05, name

    lowered = compile_loop_full(KERNELS["sdot"].source, superscalar_machine())
    benchmark(modulo_schedule, lowered.graph, superscalar_machine(), 6.0)
