"""Ablation: the HeightR priority versus structure-blind priorities.

Section 3.2 argues HeightR (a) schedules simple loops in topological
order, usually in one pass, and (b) favors tight SCCs.  This ablation
reruns the scheduler with two degenerate priorities — reverse input order
and immediate-fanout — and compares achieved II, optimality rate, and
scheduling effort.  HeightR should dominate or tie on every aggregate.
"""

import statistics

from repro.analysis import render_table
from repro.core import SchedulingFailure, modulo_schedule

SCHEMES = ["heightr", "input_order", "fanout"]
SAMPLE = 300
BUDGET_RATIO = 2.0


def _aggregate(evaluations, machine, scheme):
    optimal = 0
    ratios = []
    steps = 0
    ops = 0
    failures = 0
    for evaluation in evaluations:
        try:
            result = modulo_schedule(
                evaluation.loop.graph,
                machine,
                budget_ratio=BUDGET_RATIO,
                mii_result=evaluation.mii_result,
                priority=scheme,
            )
        except SchedulingFailure:
            failures += 1
            continue
        if result.ii == evaluation.mii:
            optimal += 1
        ratios.append(result.ii / evaluation.mii)
        steps += result.steps_total
        ops += evaluation.loop.graph.n_ops
    return {
        "optimal": optimal / len(evaluations),
        "mean_ratio": statistics.fmean(ratios) if ratios else float("inf"),
        "inefficiency": steps / ops if ops else float("inf"),
        "failures": failures,
    }


def test_ablation_priority(machine, evaluations, emit, benchmark):
    sample = evaluations[:SAMPLE]
    results = {scheme: _aggregate(sample, machine, scheme) for scheme in SCHEMES}
    rows = [
        [
            scheme,
            f"{r['optimal']:.3f}",
            f"{r['mean_ratio']:.3f}",
            f"{r['inefficiency']:.2f}",
            str(r["failures"]),
        ]
        for scheme, r in results.items()
    ]
    text = render_table(
        ["priority", "frac II=MII", "mean II/MII", "steps/op", "failures"],
        rows,
        title=(
            f"Priority ablation ({len(sample)} loops, "
            f"BudgetRatio={BUDGET_RATIO}):"
        ),
    )
    emit("ablation_priority", text)

    heightr = results["heightr"]
    for scheme in ("input_order", "fanout"):
        other = results[scheme]
        assert heightr["optimal"] >= other["optimal"] - 1e-9
        assert heightr["mean_ratio"] <= other["mean_ratio"] + 1e-9

    benchmark(
        modulo_schedule,
        sample[0].loop.graph,
        machine,
        BUDGET_RATIO,
        mii_result=sample[0].mii_result,
    )
