"""Figure 1: reservation tables for a pipelined add and multiply.

Regenerates the paper's Figure 1 rendering (shared source buses at issue,
pipeline stages, shared result bus) and checks the two collision facts the
paper reads off it: an add and a multiply cannot issue in the same cycle
(source buses), and an add issued shortly after a multiply collides on the
shared result bus (one cycle after, with this figure's stage counts).
"""

from repro.core import LinearReservations
from repro.machine import bus_conflict_machine, render_reservation_tables


def _tables():
    machine = bus_conflict_machine()
    add = machine.opcode("fadd").alternatives[0]
    mul = machine.opcode("fmul").alternatives[0]
    return add, mul


def test_figure1_rendering(emit, benchmark):
    add, mul = _tables()
    text = render_reservation_tables([add, mul])
    emit("fig1_reservation_tables", "Figure 1 (reconstructed):\n" + text)
    benchmark(render_reservation_tables, [add, mul])
    # Structural facts from the figure.
    assert ("src_bus0", 0) in set(add.uses) and ("src_bus0", 0) in set(mul.uses)
    assert dict(mul.uses)["result_bus"] - dict(add.uses)["result_bus"] == 1


def test_figure1_collisions(benchmark):
    """The collisions the paper derives from Figure 1."""
    add, mul = _tables()

    def check():
        table = LinearReservations()
        table.reserve(0, mul, 0)
        same_cycle = table.conflicts(add, 0)       # source buses
        result_bus = table.conflicts(add, 1)       # mul result at 4, add at 1+3
        later_ok = not table.conflicts(add, 2)     # clear of both
        return same_cycle, result_bus, later_ok

    same_cycle, result_bus, later_ok = benchmark(check)
    assert same_cycle and result_bus and later_ok
