"""Scheduler hot-path microbenchmarks: bitmask MRT kernel vs dict oracle.

Three measurements, each appended as one record to ``BENCH_SCHED.json``
at the repository root — a trajectory of scheduler-kernel performance
that accumulates across runs (and that the CI perf-smoke job reads back
to assert the bitmask path stays ahead of the oracle):

* ``conflict_probe`` — raw ``conflicts()`` throughput on a realistically
  filled MRT, replaying the identical probe sequence against both
  implementations.  The paper's FindTimeSlot scans every candidate slot
  with exactly this probe, so this is the innermost loop of Figure 2.
* ``corpus_end_to_end`` — wall time to modulo-schedule a corpus slice
  under each implementation with the MII computation shared, isolating
  the scheduling phase the MRT sits in.
* ``mask_compile_cache`` — cold compile of every opcode alternative over
  a range of IIs versus warm lookups through the content-addressed
  per-(machine, II) cache.
* ``mindist_closure`` — the II-search probe kernel: RecMII plus a window
  of feasibility probes and schedule-length bounds, answered by the
  parametric MinDist closure (one envelope build per loop) versus the
  per-II Floyd-Warshall oracle (one N³ pass per probe).
* ``slot_probe_batch`` — the batched FindTimeSlot kernel
  (``first_free_slot``: one rotated bit-vector per alternative) versus
  the scalar (slot, alternative) scan, plus a scheduling-pipeline arm
  replaying the PR-3 ``corpus_end_to_end`` protocol and holding the
  batched scheduler to >= 1.5x the recorded PR-3 per-loop time.

See docs/PERFORMANCE.md for the mask encoding and the file format.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from time import perf_counter

from conftest import QUALITY_BUDGET_RATIO

from repro.core import Counters
from repro.core.mrt import DictModuloReservations, make_modulo_reservations
from repro.core.mii import compute_mii
from repro.core.scheduler import modulo_schedule

BENCH_SCHED = Path(__file__).resolve().parent.parent / "BENCH_SCHED.json"

#: II used for the probe microbenchmark (a mid-size kernel's interval).
PROBE_II = 6

#: Corpus slice for the end-to-end comparison (keeps local runs snappy;
#: REPRO_BENCH_LOOPS already shrinks the corpus itself).
E2E_LOOPS = 150


def _record(bench: str, payload: dict) -> None:
    """Append one result record to the BENCH_SCHED.json trajectory."""
    data = {"version": 1, "runs": []}
    if BENCH_SCHED.exists():
        data = json.loads(BENCH_SCHED.read_text())
    data["runs"].append(
        {"bench": bench, "unix_time": round(time.time(), 3), **payload}
    )
    BENCH_SCHED.write_text(json.dumps(data, indent=2) + "\n")


class _RecordingMRT:
    """Transparent MRT wrapper that logs every kernel call it forwards."""

    def __init__(self, inner, events):
        self._inner = inner
        self._events = events

    def conflicts(self, table, time):
        self._events.append(("probe", table, time))
        return self._inner.conflicts(table, time)

    def conflicting_ops(self, tables, time):
        tables = tuple(tables)
        self._events.append(("ops", tables, time))
        return self._inner.conflicting_ops(tables, time)

    def reserve(self, op, table, time):
        self._events.append(("reserve", (op, table), time))
        return self._inner.reserve(op, table, time)

    def release(self, op):
        self._events.append(("release", op, 0))
        return self._inner.release(op)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _record_kernel_trace(machine, corpus):
    """Every MRT kernel call the scheduler issued over a corpus slice.

    Recorded by wrapping the scheduler's MRT during real runs, because
    probe traffic is *not* uniform: wide tables (loads holding a memory
    port at issue and at data return) conflict more often and attract
    disproportionately many slot scans, and the occupancy each probe
    runs against decides how soon the oracle's scan can exit early.
    """
    import repro.core.scheduler as scheduler_module

    events = []
    original = scheduler_module.make_modulo_reservations

    def recording_make(ii, machine=None, impl=None):
        events.append(("new", ii, 0))
        return _RecordingMRT(
            original(ii, machine=machine, impl="mask"), events
        )

    scheduler_module.make_modulo_reservations = recording_make
    try:
        for loop in corpus:
            modulo_schedule(
                loop.graph, machine, budget_ratio=QUALITY_BUDGET_RATIO
            )
    finally:
        scheduler_module.make_modulo_reservations = original
    return events


def _resolve_events(events, impl):
    """Rebind the recorded tables for one implementation: the bitmask
    replay probes the CompiledAlternatives the scheduler probed, the
    oracle replay probes the raw reservation tables underneath them."""

    def resolve(table):
        return getattr(table, "table", table) if impl == "dict" else table

    codes = {"probe": 0, "new": 1, "reserve": 2, "release": 3, "ops": 4}
    resolved = []
    for kind, payload, time in events:
        if kind == "probe":
            payload = resolve(payload)
        elif kind == "reserve":
            payload = (payload[0], resolve(payload[1]))
        elif kind == "ops":
            payload = tuple(resolve(table) for table in payload)
        resolved.append((codes[kind], payload, time))
    return resolved


def _replay(events, impl, machine, repeats):
    """Replay a recorded kernel trace; returns (seconds, created MRTs)."""
    resolved = _resolve_events(events, impl)
    created = []
    mrt = None
    start = perf_counter()
    for _ in range(repeats):
        for code, payload, time_ in resolved:
            if code == 0:
                mrt.conflicts(payload, time_)
            elif code == 1:
                mrt = make_modulo_reservations(
                    payload, machine=machine, impl=impl
                )
                created.append(mrt)
            elif code == 2:
                mrt.reserve(payload[0], payload[1], time_)
            elif code == 3:
                mrt.release(payload)
            else:
                mrt.conflicting_ops(payload, time_)
    return perf_counter() - start, created


def test_conflict_probe_throughput(machine, corpus, emit):
    """The single-AND probe must be >= 3x the dict oracle's throughput.

    Both implementations replay the identical kernel trace — every
    ``conflicts`` probe, ``reserve``, ``release`` and ``conflicting_ops``
    the scheduler issued over a corpus slice, against the identical
    evolving occupancy — so the comparison covers real fill levels and
    the real mix of early-exit hits and full-scan misses.
    """
    events = _record_kernel_trace(machine, corpus[:60])
    n_probes = sum(1 for kind, _, _ in events if kind == "probe")
    repeats = 10
    mask_seconds, mask_mrts = _replay(events, "mask", machine, repeats)
    dict_seconds, dict_mrts = _replay(events, "dict", machine, repeats)

    mask_cell_probes = sum(mrt.cell_probes for mrt in mask_mrts)
    dict_cell_probes = sum(mrt.cell_probes for mrt in dict_mrts)
    total_probes = repeats * n_probes
    speedup = dict_seconds / mask_seconds
    result = {
        "events": len(events),
        "probes": total_probes,
        "mask_seconds": round(mask_seconds, 6),
        "dict_seconds": round(dict_seconds, 6),
        "mask_probes_per_second": round(total_probes / mask_seconds),
        "dict_probes_per_second": round(total_probes / dict_seconds),
        "speedup": round(speedup, 2),
        "mask_cell_probes": mask_cell_probes,
        "dict_cell_probes": dict_cell_probes,
    }
    _record("conflict_probe", result)
    emit(
        "hotpath_conflict_probe",
        f"MRT kernel replay ({len(events)} recorded calls x {repeats}, "
        f"{total_probes:,} conflict probes):\n"
        f"  bitmask {result['mask_probes_per_second']:>12,} probes/s "
        f"({mask_seconds:.3f}s)\n"
        f"  dict    {result['dict_probes_per_second']:>12,} probes/s "
        f"({dict_seconds:.3f}s)\n"
        f"  speedup {speedup:.1f}x   dict cell probes "
        f"{dict_cell_probes:,} vs mask {mask_cell_probes}",
    )
    assert mask_cell_probes == 0  # the fast path touches no cell dict
    assert dict_cell_probes > 0
    assert speedup >= 3.0, f"bitmask kernel only {speedup:.2f}x the oracle"


def test_corpus_end_to_end(machine, corpus, emit):
    """Scheduling the corpus must be measurably faster under the mask MRT."""
    loops = corpus[:E2E_LOOPS]
    mii_results = [compute_mii(loop.graph, machine) for loop in loops]

    def run(impl):
        counters = Counters()
        results = []
        start = perf_counter()
        for loop, mii_result in zip(loops, mii_results):
            results.append(
                modulo_schedule(
                    loop.graph,
                    machine,
                    budget_ratio=QUALITY_BUDGET_RATIO,
                    counters=counters,
                    mii_result=mii_result,
                    mrt_impl=impl,
                )
            )
        return perf_counter() - start, counters, results

    mask_seconds, mask_counters, mask_results = run("mask")
    dict_seconds, dict_counters, dict_results = run("dict")

    # Differential guard: identical work and identical schedules.
    assert mask_counters.snapshot() == dict_counters.snapshot()
    for left, right in zip(mask_results, dict_results):
        assert left.ii == right.ii
        assert left.schedule.times == right.schedule.times

    speedup = dict_seconds / mask_seconds
    result = {
        "loops": len(loops),
        "budget_ratio": QUALITY_BUDGET_RATIO,
        "mask_seconds": round(mask_seconds, 4),
        "dict_seconds": round(dict_seconds, 4),
        "speedup": round(speedup, 3),
        "ops_scheduled": mask_counters.ops_scheduled,
        "findtimeslot_iters": mask_counters.findtimeslot_iters,
    }
    _record("corpus_end_to_end", result)
    emit(
        "hotpath_corpus_end_to_end",
        f"End-to-end scheduling of {len(loops)} loops "
        f"(BudgetRatio {QUALITY_BUDGET_RATIO}, shared MII):\n"
        f"  bitmask {mask_seconds:.2f}s   dict {dict_seconds:.2f}s   "
        f"speedup {speedup:.2f}x",
    )
    assert mask_seconds < dict_seconds, (
        f"bitmask end-to-end ({mask_seconds:.2f}s) not faster than the "
        f"dict oracle ({dict_seconds:.2f}s)"
    )


#: IIs probed above the MII in the ``mindist_closure`` bench — the exact
#: backend's per-II window plus the scheduler's II escalation both walk
#: this range, each step a fresh Floyd-Warshall pass under the oracle.
II_WINDOW = 12

#: Corpus slice for the II-search probe kernel.
MINDIST_LOOPS = 120


def _ii_search_workload(machine, loops, impl):
    """The MinDist traffic of one II search per loop: the RecMII
    computation, then feasibility probes and schedule-length bounds over
    an ``II_WINDOW``-wide window above the MII (what the exact backend's
    per-II encoding sweep and the scheduler's escalation ask for)."""
    from repro.core.mindist import schedule_length_lower_bound

    counters = Counters()
    closure_builds = 0
    start = perf_counter()
    for loop in loops:
        mii_result = compute_mii(
            loop.graph, machine, counters=counters, mindist_impl=impl
        )
        memo = mii_result.mindist_memo
        for ii in range(mii_result.mii, mii_result.mii + II_WINDOW):
            memo.feasible(ii, counters=counters)
            schedule_length_lower_bound(loop.graph, ii, counters, memo=memo)
        closure_builds += memo.misses if impl == "parametric" else 0
    return perf_counter() - start, counters, closure_builds


def test_mindist_closure(machine, corpus, emit):
    """One parametric closure build must replace >= 10 oracle N³ passes
    across the II search.

    The enforced floor is the *probe ratio* — N³ Floyd-Warshall passes
    the oracle runs per closure build the parametric arm pays — because
    that is the complexity claim: the closure turns a per-II O(N³) cost
    into a one-off build plus O(N² · P) evals.  Wall clock is recorded
    (best of three) but not floored: a closure build costs roughly
    eighteen FW-pass-equivalents on this corpus, so it repays itself on
    probe-heavy sweeps (the exact backend's II window, escalation-heavy
    searches), not on every workload shape — docs/PERFORMANCE.md carries
    the measured break-even.
    """
    loops = corpus[:MINDIST_LOOPS]
    fw_seconds, fw_counters, _ = min(
        (_ii_search_workload(machine, loops, "fw") for _ in range(3)),
        key=lambda r: r[0],
    )
    para_seconds, para_counters, builds = min(
        (
            _ii_search_workload(machine, loops, "parametric")
            for _ in range(3)
        ),
        key=lambda r: r[0],
    )

    # Differential guard: both arms answered the identical probe set.
    assert para_counters.mindist_invocations == 0
    assert fw_counters.mindist_parametric_evals == 0
    assert builds > 0

    probe_ratio = fw_counters.mindist_invocations / builds
    # N³-equivalent work: the oracle's inner-loop operations across every
    # per-II pass versus the one-off closure builds' (each billed n³ by
    # the envelope Floyd-Warshall).
    work_ratio = fw_counters.mindist_inner / para_counters.mindist_closure_inner
    speedup = fw_seconds / para_seconds
    result = {
        "loops": len(loops),
        "ii_window": II_WINDOW,
        "fw_seconds": round(fw_seconds, 4),
        "parametric_seconds": round(para_seconds, 4),
        "speedup": round(speedup, 2),
        "fw_n3_passes": fw_counters.mindist_invocations,
        "fw_inner_ops": fw_counters.mindist_inner,
        "closure_builds": builds,
        "closure_inner_ops": para_counters.mindist_closure_inner,
        "parametric_evals": para_counters.mindist_parametric_evals,
        "probe_ratio": round(probe_ratio, 2),
        "n3_work_ratio": round(work_ratio, 2),
    }
    _record("mindist_closure", result)
    emit(
        "hotpath_mindist_closure",
        f"II-search probe kernel over {len(loops)} loops "
        f"(RecMII + {II_WINDOW}-II window of bounds/feasibility):\n"
        f"  fw oracle  {fw_seconds:.3f}s  "
        f"({fw_counters.mindist_invocations:,} N^3 passes)\n"
        f"  parametric {para_seconds:.3f}s  ({builds:,} closure builds, "
        f"{para_counters.mindist_parametric_evals:,} O(N^2 P) evals)\n"
        f"  probe ratio {probe_ratio:.1f}x   N^3 work ratio "
        f"{work_ratio:.1f}x   speedup {speedup:.2f}x",
    )
    assert probe_ratio >= 10.0, (
        f"closure replaced only {probe_ratio:.1f} N^3 passes per build"
    )
    assert work_ratio >= 3.0, (
        f"closure saved only {work_ratio:.1f}x of the oracle's N^3 work"
    )
    assert para_counters.mindist_parametric_evals > 0


def _pr3_per_loop_seconds() -> float:
    """Per-loop scheduling time of the first recorded ``corpus_end_to_end``
    run (the PR-3 record) — the trajectory baseline the batched scheduler
    is held against."""
    data = json.loads(BENCH_SCHED.read_text())
    for run in data["runs"]:
        if run["bench"] == "corpus_end_to_end":
            return run["mask_seconds"] / run["loops"]
    raise AssertionError(
        "BENCH_SCHED.json has no corpus_end_to_end record to compare "
        "against; run test_corpus_end_to_end first"
    )


def test_slot_probe_batch(machine, corpus, emit):
    """first_free_slot must beat the scalar scan >= 2x on the isolated
    kernel, and the batched scheduling pipeline must beat the recorded
    PR-3 ``corpus_end_to_end`` entry >= 1.5x per loop.

    The pipeline arms replicate the PR-3 record's protocol exactly —
    time ``modulo_schedule`` only, MII precomputed once and shared, the
    same budget ratio, the mask MRT — so the per-loop comparison against
    the stored record isolates what this PR changed: batched slot
    probing plus the shared SCC/preparation caches.  The same-run scalar
    arm is reported alongside to isolate the slot batching itself, and
    both arms must produce bit-identical schedules and counters (the
    batch path bills ``findtimeslot_iters`` as if it had scanned).
    """
    from repro.core.mrt import ModuloReservations

    # -- isolated kernel: replay one probe set both ways ----------------
    mask_set = machine.compiled_masks(PROBE_II)
    alternatives = [
        list(mask_set.feasible(opcode))
        for opcode in machine.opcode_names
        if mask_set.feasible(opcode)
    ]
    mrt = ModuloReservations(PROBE_II, mask_set)
    op = 0
    for alts in alternatives * 3:  # realistic fill: a few of everything
        for table in alts:
            slot, index = mrt.first_free_slot([table], op % PROBE_II)
            if slot is not None:
                mrt.reserve(op, table, slot)
                op += 1
                break
    probes = [
        (alts, min_time)
        for min_time in range(PROBE_II * 4)
        for alts in alternatives
    ]
    repeats = 400

    start = perf_counter()
    batch_answers = [
        mrt.first_free_slot(alts, min_time)
        for _ in range(repeats)
        for alts, min_time in probes
    ]
    batch_seconds = perf_counter() - start

    def scalar_scan(alts, min_time):
        for time_ in range(min_time, min_time + PROBE_II):
            for index, table in enumerate(alts):
                if not mrt.conflicts(table, time_):
                    return time_, index
        return None, None

    start = perf_counter()
    scalar_answers = [
        scalar_scan(alts, min_time)
        for _ in range(repeats)
        for alts, min_time in probes
    ]
    scalar_seconds = perf_counter() - start
    assert batch_answers == scalar_answers
    kernel_speedup = scalar_seconds / batch_seconds

    # -- full pipeline: batched scheduler vs the recorded PR-3 entry ----
    loops = corpus[:E2E_LOOPS]
    mii_results = [
        compute_mii(loop.graph, machine, mindist_impl="fw")
        for loop in loops
    ]

    def run(slot_impl):
        counters = Counters()
        results = []
        start = perf_counter()
        for loop, mii_result in zip(loops, mii_results):
            results.append(
                modulo_schedule(
                    loop.graph,
                    machine,
                    budget_ratio=QUALITY_BUDGET_RATIO,
                    counters=counters,
                    mii_result=mii_result,
                    mrt_impl="mask",
                    slot_impl=slot_impl,
                    mindist_impl="fw",
                )
            )
        return perf_counter() - start, counters, results

    # Best of three alternating trials: the floor compares against a
    # *stored* record, so per-run scheduler noise must not decide it.
    batch_trials, scalar_trials = [], []
    for _ in range(3):
        scalar_trials.append(run("scalar"))
        batch_trials.append(run("batch"))
    scalar_pipe_seconds, scalar_counters, scalar_results = min(
        scalar_trials, key=lambda r: r[0]
    )
    pipe_seconds, pipe_counters, pipe_results = min(
        batch_trials, key=lambda r: r[0]
    )

    # Differential guard: identical schedules, bit-identical counters
    # (the batch path's as-if accounting makes every snapshot field
    # match the scalar scan, findtimeslot_iters included).
    for left, right in zip(pipe_results, scalar_results):
        assert left.ii == right.ii
        assert left.schedule.times == right.schedule.times
    assert pipe_counters.snapshot() == scalar_counters.snapshot()

    pr3_per_loop = _pr3_per_loop_seconds()
    per_loop = pipe_seconds / len(loops)
    corpus_speedup = pr3_per_loop / per_loop
    scalar_ratio = scalar_pipe_seconds / pipe_seconds
    result = {
        "probes": repeats * len(probes),
        "batch_seconds": round(batch_seconds, 4),
        "scalar_seconds": round(scalar_seconds, 4),
        "kernel_speedup": round(kernel_speedup, 2),
        "loops": len(loops),
        "budget_ratio": QUALITY_BUDGET_RATIO,
        "pipeline_seconds": round(pipe_seconds, 4),
        "pipeline_scalar_seconds": round(scalar_pipe_seconds, 4),
        "per_loop_ms": round(per_loop * 1e3, 4),
        "pr3_per_loop_ms": round(pr3_per_loop * 1e3, 4),
        "corpus_speedup": round(corpus_speedup, 3),
        "scalar_ratio": round(scalar_ratio, 3),
        "findtimeslot_iters": pipe_counters.findtimeslot_iters,
    }
    _record("slot_probe_batch", result)
    emit(
        "hotpath_slot_probe_batch",
        f"Batched FindTimeSlot ({repeats * len(probes):,} window probes):\n"
        f"  batch  {batch_seconds:.3f}s   scalar {scalar_seconds:.3f}s   "
        f"kernel speedup {kernel_speedup:.2f}x\n"
        f"Scheduling pipeline over {len(loops)} loops "
        f"(BudgetRatio {QUALITY_BUDGET_RATIO}, shared MII, best of 3):\n"
        f"  batch {per_loop * 1e3:.3f}ms/loop   "
        f"scalar {scalar_pipe_seconds / len(loops) * 1e3:.3f}ms/loop "
        f"(x{scalar_ratio:.2f})   "
        f"PR-3 record {pr3_per_loop * 1e3:.3f}ms/loop   "
        f"speedup vs record {corpus_speedup:.2f}x",
    )
    assert kernel_speedup >= 2.0, (
        f"batched slot kernel only {kernel_speedup:.2f}x the scalar scan"
    )
    assert pipe_seconds <= scalar_pipe_seconds, (
        "batched pipeline slower than its own scalar arm"
    )
    assert corpus_speedup >= 1.5, (
        f"pipeline only {corpus_speedup:.2f}x the recorded PR-3 entry "
        f"({per_loop * 1e3:.3f}ms vs {pr3_per_loop * 1e3:.3f}ms per loop)"
    )


def test_mask_compile_cache(machine, emit):
    """Warm per-(machine, II) lookups must beat cold compiles outright."""
    from repro.machine.machine import _MASK_SET_CACHE
    from repro.machine.serialize import machine_from_dict, machine_to_dict

    iis = list(range(1, 33))
    cold_machine = machine_from_dict(machine_to_dict(machine))
    _MASK_SET_CACHE.clear()
    start = perf_counter()
    for ii in iis:
        cold_machine.compiled_masks(ii)
    cold_seconds = perf_counter() - start

    # A second equal machine: every lookup is a content-addressed hit.
    warm_machine = machine_from_dict(machine_to_dict(machine))
    start = perf_counter()
    for ii in iis:
        warm_machine.compiled_masks(ii)
    warm_seconds = perf_counter() - start
    assert warm_machine.compiled_masks(iis[0]) is cold_machine.compiled_masks(
        iis[0]
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    result = {
        "iis": len(iis),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(speedup, 1),
    }
    _record("mask_compile_cache", result)
    emit(
        "hotpath_mask_compile_cache",
        f"Mask compilation over {len(iis)} IIs: cold {cold_seconds * 1e3:.1f}ms, "
        f"warm {warm_seconds * 1e3:.2f}ms ({speedup:.0f}x)",
    )
    assert warm_seconds < cold_seconds
