"""Scheduler hot-path microbenchmarks: bitmask MRT kernel vs dict oracle.

Three measurements, each appended as one record to ``BENCH_SCHED.json``
at the repository root — a trajectory of scheduler-kernel performance
that accumulates across runs (and that the CI perf-smoke job reads back
to assert the bitmask path stays ahead of the oracle):

* ``conflict_probe`` — raw ``conflicts()`` throughput on a realistically
  filled MRT, replaying the identical probe sequence against both
  implementations.  The paper's FindTimeSlot scans every candidate slot
  with exactly this probe, so this is the innermost loop of Figure 2.
* ``corpus_end_to_end`` — wall time to modulo-schedule a corpus slice
  under each implementation with the MII computation shared, isolating
  the scheduling phase the MRT sits in.
* ``mask_compile_cache`` — cold compile of every opcode alternative over
  a range of IIs versus warm lookups through the content-addressed
  per-(machine, II) cache.

See docs/PERFORMANCE.md for the mask encoding and the file format.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from time import perf_counter

from conftest import QUALITY_BUDGET_RATIO

from repro.core import Counters
from repro.core.mrt import DictModuloReservations, make_modulo_reservations
from repro.core.mii import compute_mii
from repro.core.scheduler import modulo_schedule

BENCH_SCHED = Path(__file__).resolve().parent.parent / "BENCH_SCHED.json"

#: II used for the probe microbenchmark (a mid-size kernel's interval).
PROBE_II = 6

#: Corpus slice for the end-to-end comparison (keeps local runs snappy;
#: REPRO_BENCH_LOOPS already shrinks the corpus itself).
E2E_LOOPS = 150


def _record(bench: str, payload: dict) -> None:
    """Append one result record to the BENCH_SCHED.json trajectory."""
    data = {"version": 1, "runs": []}
    if BENCH_SCHED.exists():
        data = json.loads(BENCH_SCHED.read_text())
    data["runs"].append(
        {"bench": bench, "unix_time": round(time.time(), 3), **payload}
    )
    BENCH_SCHED.write_text(json.dumps(data, indent=2) + "\n")


class _RecordingMRT:
    """Transparent MRT wrapper that logs every kernel call it forwards."""

    def __init__(self, inner, events):
        self._inner = inner
        self._events = events

    def conflicts(self, table, time):
        self._events.append(("probe", table, time))
        return self._inner.conflicts(table, time)

    def conflicting_ops(self, tables, time):
        tables = tuple(tables)
        self._events.append(("ops", tables, time))
        return self._inner.conflicting_ops(tables, time)

    def reserve(self, op, table, time):
        self._events.append(("reserve", (op, table), time))
        return self._inner.reserve(op, table, time)

    def release(self, op):
        self._events.append(("release", op, 0))
        return self._inner.release(op)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _record_kernel_trace(machine, corpus):
    """Every MRT kernel call the scheduler issued over a corpus slice.

    Recorded by wrapping the scheduler's MRT during real runs, because
    probe traffic is *not* uniform: wide tables (loads holding a memory
    port at issue and at data return) conflict more often and attract
    disproportionately many slot scans, and the occupancy each probe
    runs against decides how soon the oracle's scan can exit early.
    """
    import repro.core.scheduler as scheduler_module

    events = []
    original = scheduler_module.make_modulo_reservations

    def recording_make(ii, machine=None, impl=None):
        events.append(("new", ii, 0))
        return _RecordingMRT(
            original(ii, machine=machine, impl="mask"), events
        )

    scheduler_module.make_modulo_reservations = recording_make
    try:
        for loop in corpus:
            modulo_schedule(
                loop.graph, machine, budget_ratio=QUALITY_BUDGET_RATIO
            )
    finally:
        scheduler_module.make_modulo_reservations = original
    return events


def _resolve_events(events, impl):
    """Rebind the recorded tables for one implementation: the bitmask
    replay probes the CompiledAlternatives the scheduler probed, the
    oracle replay probes the raw reservation tables underneath them."""

    def resolve(table):
        return getattr(table, "table", table) if impl == "dict" else table

    codes = {"probe": 0, "new": 1, "reserve": 2, "release": 3, "ops": 4}
    resolved = []
    for kind, payload, time in events:
        if kind == "probe":
            payload = resolve(payload)
        elif kind == "reserve":
            payload = (payload[0], resolve(payload[1]))
        elif kind == "ops":
            payload = tuple(resolve(table) for table in payload)
        resolved.append((codes[kind], payload, time))
    return resolved


def _replay(events, impl, machine, repeats):
    """Replay a recorded kernel trace; returns (seconds, created MRTs)."""
    resolved = _resolve_events(events, impl)
    created = []
    mrt = None
    start = perf_counter()
    for _ in range(repeats):
        for code, payload, time_ in resolved:
            if code == 0:
                mrt.conflicts(payload, time_)
            elif code == 1:
                mrt = make_modulo_reservations(
                    payload, machine=machine, impl=impl
                )
                created.append(mrt)
            elif code == 2:
                mrt.reserve(payload[0], payload[1], time_)
            elif code == 3:
                mrt.release(payload)
            else:
                mrt.conflicting_ops(payload, time_)
    return perf_counter() - start, created


def test_conflict_probe_throughput(machine, corpus, emit):
    """The single-AND probe must be >= 3x the dict oracle's throughput.

    Both implementations replay the identical kernel trace — every
    ``conflicts`` probe, ``reserve``, ``release`` and ``conflicting_ops``
    the scheduler issued over a corpus slice, against the identical
    evolving occupancy — so the comparison covers real fill levels and
    the real mix of early-exit hits and full-scan misses.
    """
    events = _record_kernel_trace(machine, corpus[:60])
    n_probes = sum(1 for kind, _, _ in events if kind == "probe")
    repeats = 10
    mask_seconds, mask_mrts = _replay(events, "mask", machine, repeats)
    dict_seconds, dict_mrts = _replay(events, "dict", machine, repeats)

    mask_cell_probes = sum(mrt.cell_probes for mrt in mask_mrts)
    dict_cell_probes = sum(mrt.cell_probes for mrt in dict_mrts)
    total_probes = repeats * n_probes
    speedup = dict_seconds / mask_seconds
    result = {
        "events": len(events),
        "probes": total_probes,
        "mask_seconds": round(mask_seconds, 6),
        "dict_seconds": round(dict_seconds, 6),
        "mask_probes_per_second": round(total_probes / mask_seconds),
        "dict_probes_per_second": round(total_probes / dict_seconds),
        "speedup": round(speedup, 2),
        "mask_cell_probes": mask_cell_probes,
        "dict_cell_probes": dict_cell_probes,
    }
    _record("conflict_probe", result)
    emit(
        "hotpath_conflict_probe",
        f"MRT kernel replay ({len(events)} recorded calls x {repeats}, "
        f"{total_probes:,} conflict probes):\n"
        f"  bitmask {result['mask_probes_per_second']:>12,} probes/s "
        f"({mask_seconds:.3f}s)\n"
        f"  dict    {result['dict_probes_per_second']:>12,} probes/s "
        f"({dict_seconds:.3f}s)\n"
        f"  speedup {speedup:.1f}x   dict cell probes "
        f"{dict_cell_probes:,} vs mask {mask_cell_probes}",
    )
    assert mask_cell_probes == 0  # the fast path touches no cell dict
    assert dict_cell_probes > 0
    assert speedup >= 3.0, f"bitmask kernel only {speedup:.2f}x the oracle"


def test_corpus_end_to_end(machine, corpus, emit):
    """Scheduling the corpus must be measurably faster under the mask MRT."""
    loops = corpus[:E2E_LOOPS]
    mii_results = [compute_mii(loop.graph, machine) for loop in loops]

    def run(impl):
        counters = Counters()
        results = []
        start = perf_counter()
        for loop, mii_result in zip(loops, mii_results):
            results.append(
                modulo_schedule(
                    loop.graph,
                    machine,
                    budget_ratio=QUALITY_BUDGET_RATIO,
                    counters=counters,
                    mii_result=mii_result,
                    mrt_impl=impl,
                )
            )
        return perf_counter() - start, counters, results

    mask_seconds, mask_counters, mask_results = run("mask")
    dict_seconds, dict_counters, dict_results = run("dict")

    # Differential guard: identical work and identical schedules.
    assert mask_counters.snapshot() == dict_counters.snapshot()
    for left, right in zip(mask_results, dict_results):
        assert left.ii == right.ii
        assert left.schedule.times == right.schedule.times

    speedup = dict_seconds / mask_seconds
    result = {
        "loops": len(loops),
        "budget_ratio": QUALITY_BUDGET_RATIO,
        "mask_seconds": round(mask_seconds, 4),
        "dict_seconds": round(dict_seconds, 4),
        "speedup": round(speedup, 3),
        "ops_scheduled": mask_counters.ops_scheduled,
        "findtimeslot_iters": mask_counters.findtimeslot_iters,
    }
    _record("corpus_end_to_end", result)
    emit(
        "hotpath_corpus_end_to_end",
        f"End-to-end scheduling of {len(loops)} loops "
        f"(BudgetRatio {QUALITY_BUDGET_RATIO}, shared MII):\n"
        f"  bitmask {mask_seconds:.2f}s   dict {dict_seconds:.2f}s   "
        f"speedup {speedup:.2f}x",
    )
    assert mask_seconds < dict_seconds, (
        f"bitmask end-to-end ({mask_seconds:.2f}s) not faster than the "
        f"dict oracle ({dict_seconds:.2f}s)"
    )


def test_mask_compile_cache(machine, emit):
    """Warm per-(machine, II) lookups must beat cold compiles outright."""
    from repro.machine.machine import _MASK_SET_CACHE
    from repro.machine.serialize import machine_from_dict, machine_to_dict

    iis = list(range(1, 33))
    cold_machine = machine_from_dict(machine_to_dict(machine))
    _MASK_SET_CACHE.clear()
    start = perf_counter()
    for ii in iis:
        cold_machine.compiled_masks(ii)
    cold_seconds = perf_counter() - start

    # A second equal machine: every lookup is a content-addressed hit.
    warm_machine = machine_from_dict(machine_to_dict(machine))
    start = perf_counter()
    for ii in iis:
        warm_machine.compiled_masks(ii)
    warm_seconds = perf_counter() - start
    assert warm_machine.compiled_masks(iis[0]) is cold_machine.compiled_masks(
        iis[0]
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    result = {
        "iis": len(iis),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(speedup, 1),
    }
    _record("mask_compile_cache", result)
    emit(
        "hotpath_mask_compile_cache",
        f"Mask compilation over {len(iis)} IIs: cold {cold_seconds * 1e3:.1f}ms, "
        f"warm {warm_seconds * 1e3:.2f}ms ({speedup:.0f}x)",
    )
    assert warm_seconds < cold_seconds
