"""Extension: what front-end optimization buys the scheduler.

The paper's input had load-store elimination applied before scheduling
(Section 1's pre-passes) because redundant memory traffic inflates the
ResMII directly — every duplicated load is port bandwidth the kernel
cannot spend on real work.  This bench compiles every DSL kernel with and
without value numbering + dead-code elimination and measures operations,
MII, and achieved II.
"""

import statistics

from repro.analysis import render_table
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.workloads import KERNELS


def test_optimizer_effect(machine, emit, benchmark):
    rows = []
    ops_saved = []
    ii_on = []
    ii_off = []
    for name in sorted(KERNELS):
        source = KERNELS[name].source
        optimized = compile_loop_full(source, machine, name=name)
        raw = compile_loop_full(source, machine, name=name, optimize=False)
        on = modulo_schedule(optimized.graph, machine, budget_ratio=6.0)
        off = modulo_schedule(raw.graph, machine, budget_ratio=6.0)
        assert on.ii <= off.ii, name  # optimization never hurts the II
        ii_on.append(on.ii)
        ii_off.append(off.ii)
        saved = raw.graph.n_real_ops - optimized.graph.n_real_ops
        ops_saved.append(saved / raw.graph.n_real_ops)
        if saved or on.ii != off.ii:
            rows.append(
                [
                    name,
                    str(raw.graph.n_real_ops),
                    str(optimized.graph.n_real_ops),
                    str(off.ii),
                    str(on.ii),
                ]
            )
    mean_saved = statistics.fmean(ops_saved)
    speedup = statistics.fmean(ii_off) / statistics.fmean(ii_on)
    text = render_table(
        ["kernel", "ops (raw)", "ops (opt)", "II (raw)", "II (opt)"],
        rows,
        title=(
            f"Front-end optimization over {len(KERNELS)} kernels: "
            f"mean {mean_saved:.1%} ops removed, "
            f"mean-II ratio {speedup:.2f}x (only changed kernels listed):"
        ),
    )
    emit("ext_optimizer", text)

    # CSE must matter somewhere (the complex-arithmetic kernels reload
    # heavily) without ever regressing.
    assert rows, "optimization changed nothing on any kernel"
    assert mean_saved > 0.02

    benchmark(
        compile_loop_full, KERNELS["complex_mul"].source, machine, "complex_mul"
    )
