"""Section 4.3's DeltaII census: how often the MII bound is achieved.

The paper: of 1327 loops, 96% achieved II = MII; 32 loops had DeltaII of
1, 8 had 2, 11 had more than 2 (all but two of those at 6 or less).  This
bench prints the same histogram for our corpus and asserts the shape: the
mass sits at zero and the tail is short.
"""

from collections import Counter

from repro.analysis import render_table
from repro.core import compute_mii


def test_deltaii_histogram(machine, corpus, evaluations, emit, benchmark):
    census = Counter(e.delta_ii for e in evaluations)
    total = len(evaluations)
    rows = [
        [str(delta), str(count), f"{count / total:.3f}"]
        for delta, count in sorted(census.items())
    ]
    text = render_table(
        ["DeltaII", "loops", "fraction"],
        rows,
        title=f"DeltaII histogram over {total} loops (BudgetRatio=6):",
    )
    emit("deltaii_histogram", text)

    assert census[0] / total >= 0.85  # paper: 0.96
    # The tail is short: a handful of loops a few II above the bound
    # (paper's worst was 20; our machine's 19-cycle load-return pattern
    # can push a rare loop slightly past that).
    assert max(census) <= 40
    assert sum(count for d, count in census.items() if d > 2) / total <= 0.05

    benchmark(compute_mii, corpus[0].graph, machine)
