"""Extension: register cost of modulo schedules (Huff [18], Rau [35]).

The paper's references motivate two register-side questions this bench
answers over the corpus:

* **MaxLive** — how many values are simultaneously live in steady state
  (the lower bound any allocator must meet), and how it scales with the
  degree of pipelining (stage count);
* **allocator overhead** — how far the simple block rotating allocator
  of :mod:`repro.codegen.rotation` sits above MaxLive (reference [35]'s
  best-fit packing would close part of this gap).
"""

import statistics

from repro.analysis import fit_linear, render_table
from repro.codegen import allocate_rotating, compute_lifetimes, register_pressure

SAMPLE = 400


def test_register_pressure(machine, corpus, evaluations, emit, benchmark):
    sample = evaluations[:SAMPLE]
    max_lives = []
    overheads = []
    stages = []
    for evaluation in sample:
        graph = evaluation.loop.graph
        schedule = evaluation.result.schedule
        lifetimes = compute_lifetimes(graph, schedule)
        report = register_pressure(graph, schedule, lifetimes)
        allocation = allocate_rotating(graph, schedule, lifetimes)
        assert allocation.size >= report.max_live, evaluation.loop.name
        max_lives.append(report.max_live)
        stages.append(schedule.stage_count)
        if report.max_live:
            overheads.append(allocation.size / report.max_live)

    stage_fit = fit_linear(stages, max_lives)
    rows = [
        ["MaxLive (mean)", f"{statistics.fmean(max_lives):.1f}"],
        ["MaxLive (median)", f"{statistics.median(max_lives):.1f}"],
        ["MaxLive (max)", str(max(max_lives))],
        [
            "rotating-file overhead vs MaxLive (mean)",
            f"{statistics.fmean(overheads):.2f}x",
        ],
        [
            "rotating-file overhead vs MaxLive (median)",
            f"{statistics.median(overheads):.2f}x",
        ],
        ["MaxLive vs stage count (LMS slope)", f"{stage_fit.slope:.2f}"],
    ]
    text = render_table(
        ["metric", "value"],
        rows,
        title=f"Register pressure over {len(sample)} loops (BudgetRatio=6):",
    )
    emit("ext_register_pressure", text)

    # Deeper pipelining means more concurrent iterations, hence more live
    # values: the slope must be positive and material.
    assert stage_fit.slope > 0.5
    # The block allocator stays within a small constant of the bound.
    assert statistics.fmean(overheads) <= 3.0

    sample_eval = sample[0]
    benchmark(
        register_pressure,
        sample_eval.loop.graph,
        sample_eval.result.schedule,
    )
