"""Table 3, rows 7-11: schedule quality at the paper's BudgetRatio of 6.

Regenerates: II - MII, II / MII, schedule length ratio, execution time
ratio (over executed loops), and number of nodes scheduled per node.  The
paper's shape: II = MII for the overwhelming majority (96%); SL within
1.5x of its (not necessarily achievable) bound; aggregate execution time
a few percent over the bound; ~90% of loops schedule every operation
exactly once.
"""

from repro.analysis import render_table, table3_rows
from repro.core import modulo_schedule


def _rows(evaluations):
    return table3_rows(evaluations)[6:]


def test_table3_schedule_quality(machine, corpus, evaluations, emit, benchmark):
    rows = _rows(evaluations)
    executed = sum(1 for e in evaluations if e.loop.executed)
    text = render_table(
        ["Measurement", "Min poss.", "Freq(min)", "Median", "Mean", "Max"],
        [row.cells() for row in rows],
        title=(
            f"Table 3 (rows 7-11) over {len(evaluations)} loops "
            f"({executed} executed), BudgetRatio=6:"
        ),
    )
    emit("table3_schedule_quality", text)

    by_name = {row.name: row for row in rows}
    # Shape assertions (paper values in comments).
    assert by_name["II - MII"].frequency_of_minimum >= 0.85  # 0.96
    assert by_name["II / MII"].mean <= 1.10  # 1.01
    assert by_name["Schedule length (ratio)"].mean <= 1.35  # 1.07
    assert by_name["Execution time (ratio)"].mean <= 1.15  # 1.05
    assert by_name["Number of nodes scheduled (ratio)"].mean <= 1.5  # 1.03

    sample = corpus[0]
    benchmark(
        modulo_schedule,
        sample.graph,
        machine,
        6.0,
        mii_result=evaluations[0].mii_result,
    )
