"""Extension: schedule quality by loop class.

The corpus is labeled by provenance (Livermore-style, BLAS, stencil,
recurrence, predicated, mixed, irregular, synthetic).  Splitting the
Table-3 quality metrics by class shows *where* the scheduler works hard:
vectorizable BLAS/stencil loops schedule in one pass at the MII, while
predicated bodies (memory-port pressure from the compare/predicate ops)
and irregular gathers/scatters (conservative serialization) carry the
DeltaII tail.
"""

import statistics
from collections import defaultdict

from repro.analysis import render_table
from repro.core import modulo_schedule


def test_quality_by_category(machine, evaluations, emit, benchmark):
    by_category = defaultdict(list)
    for evaluation in evaluations:
        by_category[evaluation.loop.category].append(evaluation)

    rows = []
    stats = {}
    for category in sorted(by_category):
        group = by_category[category]
        optimal = sum(1 for e in group if e.delta_ii == 0) / len(group)
        mean_ratio = statistics.fmean(e.result.ii_ratio for e in group)
        mean_steps = statistics.fmean(e.schedule_ratio for e in group)
        mean_mii = statistics.fmean(e.mii for e in group)
        stats[category] = (optimal, mean_ratio)
        rows.append(
            [
                category,
                str(len(group)),
                f"{mean_mii:.1f}",
                f"{optimal:.3f}",
                f"{mean_ratio:.3f}",
                f"{mean_steps:.2f}",
            ]
        )
    text = render_table(
        ["category", "loops", "mean MII", "frac II=MII", "mean II/MII", "steps/op"],
        rows,
        title="Schedule quality by loop class (BudgetRatio=6):",
    )
    emit("ext_category_quality", text)

    # Every class stays near-optimal; none collapses.
    for category, (optimal, mean_ratio) in stats.items():
        assert optimal >= 0.6, (category, optimal)
        assert mean_ratio <= 1.15, (category, mean_ratio)

    sample = evaluations[0]
    benchmark(
        modulo_schedule,
        sample.loop.graph,
        machine,
        6.0,
        mii_result=sample.mii_result,
    )
