"""Ablation: operation scheduling vs instruction scheduling (§3.1 footnote).

The paper chooses *operation* scheduling ("picks an operation and
schedules it at whatever time slot is both legal and most desirable")
over *instruction* scheduling ("picks a current time and schedules as
many operations as possible at that time"), remarking only that the
former "seems more natural" for the iterative framework.  This ablation
quantifies the choice over the corpus: optimality rate, mean II/MII and
scheduling effort for both styles.
"""

import statistics

from repro.analysis import render_table
from repro.core import SchedulingFailure, modulo_schedule

SAMPLE = 300
BUDGET_RATIO = 6.0


def _aggregate(evaluations, machine, style):
    optimal = 0
    ratios = []
    steps = 0
    ops = 0
    failures = 0
    for evaluation in evaluations:
        try:
            result = modulo_schedule(
                evaluation.loop.graph,
                machine,
                budget_ratio=BUDGET_RATIO,
                mii_result=evaluation.mii_result,
                style=style,
            )
        except SchedulingFailure:
            failures += 1
            continue
        if result.ii == evaluation.mii:
            optimal += 1
        ratios.append(result.ii / evaluation.mii)
        steps += result.steps_total
        ops += evaluation.loop.graph.n_ops
    return {
        "optimal": optimal / len(evaluations),
        "mean_ratio": statistics.fmean(ratios),
        "inefficiency": steps / ops,
        "failures": failures,
    }


def test_ablation_scheduling_style(machine, evaluations, emit, benchmark):
    sample = evaluations[:SAMPLE]
    results = {
        style: _aggregate(sample, machine, style)
        for style in ("operation", "instruction")
    }
    rows = [
        [
            style,
            f"{r['optimal']:.3f}",
            f"{r['mean_ratio']:.3f}",
            f"{r['inefficiency']:.2f}",
            str(r["failures"]),
        ]
        for style, r in results.items()
    ]
    text = render_table(
        ["style", "frac II=MII", "mean II/MII", "steps/op", "failures"],
        rows,
        title=(
            f"Scheduling-style ablation ({len(sample)} loops, "
            f"BudgetRatio={BUDGET_RATIO}):"
        ),
    )
    emit("ablation_scheduling_style", text)

    operation = results["operation"]
    instruction = results["instruction"]
    # The paper's choice must hold up: operation scheduling finds at
    # least as many optimal IIs at no greater achieved II overall.
    assert operation["optimal"] >= instruction["optimal"] - 1e-9
    assert operation["mean_ratio"] <= instruction["mean_ratio"] + 1e-9
    assert operation["failures"] == 0

    benchmark(
        modulo_schedule,
        sample[0].loop.graph,
        machine,
        BUDGET_RATIO,
        mii_result=sample[0].mii_result,
        style="instruction",
    )
