"""Extension: pre-scheduling unrolling for fractional MII (Section 1).

The paper's flow unrolls the loop body before modulo scheduling "if the
percentage degradation in rounding [the MII] up to the next larger
integer is unacceptably high".  This bench quantifies that: for circuits
with delay/distance ratios that are not integral, the integral MII
overshoots the fractional bound; unrolling by the distance recovers it
exactly, at proportional code growth.
"""

from repro.analysis import render_table
from repro.core import compute_mii, modulo_schedule, recommend_unroll
from repro.core.preunroll import unroll_for_modulo
from repro.ir import DependenceGraph, DependenceKind


def _circuit(machine, delay, distance):
    graph = DependenceGraph(
        machine, name=f"circuit_d{delay}_k{distance}"
    )
    a = graph.add_operation("fadd", dest="a", srcs=("a",))
    b = graph.add_operation("fmul", dest="b", srcs=("a",))
    graph.add_edge(a, b, DependenceKind.FLOW)
    graph.add_edge(b, a, DependenceKind.FLOW, distance=distance,
                   delay=delay - machine.latency("fadd"))
    return graph.seal()


CASES = [
    # (total circuit delay, distance) -> fractional bound delay/distance
    (7, 2),
    (11, 3),
    (13, 4),
    (9, 2),
]


def test_fractional_mii_recovery(machine, emit, benchmark):
    rows = []
    for delay, distance in CASES:
        graph = _circuit(machine, delay, distance)
        base = compute_mii(graph, machine).mii
        recommendation = recommend_unroll(graph, machine, max_factor=6)
        fractional = delay / distance
        rows.append(
            [
                f"delay {delay} / distance {distance}",
                f"{fractional:.2f}",
                str(base),
                f"{recommendation.amortized_mii:.2f}",
                f"{recommendation.factor}x",
                f"{recommendation.degradation_without_unrolling:.1%}",
            ]
        )
        # The recommendation must recover the fractional bound exactly
        # (the circuit is the only constraint in these graphs).
        assert recommendation.amortized_mii <= fractional + 1e-9 or (
            recommendation.amortized_mii == base and base == fractional
        )
        assert recommendation.amortized_mii >= fractional - 1e-9
        # And the unrolled body still schedules at its MII.
        unrolled = unroll_for_modulo(graph, recommendation.factor)
        result = modulo_schedule(unrolled, machine, budget_ratio=6.0)
        assert result.delta_ii == 0

    text = render_table(
        [
            "recurrence circuit",
            "fractional MII",
            "integral MII",
            "amortized after unroll",
            "factor",
            "degradation avoided",
        ],
        rows,
        title="Fractional-MII recovery by pre-scheduling unrolling:",
    )
    emit("ext_fractional_mii", text)

    benchmark(recommend_unroll, _circuit(machine, 7, 2), machine, 4)
