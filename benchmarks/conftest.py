"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures over the
paper-sized corpus (1327 loops) on the reconstructed Cydra 5, prints it,
and writes it to ``benchmarks/results/`` for EXPERIMENTS.md.  Set
``REPRO_BENCH_LOOPS`` to shrink the corpus for quick runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import evaluate_corpus
from repro.machine import cydra5
from repro.workloads import build_corpus
from repro.workloads.corpus import PAPER_CORPUS_SIZE
from repro.workloads.kernels import KERNELS

RESULTS_DIR = Path(__file__).parent / "results"

#: BudgetRatio used for the quality experiments (the paper's Table 3 used
#: 6, "well above the largest value actually needed by any loop").
QUALITY_BUDGET_RATIO = 6.0


def _corpus_size() -> int:
    value = os.environ.get("REPRO_BENCH_LOOPS", "")
    if value:
        return max(len(KERNELS) + 1, int(value))
    return PAPER_CORPUS_SIZE


@pytest.fixture(scope="session")
def machine():
    return cydra5()


@pytest.fixture(scope="session")
def corpus(machine):
    n_synthetic = _corpus_size() - len(KERNELS)
    return build_corpus(machine, n_synthetic=n_synthetic, seed=0)


@pytest.fixture(scope="session")
def evaluations(machine, corpus):
    """Full-corpus evaluation at the quality BudgetRatio, exact MII."""
    return evaluate_corpus(
        corpus, machine, budget_ratio=QUALITY_BUDGET_RATIO, exact_mii=True
    )


@pytest.fixture(scope="session")
def emit():
    """Write a named result artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
