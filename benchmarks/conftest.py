"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures over the
paper-sized corpus (1327 loops) on the reconstructed Cydra 5, prints it,
and writes it to ``benchmarks/results/`` for EXPERIMENTS.md.

The shared ``evaluations`` fixture runs through the corpus-evaluation
engine, so all ``bench_*`` scripts share one warm content-addressed cache
(``benchmarks/.cache``) and only the first run after a change to the
loops, the machine, or the scheduler actually re-schedules anything.
Knobs (environment variables):

* ``REPRO_BENCH_LOOPS``  — shrink the corpus for quick runs;
* ``REPRO_BENCH_JOBS``   — engine worker processes (default: one per CPU);
* ``REPRO_BENCH_CACHE``  — cache directory (default ``benchmarks/.cache``);
* ``REPRO_BENCH_NO_CACHE`` — set to disable caching entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.engine import EvaluationEngine
from repro.machine import cydra5
from repro.workloads import build_corpus
from repro.workloads.corpus import PAPER_CORPUS_SIZE
from repro.workloads.kernels import KERNELS

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(
    os.environ.get("REPRO_BENCH_CACHE", str(Path(__file__).parent / ".cache"))
)

#: BudgetRatio used for the quality experiments (the paper's Table 3 used
#: 6, "well above the largest value actually needed by any loop").
QUALITY_BUDGET_RATIO = 6.0


def _corpus_size() -> int:
    value = os.environ.get("REPRO_BENCH_LOOPS", "")
    if value:
        return max(len(KERNELS) + 1, int(value))
    return PAPER_CORPUS_SIZE


def _engine_jobs() -> int:
    value = os.environ.get("REPRO_BENCH_JOBS", "")
    if value:
        return max(1, int(value))
    return os.cpu_count() or 1


@pytest.fixture(scope="session")
def machine():
    return cydra5()


@pytest.fixture(scope="session")
def corpus(machine):
    n_synthetic = _corpus_size() - len(KERNELS)
    return build_corpus(machine, n_synthetic=n_synthetic, seed=0)


@pytest.fixture(scope="session")
def engine(machine):
    """The shared corpus-evaluation engine (parallel, cached, traced)."""
    from repro.obs import ObsContext

    return EvaluationEngine(
        machine,
        budget_ratio=QUALITY_BUDGET_RATIO,
        exact_mii=True,
        jobs=_engine_jobs(),
        cache_dir=CACHE_DIR,
        use_cache="REPRO_BENCH_NO_CACHE" not in os.environ,
        obs=ObsContext(),
    )


@pytest.fixture(scope="session")
def evaluations(engine, corpus):
    """Full-corpus evaluation at the quality BudgetRatio, exact MII.

    The engine's structured timing report (per-loop phase times, cache
    hit/miss counters, run-level complexity-counter totals) lands in
    ``benchmarks/results/engine_timing.json`` and the full observability
    snapshot (spans + metrics, docs/OBSERVABILITY.md) in
    ``benchmarks/results/engine_obs.jsonl`` for the regression harness.
    """
    from repro.obs.exporters import write_jsonl

    result = engine.evaluate(corpus)
    RESULTS_DIR.mkdir(exist_ok=True)
    result.write_timing_json(RESULTS_DIR / "engine_timing.json")
    write_jsonl(
        engine.obs.to_dict(),
        RESULTS_DIR / "engine_obs.jsonl",
        run={"harness": "benchmarks", "loops": len(corpus),
             "jobs": _engine_jobs()},
    )
    print(f"\n[engine] {result.describe()}")
    if result.failures:
        details = "\n  ".join(f.describe() for f in result.failures)
        raise RuntimeError(
            f"{len(result.failures)} corpus loops failed to evaluate:\n"
            f"  {details}"
        )
    return result.evaluations


@pytest.fixture(scope="session")
def emit():
    """Write a named result artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
