"""Ablation: Table 1's exact VLIW delays versus the conservative column.

Two findings, both straight from the paper's Section 2.2:

1. **Under dynamic single assignment the columns coincide.**  DSA (the
   EVR assumption) removes scalar anti-/output dependences, and the few
   remaining memory anti-dependences point at stores, whose delay the two
   columns nearly agree on — so compiling every DSL kernel under either
   model yields the same MII and II.  That is exactly why the paper
   assumes EVR-based input.

2. **Without DSA the VLIW column wins.**  A scalar recurrence that is
   *not* renamed (``use`` reads ``s``, ``def`` rewrites it) carries a
   flow + anti circuit whose VLIW delay telescopes to 1 —
   ``Latency + (1 - Latency)`` — while the conservative column leaves the
   full ``Latency`` in the circuit: RecMII of 1 versus RecMII equal to
   the operation latency.
"""

import statistics

from repro.analysis import render_table
from repro.core import compute_mii, modulo_schedule
from repro.ir import DelayModel, DependenceGraph, DependenceKind
from repro.loopir import compile_loop_full
from repro.workloads import KERNELS


def _dsa_rows(machine):
    """Part 1: DSL kernels (DSA form) under both models."""
    differing = 0
    vliw_iis = []
    cons_iis = []
    for name in sorted(KERNELS):
        iis = {}
        for model in (DelayModel.VLIW, DelayModel.CONSERVATIVE):
            lowered = compile_loop_full(
                KERNELS[name].source, machine, name=name, delay_model=model
            )
            iis[model] = modulo_schedule(
                lowered.graph, machine, budget_ratio=6.0
            ).ii
        vliw_iis.append(iis[DelayModel.VLIW])
        cons_iis.append(iis[DelayModel.CONSERVATIVE])
        if iis[DelayModel.VLIW] != iis[DelayModel.CONSERVATIVE]:
            differing += 1
    return differing, statistics.fmean(vliw_iis), statistics.fmean(cons_iis)


def _unrenamed_register_reuse(machine, model, latency_opcode):
    """Register reuse without DSA: each iteration overwrites register x.

    ``def`` writes x, ``use`` reads it in the same iteration (flow,
    distance 0); because x is reused rather than renamed, next
    iteration's ``def`` must wait for this iteration's ``use``
    (anti-dependence, distance 1) and for this iteration's ``def``
    (output dependence, distance 1).  The flow + anti circuit has VLIW
    delay ``Latency(def) + (1 - Latency(def)) = 1`` but conservative
    delay ``Latency(def) + 0``.
    """
    graph = DependenceGraph(machine, delay_model=model)
    definition = graph.add_operation(latency_opcode, dest="x", srcs=("a",))
    use = graph.add_operation(latency_opcode, dest="y", srcs=("x",))
    graph.add_edge(definition, use, DependenceKind.FLOW)
    graph.add_edge(use, definition, DependenceKind.ANTI, distance=1)
    graph.add_edge(
        definition, definition, DependenceKind.OUTPUT, distance=1
    )
    return graph.seal()


def test_ablation_delay_models(machine, emit, benchmark):
    differing, vliw_mean, cons_mean = _dsa_rows(machine)

    rows = []
    gaps = {}
    for opcode in ("fadd", "fmul", "fdiv"):
        vliw = compute_mii(
            _unrenamed_register_reuse(machine, DelayModel.VLIW, opcode), machine
        )
        cons = compute_mii(
            _unrenamed_register_reuse(machine, DelayModel.CONSERVATIVE, opcode),
            machine,
        )
        gaps[opcode] = (vliw.rec_mii, cons.rec_mii)
        rows.append(
            [
                f"register reuse, {opcode}",
                str(machine.latency(opcode)),
                str(vliw.rec_mii),
                str(cons.rec_mii),
            ]
        )
    text = render_table(
        ["case", "latency", "RecMII (VLIW)", "RecMII (conservative)"],
        rows,
        title=(
            "Delay-model ablation.  Part 1 — DSA kernels: "
            f"{differing}/{len(KERNELS)} kernels differ "
            f"(mean II {vliw_mean:.2f} vs {cons_mean:.2f}): with EVR-style "
            "renaming the columns coincide.  Part 2 — without renaming:"
        ),
    )
    emit("ablation_delays", text)

    # Part 1: DSA makes the model irrelevant on this corpus.
    assert differing <= len(KERNELS) // 10
    # Part 2: without DSA, conservative delays inflate the RecMII to the
    # full operation latency while VLIW telescopes the circuit to ~1 plus
    # the copy's cycle.
    for opcode, (vliw_rec, cons_rec) in gaps.items():
        assert vliw_rec < cons_rec, opcode
        assert cons_rec >= machine.latency(opcode)

    benchmark(
        compute_mii,
        _unrenamed_register_reuse(machine, DelayModel.VLIW, "fmul"),
        machine,
    )
