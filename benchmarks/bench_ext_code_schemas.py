"""Extension: code-generation schemas and their size/time trade ([36]).

The paper's reference [36] catalogues code schemas for modulo-scheduled
loops; this repository implements three and this bench compares them over
the DSL kernels:

* **explicit** prologue + kernel + epilogue (no hardware support):
  code grows by the fill/drain copies;
* **MVE** (modulo variable expansion, no rotating registers): the kernel
  additionally unrolls by max ceil(lifetime/II);
* **kernel-only** (predication + rotating registers, the Cydra 5 way):
  zero code expansion, paying (SC-1)*II cycles of predicate ramp instead.

The paper's Section 1 claim — "with the appropriate hardware support,
there need be no code expansion whatsoever" — is the bottom row.
"""

import statistics

from repro.analysis import render_table
from repro.codegen import (
    compute_lifetimes,
    emit_kernel_only,
    emit_pipelined_code,
    modulo_variable_expansion,
)
from repro.core import modulo_schedule
from repro.loopir import compile_loop_full
from repro.workloads import KERNELS


def test_code_schema_tradeoff(machine, emit, benchmark):
    explicit_growth = []
    mve_growth = []
    kernel_only_growth = []
    ramp_overhead = []
    for name in sorted(KERNELS):
        lowered = compile_loop_full(KERNELS[name].source, machine, name=name)
        graph = lowered.graph
        result = modulo_schedule(graph, machine, budget_ratio=6.0)
        schedule = result.schedule
        n_ops = graph.n_real_ops

        code = emit_pipelined_code(graph, schedule, use_mve=False)
        prologue, epilogue = code.instance_count()
        explicit_growth.append((prologue + n_ops + epilogue) / n_ops)

        lifetimes = compute_lifetimes(graph, schedule)
        kernel = modulo_variable_expansion(graph, schedule, lifetimes)
        mve_growth.append(
            (prologue + kernel.unroll * n_ops + epilogue) / n_ops
        )

        kernel_only = emit_kernel_only(graph, schedule)
        kernel_only_growth.append(
            sum(len(row) for row in kernel_only.rows) / n_ops
        )
        # Extra cycles the kernel-only schema pays for 100 iterations,
        # relative to the explicit schema.
        n = 100
        explicit_cycles = (n - 1) * result.ii + result.schedule_length
        ramp_overhead.append(
            kernel_only.total_cycles(n) / explicit_cycles - 1.0
        )

    rows = [
        [
            "explicit prologue/kernel/epilogue",
            f"{statistics.fmean(explicit_growth):.2f}x",
            f"{max(explicit_growth):.2f}x",
            "0",
        ],
        [
            "MVE (no rotating registers)",
            f"{statistics.fmean(mve_growth):.2f}x",
            f"{max(mve_growth):.2f}x",
            "0",
        ],
        [
            "kernel-only (predication + rotation)",
            f"{statistics.fmean(kernel_only_growth):.2f}x",
            f"{max(kernel_only_growth):.2f}x",
            f"{statistics.fmean(ramp_overhead):.1%} cycles @ n=100",
        ],
    ]
    text = render_table(
        ["schema", "mean code growth", "worst", "time overhead"],
        rows,
        title=f"Code-generation schemas over {len(KERNELS)} kernels:",
    )
    emit("ext_code_schemas", text)

    # The paper's claim: hardware support removes all code expansion.
    assert all(abs(g - 1.0) < 1e-9 for g in kernel_only_growth)
    # And the software-only schemas pay real growth.
    assert statistics.fmean(explicit_growth) > 2.0
    assert statistics.fmean(mve_growth) >= statistics.fmean(explicit_growth)
    # The predicate-ramp cost is modest for reasonable trip counts.
    assert statistics.fmean(ramp_overhead) < 0.35

    lowered = compile_loop_full(KERNELS["sdot"].source, machine)
    result = modulo_schedule(lowered.graph, machine)
    benchmark(emit_kernel_only, lowered.graph, result.schedule)
