"""Ablation: SCC-at-a-time RecMII versus whole-graph ComputeMinDist.

Section 2.2's key engineering move: computing the RecMII over each SCC
separately keeps the O(N^3) ComputeMinDist affordable, because SCCs are
tiny even when loops are not.  This ablation computes the RecMII both
ways over the corpus, asserts the answers agree, and compares the
MinDist innermost-loop work (the paper's complexity currency).
"""

from repro.analysis import fit_power, render_table
from repro.core import Counters
from repro.core.mii import rec_mii, rec_mii_whole_graph

SAMPLE = 250


def test_ablation_mindist_scope(machine, corpus, emit, benchmark):
    sample = corpus[:SAMPLE]
    per_scc = Counters()
    whole = Counters()
    n_values = []
    per_scc_work = []
    whole_work = []
    for loop in sample:
        before_scc = per_scc.mindist_inner
        before_whole = whole.mindist_inner
        scc_answer = rec_mii(loop.graph, counters=per_scc)
        whole_answer = rec_mii_whole_graph(loop.graph, counters=whole)
        assert scc_answer == whole_answer, loop.name
        n_values.append(loop.graph.n_ops)
        per_scc_work.append(per_scc.mindist_inner - before_scc)
        whole_work.append(whole.mindist_inner - before_whole)

    speedup = whole.mindist_inner / max(1, per_scc.mindist_inner)
    scc_fit = fit_power([n for n, w in zip(n_values, per_scc_work) if w > 0],
                        [w for w in per_scc_work if w > 0])
    whole_fit = fit_power(n_values, whole_work)
    text = render_table(
        ["method", "total MinDist inner steps", "power fit"],
        [
            ["per-SCC (paper)", str(per_scc.mindist_inner), scc_fit.describe()],
            ["whole graph", str(whole.mindist_inner), whole_fit.describe()],
            ["work ratio", f"{speedup:.1f}x", ""],
        ],
        title=f"RecMII computation scope ablation ({len(sample)} loops):",
    )
    emit("ablation_mindist", text)

    # The whole-graph method must agree but cost dramatically more, and
    # grow like N^3 while the per-SCC work stays weakly coupled to N.
    assert speedup >= 10
    assert whole_fit.exponent >= 2.5
    assert scc_fit.exponent <= whole_fit.exponent

    benchmark(rec_mii, sample[0].graph, 1, Counters())
