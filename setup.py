"""Legacy setup shim.

`pip install -e .` needs the `wheel` package for PEP 660 editable builds;
fully offline environments without it can use `python setup.py develop`
instead (or add `src/` to a .pth file).  All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
