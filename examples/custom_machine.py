"""Describe your own machine and see how its structure shapes the II.

Builds a small DSP-style VLIW with a multiply-accumulate pipeline whose
reservation tables share a writeback bus (Figure-1-style complex tables),
schedules an FIR-like kernel on it, and contrasts the result with a
bus-free variant of the same machine.

Run:  python examples/custom_machine.py
"""

from repro import MachineDescription, Opcode, ReservationTable, modulo_schedule
from repro.loopir import compile_loop_full
from repro.machine import render_reservation_tables
from repro.simulator import check_equivalence

SOURCE = """
for i in n:
    acc = acc + h0 * x[i] + h1 * x[i+1]
    y[i] = acc * g
"""


def _front_end_opcodes(mem_table, alu_tables, mul_tables):
    """The opcode set the loop front end emits, on the given units."""
    opcodes = [
        Opcode("load", 4, mem_table),
        Opcode("store", 1, mem_table),
        Opcode("brtop", 1, alu_tables),
    ]
    for name in ("aadd", "asub", "copy", "limm", "select",
                 "cmp_lt", "cmp_le", "cmp_eq", "cmp_ne", "cmp_gt",
                 "cmp_ge", "pand", "por", "pnot",
                 "fadd", "fsub", "fmin", "fmax", "fabs", "fneg"):
        opcodes.append(Opcode(name, 2, alu_tables))
    for name in ("fmul", "mul"):
        opcodes.append(Opcode(name, 3, mul_tables))
    for name in ("fdiv", "div", "fsqrt"):
        opcodes.append(Opcode(name, 12, mul_tables))
    return opcodes


def shared_bus_machine() -> MachineDescription:
    """ALU and MAC pipelines deposit results on one shared bus."""
    resources = ("mem", "alu", "mac0", "mac1", "wb_bus")
    mem = [ReservationTable("mem", [("mem", 0)])]
    alu = [ReservationTable("alu", [("alu", 0), ("wb_bus", 1)])]
    mac = [ReservationTable("mac", [("mac0", 0), ("mac1", 1), ("wb_bus", 2)])]
    return MachineDescription(
        "dsp_shared_bus", resources, _front_end_opcodes(mem, alu, mac)
    )


def private_bus_machine() -> MachineDescription:
    """Same pipelines, private writeback paths."""
    resources = ("mem", "alu", "mac0", "mac1")
    mem = [ReservationTable("mem", [("mem", 0)])]
    alu = [ReservationTable("alu", [("alu", 0)])]
    mac = [ReservationTable("mac", [("mac0", 0), ("mac1", 1)])]
    return MachineDescription(
        "dsp_private_bus", resources, _front_end_opcodes(mem, alu, mac)
    )


def main() -> None:
    shared = shared_bus_machine()
    print("The shared-bus machine's ALU and MAC tables (note wb_bus):\n")
    print(
        render_reservation_tables(
            [shared.opcode("fadd").alternatives[0],
             shared.opcode("fmul").alternatives[0]]
        )
    )
    for machine in (shared, private_bus_machine()):
        lowered = compile_loop_full(SOURCE, machine, name="fir2")
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        report = check_equivalence(lowered, result.schedule, n=40, seed=2)
        print(
            f"\n{machine.name}: ResMII={result.mii_result.res_mii} "
            f"RecMII={result.mii_result.rec_mii} -> II={result.ii}, "
            f"SL={result.schedule_length}, "
            f"steps/op={result.inefficiency:.2f}, "
            f"simulation {'OK' if report.ok else 'FAILED'}"
        )
    print(
        "\nThe shared writeback bus is a real structural hazard: the "
        "scheduler must dodge cross-unit collisions (and sometimes "
        "displace already-placed operations), which can cost initiation "
        "interval relative to the private-bus design."
    )


if __name__ == "__main__":
    main()
