"""Quickstart: software-pipeline a loop in five steps.

Run:  python examples/quickstart.py
"""

from repro import cydra5, modulo_schedule, validate_schedule
from repro.loopir import compile_loop_full
from repro.simulator import check_equivalence

SOURCE = """
for i in n:
    y[i] = y[i] + alpha * x[i]
"""


def main() -> None:
    machine = cydra5()

    # 1. Compile the loop: parse, IF-convert, lower to a dependence graph
    #    in dynamic single assignment form with memory dependence edges.
    lowered = compile_loop_full(SOURCE, machine, name="saxpy")
    graph = lowered.graph
    print(f"compiled {graph.name!r}: {graph.n_real_ops} operations, "
          f"{graph.n_edges} dependence edges")

    # 2. Modulo-schedule it (computes MII = max(ResMII, RecMII), then runs
    #    iterative scheduling with successively larger II until success).
    result = modulo_schedule(graph, machine, budget_ratio=6.0)
    mii = result.mii_result
    print(f"ResMII={mii.res_mii}  RecMII={mii.rec_mii}  MII={mii.mii}")
    print(f"achieved II={result.ii} (DeltaII={result.delta_ii}), "
          f"schedule length={result.schedule_length}, "
          f"stages={result.schedule.stage_count}")

    # 3. The kernel: one new iteration starts every II cycles.
    print()
    print(result.schedule.describe())

    # 4. Statically validate every dependence and the modulo constraint.
    problems = validate_schedule(graph, machine, result.schedule)
    print(f"\nstatic validation: {'OK' if not problems else problems}")

    # 5. Execute the pipelined schedule against the sequential oracle.
    report = check_equivalence(lowered, result.schedule, n=50, seed=1)
    print(f"end-to-end simulation ({report.n} iterations): "
          f"{'OK' if report.ok else report.describe()}")

    speedup = result.schedule_length / result.ii
    print(f"\nsteady-state speedup over non-overlapped execution: "
          f"{speedup:.1f}x (one iteration every {result.ii} cycles instead "
          f"of every {result.schedule_length})")


if __name__ == "__main__":
    main()
