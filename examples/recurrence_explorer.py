"""Recurrences are the other wall: explore RecMII on real kernels.

For three loops — vectorizable, first-order recurrence, second-order
recurrence — this example shows where the MII comes from (resources vs
the critical recurrence circuit), how the scheduler fares against it,
and what that means for execution time versus list scheduling and
unrolling.

Run:  python examples/recurrence_explorer.py
"""

from repro import cydra5, modulo_schedule
from repro.analysis.model import execution_time
from repro.baselines import list_schedule_length, unroll_and_schedule
from repro.loopir import compile_loop_full

KERNELS = {
    "vectorizable (saxpy)": """
for i in n:
    y[i] = y[i] + a * x[i]
""",
    "first-order recurrence (IIR)": """
for i in n:
    s = a0 * x[i] + b1 * s
    y[i] = s
""",
    "second-order recurrence (IIR2)": """
for i in n:
    y[i] = a0 * x[i] + b1 * y[i-1] + b2 * y[i-2]
""",
}

TRIP = 1000


def main() -> None:
    machine = cydra5()
    for title, source in KERNELS.items():
        lowered = compile_loop_full(source, machine, name=title)
        result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
        mii = result.mii_result
        limiter = "resources" if mii.res_mii >= mii.rec_mii else "recurrence"
        sl = result.schedule_length
        list_sl = list_schedule_length(lowered.graph, machine)
        pipelined = execution_time(1, TRIP, sl, result.ii)
        sequential = execution_time(1, TRIP, list_sl, list_sl)
        unrolled4 = unroll_and_schedule(lowered.graph, machine, 4)
        unrolled_time = execution_time(
            1, TRIP // 4, unrolled4.schedule_length, unrolled4.schedule_length
        )
        print(f"=== {title}")
        print(
            f"  ResMII={mii.res_mii}  RecMII={mii.rec_mii}  "
            f"MII={mii.mii}  (limited by {limiter})"
        )
        print(f"  achieved II={result.ii}, SL={sl}")
        print(
            f"  non-trivial SCCs: {mii.n_nontrivial_sccs} "
            f"(sizes {mii.scc_sizes[:3]}...)"
        )
        print(f"  {TRIP}-iteration execution time:")
        print(f"    modulo scheduled : {pipelined:>8} cycles")
        print(
            f"    unrolled 4x      : {unrolled_time:>8} cycles "
            f"(4x code growth)"
        )
        print(f"    list scheduled   : {sequential:>8} cycles")
        print(
            f"    speedup vs list  : {sequential / pipelined:>8.2f}x"
        )
        print()
    print(
        "Vectorizable loops pipeline down to the resource bound; "
        "recurrences clamp the II at Delay(c)/Distance(c) no matter how "
        "many functional units the machine has."
    )


if __name__ == "__main__":
    main()
