"""A miniature of the paper's whole evaluation, in one run.

Builds a 200-loop corpus (every hand-written kernel plus calibrated
synthetic graphs), evaluates it at BudgetRatio 6, and prints Table-3-style
program and quality statistics plus the DeltaII census — a quick check
that the paper's headline claims hold on your machine model.

Run:  python examples/corpus_report.py
"""

from collections import Counter

from repro import cydra5
from repro.analysis import distribution_row, evaluate_corpus, render_table
from repro.workloads import build_corpus


def main() -> None:
    machine = cydra5()
    corpus = build_corpus(machine, n_synthetic=154, seed=0)
    print(f"evaluating {len(corpus)} loops on {machine.name!r}...")
    evaluations = evaluate_corpus(corpus, machine, budget_ratio=6.0)

    rows = [
        distribution_row(
            "Number of operations", [e.n_real_ops for e in evaluations], 4
        ),
        distribution_row("MII", [e.mii for e in evaluations], 1),
        distribution_row("II - MII", [e.delta_ii for e in evaluations], 0),
        distribution_row(
            "II / MII", [e.result.ii_ratio for e in evaluations], 1
        ),
        distribution_row(
            "Schedule length (ratio)", [e.sl_ratio for e in evaluations], 1
        ),
        distribution_row(
            "Nodes scheduled (ratio)",
            [e.schedule_ratio for e in evaluations],
            1,
        ),
    ]
    print()
    print(
        render_table(
            ["Measurement", "Min", "Freq(min)", "Median", "Mean", "Max"],
            [row.cells() for row in rows],
            title="Corpus statistics (Table 3 style):",
        )
    )

    census = Counter(e.delta_ii for e in evaluations)
    optimal = census[0] / len(evaluations)
    print(
        f"\nII = MII for {optimal:.1%} of loops "
        f"(paper: 96%); DeltaII census: "
        + ", ".join(f"{d}:{c}" for d, c in sorted(census.items()))
    )

    worst = max(evaluations, key=lambda e: e.result.ii_ratio)
    print(
        f"hardest loop: {worst.loop.name!r} "
        f"(II={worst.ii} vs MII={worst.mii})"
    )


if __name__ == "__main__":
    main()
