"""Watch the scheduler work, then look at the pipeline it built.

Three views of one modulo-scheduled loop:

1. the scheduling *trace* — every pick/place/force/displace decision the
   iterative algorithm makes (on a machine with nasty shared-bus
   reservation tables, so displacement actually happens);
2. the *resource Gantt* — the kernel as a resource x slot grid;
3. the *pipeline diagram* and *lifetime chart* — iterations overlapping
   in time and the value lifetimes that set the register cost.

Run:  python examples/pipeline_visualizer.py
"""

from repro import cydra5, modulo_schedule
from repro.codegen import register_pressure
from repro.core import ScheduleTrace
from repro.loopir import compile_loop_full
from repro.viz import lifetime_chart, pipeline_diagram, resource_gantt

SOURCE = """
for i in n:
    t = a[i] * w0 + b[i] * w1
    u = t * t - a[i]
    s = s + u
    c[i] = u * 0.25
"""


def main() -> None:
    machine = cydra5()
    lowered = compile_loop_full(SOURCE, machine, name="blend")
    trace = ScheduleTrace()
    result = modulo_schedule(
        lowered.graph, machine, budget_ratio=6.0, trace=trace
    )

    print("=== scheduling trace (first 30 decisions) ===")
    print(trace.render(lowered.graph, limit=30))
    displaced = len(trace.displacements())
    forced = len(trace.forced())
    print(
        f"\ntotal: {len(trace.placements())} placements, "
        f"{forced} forced, {displaced} displacements over "
        f"{len(trace.attempts())} candidate II(s); "
        f"forward progress invariant: {trace.forward_progress_holds()}"
    )

    print(f"\n=== kernel resource occupancy (II={result.ii}) ===")
    print(resource_gantt(lowered.graph, machine, result.schedule))

    print("\n=== the software pipeline ===")
    print(pipeline_diagram(lowered.graph, result.schedule, iterations=5))

    print("\n=== value lifetimes ===")
    print(lifetime_chart(lowered.graph, result.schedule))
    pressure = register_pressure(lowered.graph, result.schedule)
    print(f"\n{pressure.describe()}")


if __name__ == "__main__":
    main()
