"""Software-pipelining a WHILE-loop: speculation with an alive predicate.

DO-loops have a known trip count, so overlapping iterations is safe.  A
WHILE-loop doesn't — the pipeline must *speculate*: iterations beyond the
(unknown) exit start executing, and an ``alive`` predicate recurrence
(alive[k] = alive[k-1] and cond[k]) keeps their stores from committing.

This example pipelines a damped accumulation that stops at a threshold,
shows the alive guard in the lowered code, and proves on concrete data
that exactly the right iterations took effect.

Run:  python examples/while_pipeline.py
"""

from repro import cydra5, modulo_schedule
from repro.loopir import compile_loop_full
from repro.simulator import make_initial_state, run_pipelined, run_reference

SOURCE = """
for i in n while s < threshold:
    s = s + x[i] * gain
    y[i] = s
"""


def main() -> None:
    machine = cydra5()
    lowered = compile_loop_full(SOURCE, machine, name="while_accumulate")
    graph = lowered.graph

    alive = graph.operation(lowered.alive_op)
    print("lowered loop (note the alive recurrence and guarded store):")
    for op in graph.real_operations():
        marker = "  <- alive predicate" if op.index == lowered.alive_op else ""
        guard = f" (guarded by {op.predicate})" if op.predicate else ""
        print(f"  {op.describe()}{guard}{marker}")

    result = modulo_schedule(graph, machine, budget_ratio=6.0)
    print(
        f"\nII={result.ii} (MII {result.mii_result.mii}), "
        f"SL={result.schedule_length}, stages={result.schedule.stage_count}"
        f" — up to {result.schedule.stage_count} iterations in flight,"
        " all but the oldest speculative near the exit."
    )

    n = 16
    state = make_initial_state(lowered, n, seed=0)
    state.scalars["s"] = 0.0
    state.scalars["gain"] = 1.0
    state.scalars["threshold"] = 4.5
    for i in range(n):
        state.arrays["x"][i] = 1.0  # s reaches 4.5 after 5 iterations
        state.arrays["y"][i] = -1.0

    reference = run_reference(lowered.loop, state.copy(), n)
    pipelined = run_pipelined(lowered, result.schedule, state.copy(), n)
    mismatches = reference.differences(pipelined)
    print(f"\nequivalence vs sequential oracle: "
          f"{'OK' if not mismatches else mismatches}")
    print(f"final s = {pipelined.scalars['s']} (expected 5.0: five "
          "iterations before s < 4.5 fails)")
    written = [
        i for i in range(n) if pipelined.arrays["y"][i] != -1.0
    ]
    print(f"y written for iterations {written} — the speculative "
          f"iterations {written[-1] + 1}..{n - 1} issued in the pipeline "
          "but their stores were squashed by the alive guard.")


if __name__ == "__main__":
    main()
