"""From kernel schedule to loop code: the back end, step by step.

Shows everything that happens after the modulo scheduler succeeds:
value lifetimes, modulo variable expansion (for machines without rotating
registers), rotating-register allocation (for machines with them), and
the explicit prologue / kernel / epilogue layout.

Run:  python examples/codegen_tour.py
"""

from repro import cydra5, modulo_schedule
from repro.codegen import (
    allocate_rotating,
    compute_lifetimes,
    emit_pipelined_code,
    modulo_variable_expansion,
)
from repro.codegen.rotation import verify_rotating_allocation
from repro.loopir import compile_loop_full

SOURCE = """
for i in n:
    s = s + x[i] * y[i]
"""


def main() -> None:
    machine = cydra5()
    lowered = compile_loop_full(SOURCE, machine, name="sdot")
    result = modulo_schedule(lowered.graph, machine, budget_ratio=6.0)
    graph, schedule = lowered.graph, result.schedule
    print(
        f"schedule: II={result.ii}, SL={result.schedule_length}, "
        f"stages={schedule.stage_count}\n"
    )

    print("value lifetimes (definition to last use, across iterations):")
    lifetimes = compute_lifetimes(graph, schedule)
    for op, lifetime in sorted(lifetimes.items()):
        operation = graph.operation(op)
        print(
            f"  op{op:<3} {operation.opcode:<7} "
            f"[{lifetime.start:>3}, {lifetime.end:>3}]  "
            f"length {lifetime.length:>3}  "
            f"live instances {lifetime.instances_at(result.ii)}"
        )

    print("\n--- without rotating registers: modulo variable expansion ---")
    kernel = modulo_variable_expansion(graph, schedule, lifetimes)
    print(
        f"kernel unrolled {kernel.unroll}x -> {kernel.length} cycles, "
        f"{kernel.code_growth(graph.n_real_ops):.1f}x code growth"
    )
    print(kernel.render())

    print("\n--- with rotating registers: block allocation ---")
    allocation = allocate_rotating(graph, schedule, lifetimes)
    print(allocation.describe())
    problems = verify_rotating_allocation(graph, schedule, allocation)
    print(f"allocation safety check: {'OK' if not problems else problems}")

    print("\n--- explicit pipeline layout ---")
    code = emit_pipelined_code(graph, schedule, use_mve=False)
    prologue, epilogue = code.instance_count()
    print(
        f"prologue {code.prologue_length} cycles ({prologue} op instances), "
        f"epilogue {code.epilogue_length} cycles ({epilogue} op instances)"
    )
    print(code.render(graph))


if __name__ == "__main__":
    main()
