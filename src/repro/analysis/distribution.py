"""Distribution statistics in the paper's Table 3 format.

Each measurement is summarized by five numbers: the minimum value the
measurement can possibly take, the observed frequency of that minimum, the
median, the mean, and the observed maximum.  The skew signature the paper
highlights — median well below mean, long tail — falls out of the same
format.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence, Union

Number = Union[int, float]


@dataclass(frozen=True)
class DistributionRow:
    """One row of a Table-3-style summary."""

    name: str
    minimum_possible: Number
    frequency_of_minimum: float
    median: float
    mean: float
    maximum: Number

    def cells(self) -> tuple:
        """The row formatted as table cells (strings)."""
        return (
            self.name,
            _fmt(self.minimum_possible),
            f"{self.frequency_of_minimum:.3f}",
            f"{self.median:.2f}",
            f"{self.mean:.2f}",
            _fmt(self.maximum),
        )


def _fmt(value: Number) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.2f}"


def distribution_row(
    name: str,
    values: Sequence[Number],
    minimum_possible: Number,
    tolerance: float = 1e-9,
) -> DistributionRow:
    """Summarize ``values`` as one Table-3 row.

    ``frequency_of_minimum`` is the fraction of values equal (within
    ``tolerance``) to ``minimum_possible``.
    """
    if not values:
        raise ValueError(f"measurement {name!r} has no values")
    at_minimum = sum(
        1 for v in values if abs(v - minimum_possible) <= tolerance
    )
    return DistributionRow(
        name=name,
        minimum_possible=minimum_possible,
        frequency_of_minimum=at_minimum / len(values),
        median=float(statistics.median(values)),
        mean=float(statistics.fmean(values)),
        maximum=max(values),
    )
