"""Evaluation harness: the statistics of Section 4.

* :mod:`repro.analysis.distribution` — the Table-3 row format
  (minimum possible value, frequency of the minimum, median, mean, max);
* :mod:`repro.analysis.model` — the execution-time model
  ``EntryFreq*SL + (LoopFreq-EntryFreq)*II`` and its lower bound;
* :mod:`repro.analysis.regression` — least-mean-square fits of counter
  data against N for the Table-4 complexity study;
* :mod:`repro.analysis.runner` — one-stop evaluation of a corpus loop
  (MII, modulo schedule, list-schedule and MinDist lower bounds, counters);
* :mod:`repro.analysis.engine` — the parallel, content-addressed,
  fault-tolerant corpus-evaluation engine (process-pool fan-out, on-disk
  result cache, watchdog timeouts, crash-isolated retries,
  checkpoint/resume, degradation ladder);
* :mod:`repro.analysis.resilience` — the engine's resilience policies
  (failure taxonomy, retry backoff, result journal, quarantine);
* :mod:`repro.analysis.faultinject` — deterministic fault injection for
  the resilience test-suite (``REPRO_FAULT_INJECT``);
* :mod:`repro.analysis.report` — plain-text table/series rendering.
"""

from repro.analysis.distribution import DistributionRow, distribution_row
from repro.analysis.engine import (
    CorpusEvaluation,
    EvaluationEngine,
    LoopFailure,
    LoopTiming,
    cache_key,
    evaluation_from_dict,
    evaluation_to_dict,
)
from repro.analysis.faultinject import FaultPlan, parse_fault_spec
from repro.analysis.model import execution_time, execution_time_bound
from repro.analysis.resilience import (
    Deadline,
    DeadlineExceeded,
    ResultJournal,
    RetryPolicy,
    classify_failure,
    load_quarantine,
)
from repro.analysis.regression import (
    counter_totals,
    fit_linear,
    fit_quadratic,
    fit_power,
    load_obs_records,
    load_timing_report,
    timing_speedup,
)
from repro.analysis.runner import LoopEvaluation, evaluate_loop, evaluate_corpus
from repro.analysis.report import (
    render_obs_summary,
    render_phase_summary,
    render_series,
    render_table,
)
from repro.analysis.tables import table3_rows

__all__ = [
    "CorpusEvaluation",
    "Deadline",
    "DeadlineExceeded",
    "DistributionRow",
    "EvaluationEngine",
    "FaultPlan",
    "LoopFailure",
    "LoopTiming",
    "ResultJournal",
    "RetryPolicy",
    "cache_key",
    "classify_failure",
    "load_quarantine",
    "parse_fault_spec",
    "distribution_row",
    "evaluation_from_dict",
    "evaluation_to_dict",
    "execution_time",
    "execution_time_bound",
    "counter_totals",
    "fit_linear",
    "fit_quadratic",
    "fit_power",
    "load_obs_records",
    "load_timing_report",
    "timing_speedup",
    "LoopEvaluation",
    "evaluate_loop",
    "evaluate_corpus",
    "render_obs_summary",
    "render_phase_summary",
    "render_table",
    "render_series",
    "table3_rows",
]
