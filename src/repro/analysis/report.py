"""Plain-text rendering of tables and series for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[Tuple[float, Sequence[float]]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an x-vs-many-y series as an aligned text block (Figure 6)."""
    headers = [x_label] + list(y_labels)
    rows = [
        [f"{x:g}"] + [f"{y:.{precision}f}" for y in ys] for x, ys in points
    ]
    return render_table(headers, rows, title=title)


def render_phase_summary(
    phase_seconds, title: str = "engine phase seconds:"
) -> str:
    """Render an engine run's per-phase time totals, largest first.

    ``phase_seconds`` is the aggregate produced by
    ``CorpusEvaluation.phase_seconds()`` — phase name to seconds, with
    the synthetic ``"total"`` (and, on cache hits, ``"load"``) keys.  The
    ``"total"`` row is pinned last.
    """
    named = [(k, v) for k, v in phase_seconds.items() if k != "total"]
    named.sort(key=lambda item: (-item[1], item[0]))
    if "total" in phase_seconds:
        named.append(("total", phase_seconds["total"]))
    rows = [[name, f"{seconds:.3f}"] for name, seconds in named]
    return render_table(["phase", "seconds"], rows, title=title)


def render_phase_profile(run_id, run, profile) -> str:
    """Render one stored run's self-time phase profile.

    ``profile`` is the :func:`repro.obs.analyze.phase_profile` output
    (a list of ``PhaseStat``); ``run`` the store's run row dict.
    """
    bits = [f"run {run_id}"]
    if run.get("n_loops"):
        bits.append(f"{run['n_loops']} loops")
    if run.get("n_failures"):
        bits.append(f"{run['n_failures']} failures")
    if run.get("wall_seconds"):
        bits.append(f"{run['wall_seconds']:.2f}s wall")
    rows = [
        [
            stat.name,
            str(stat.count),
            f"{stat.self_total:.3f}",
            f"{stat.mean:.6f}",
            f"{stat.p50:.6f}",
            f"{stat.p95:.6f}",
            f"{stat.p99:.6f}",
            f"{stat.max:.6f}",
        ]
        for stat in profile
    ]
    return render_table(
        ["phase", "count", "self s", "mean", "p50", "p95", "p99", "max"],
        rows,
        title=f"phase profile ({', '.join(bits)}):",
    )


def render_run_diff(diff) -> str:
    """Render a :class:`repro.obs.analyze.RunDiff` for humans."""
    lines: List[str] = [
        f"diff {diff.base_id} -> {diff.other_id}: "
        + ("CLEAN" if diff.clean else
           f"{len(diff.regressions)} phase regression(s), "
           f"{len(diff.new_failure_kinds)} new failure kind(s)")
    ]

    def block(title, deltas):
        rows = [
            [d.name, f"{d.base:.3f}", f"{d.other:.3f}", f"{d.delta:+.3f}",
             f"{d.ratio:.2f}x" if d.ratio is not None else "new"]
            for d in deltas
        ]
        if rows:
            lines.append(
                render_table(
                    ["phase", "base s", "other s", "delta", "ratio"],
                    rows, title=title,
                )
            )

    block("regressions:", diff.regressions)
    block("improvements:", diff.improvements)
    if diff.new_failure_kinds:
        lines.append(
            "new failure kinds: " + ", ".join(diff.new_failure_kinds)
        )
    if diff.vanished_failure_kinds:
        lines.append(
            "vanished failure kinds: "
            + ", ".join(diff.vanished_failure_kinds)
        )
    rate = diff.cache_hit_rate
    if rate.get("base") is not None or rate.get("other") is not None:
        def pct(value):
            return f"{value:.1%}" if value is not None else "n/a"

        lines.append(
            f"cache hit rate: {pct(rate.get('base'))} -> "
            f"{pct(rate.get('other'))}"
        )
    if diff.resilience_deltas:
        lines.append(
            "resilience deltas: "
            + ", ".join(
                f"{name} {value:+g}"
                for name, value in sorted(diff.resilience_deltas.items())
            )
        )
    if diff.slower_loops:
        rows = [
            [entry["loop"], f"{entry['base']:.3f}", f"{entry['other']:.3f}",
             f"{entry['delta']:+.3f}"]
            for entry in diff.slower_loops
        ]
        lines.append(
            render_table(
                ["loop", "base s", "other s", "delta"],
                rows, title="slowest-moving loops:",
            )
        )
    return "\n\n".join(lines)


def render_top_loops(run_id, by, ranked) -> str:
    """Render :func:`repro.obs.analyze.top_loops` output."""
    def cell(value, fmt="{}"):
        return fmt.format(value) if value is not None else ""

    rows = [
        [
            str(entry["idx"]),
            entry.get("name") or "",
            cell(entry.get("wall"), "{:.3f}"),
            cell(entry.get("ii")),
            cell(entry.get("mii")),
            cell(entry.get("slack")),
            cell(entry.get("attempts")),
            cell(entry.get("displaced")),
            "yes" if entry.get("cache_hit") else "",
            entry.get("failure_kind") or "",
        ]
        for entry in ranked
    ]
    return render_table(
        ["idx", "loop", "wall s", "II", "MII", "slack", "attempts",
         "displaced", "hit", "failure"],
        rows,
        title=f"top {len(ranked)} loops by {by} (run {run_id}):",
    )


def render_obs_summary(snapshot, title: str = "observability summary:") -> str:
    """Text exporter for an ``ObsContext.to_dict()`` snapshot.

    Three blocks: spans aggregated by name (count, total and mean
    seconds, longest first), then the counter and histogram registries.
    This is the human-facing view of the same record the JSONL and
    Chrome exporters serialize.
    """
    lines: List[str] = [title] if title else []

    by_name = {}
    for span in snapshot.get("spans", ()):
        count, total = by_name.get(span["name"], (0, 0.0))
        by_name[span["name"]] = (count + 1, total + span["dur"])
    rows = [
        [name, str(count), f"{total:.3f}", f"{total / count:.6f}"]
        for name, (count, total) in sorted(
            by_name.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
    if rows:
        lines.append(
            render_table(["span", "count", "total s", "mean s"], rows)
        )

    metrics = snapshot.get("metrics", {})
    counter_rows = [
        [name, f"{value:g}"]
        for name, value in sorted(metrics.get("counters", {}).items())
    ]
    if counter_rows:
        lines.append(render_table(["counter", "value"], counter_rows))
    histogram_rows = [
        [
            name,
            str(data["count"]),
            f"{data['total']:g}",
            f"{data['min']:g}",
            f"{data['max']:g}",
        ]
        for name, data in sorted(metrics.get("histograms", {}).items())
        if data["count"]
    ]
    if histogram_rows:
        lines.append(
            render_table(
                ["histogram", "count", "sum", "min", "max"], histogram_rows
            )
        )
    return "\n\n".join(lines)
