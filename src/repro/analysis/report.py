"""Plain-text rendering of tables and series for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[Tuple[float, Sequence[float]]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an x-vs-many-y series as an aligned text block (Figure 6)."""
    headers = [x_label] + list(y_labels)
    rows = [
        [f"{x:g}"] + [f"{y:.{precision}f}" for y in ys] for x, ys in points
    ]
    return render_table(headers, rows, title=title)


def render_phase_summary(
    phase_seconds, title: str = "engine phase seconds:"
) -> str:
    """Render an engine run's per-phase time totals, largest first.

    ``phase_seconds`` is the aggregate produced by
    ``CorpusEvaluation.phase_seconds()`` — phase name to seconds, with
    the synthetic ``"total"`` (and, on cache hits, ``"load"``) keys.  The
    ``"total"`` row is pinned last.
    """
    named = [(k, v) for k, v in phase_seconds.items() if k != "total"]
    named.sort(key=lambda item: (-item[1], item[0]))
    if "total" in phase_seconds:
        named.append(("total", phase_seconds["total"]))
    rows = [[name, f"{seconds:.3f}"] for name, seconds in named]
    return render_table(["phase", "seconds"], rows, title=title)


def render_obs_summary(snapshot, title: str = "observability summary:") -> str:
    """Text exporter for an ``ObsContext.to_dict()`` snapshot.

    Three blocks: spans aggregated by name (count, total and mean
    seconds, longest first), then the counter and histogram registries.
    This is the human-facing view of the same record the JSONL and
    Chrome exporters serialize.
    """
    lines: List[str] = [title] if title else []

    by_name = {}
    for span in snapshot.get("spans", ()):
        count, total = by_name.get(span["name"], (0, 0.0))
        by_name[span["name"]] = (count + 1, total + span["dur"])
    rows = [
        [name, str(count), f"{total:.3f}", f"{total / count:.6f}"]
        for name, (count, total) in sorted(
            by_name.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
    if rows:
        lines.append(
            render_table(["span", "count", "total s", "mean s"], rows)
        )

    metrics = snapshot.get("metrics", {})
    counter_rows = [
        [name, f"{value:g}"]
        for name, value in sorted(metrics.get("counters", {}).items())
    ]
    if counter_rows:
        lines.append(render_table(["counter", "value"], counter_rows))
    histogram_rows = [
        [
            name,
            str(data["count"]),
            f"{data['total']:g}",
            f"{data['min']:g}",
            f"{data['max']:g}",
        ]
        for name, data in sorted(metrics.get("histograms", {}).items())
        if data["count"]
    ]
    if histogram_rows:
        lines.append(
            render_table(
                ["histogram", "count", "sum", "min", "max"], histogram_rows
            )
        )
    return "\n\n".join(lines)
