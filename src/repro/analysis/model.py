"""The execution-time model of Section 4.3.

Total time spent in a loop, over all visits, assuming no stalls::

    EntryFreq * SL + (LoopFreq - EntryFreq) * II

Each entry pays the pipeline fill/drain once (SL, the single-iteration
schedule length) and each subsequent iteration costs II.  Except for tiny
trip counts, the II term dominates, which is why II is the primary metric
of schedule quality and SL the secondary one.
"""

from __future__ import annotations


def execution_time(entry_freq: int, loop_freq: int, sl: int, ii: int) -> int:
    """The paper's execution-time formula for one loop."""
    if entry_freq < 0 or loop_freq < entry_freq:
        raise ValueError(
            f"need 0 <= entry_freq <= loop_freq, got {entry_freq}, {loop_freq}"
        )
    return entry_freq * sl + (loop_freq - entry_freq) * ii


def execution_time_bound(
    entry_freq: int, loop_freq: int, sl_lower_bound: int, mii: int
) -> int:
    """Lower bound on execution time: the formula at the SL and II bounds.

    Neither bound is necessarily achievable (the paper notes this twice),
    so ratios against this bound understate true schedule quality.
    """
    return execution_time(entry_freq, loop_freq, sl_lower_bound, mii)
