"""The complete Table 3, as a reusable builder.

The two Table-3 benchmarks, the CLI's ``corpus`` command and the
``corpus_report`` example all print subsets of the same eleven rows; this
module builds them all from a list of
:class:`~repro.analysis.runner.LoopEvaluation` so every consumer agrees
on definitions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.distribution import DistributionRow, distribution_row
from repro.analysis.runner import LoopEvaluation


def table3_rows(evaluations: Sequence[LoopEvaluation]) -> List[DistributionRow]:
    """All eleven Table-3 rows, in the paper's order."""
    executed = [e for e in evaluations if e.loop.executed]
    per_scc_sizes = []
    for evaluation in evaluations:
        for component in evaluation.mii_result.components:
            ops = [
                op
                for op in component
                if not evaluation.loop.graph.operation(op).is_pseudo
            ]
            if ops:
                per_scc_sizes.append(len(ops))
    return [
        distribution_row(
            "Number of operations", [e.n_real_ops for e in evaluations], 4
        ),
        distribution_row("MII", [e.mii for e in evaluations], 1),
        distribution_row(
            "Minimum modulo schedule length",
            [e.sl_bound_at_mii for e in evaluations],
            4,
        ),
        distribution_row(
            "max(0, RecMII - ResMII)",
            [
                max(0, e.mii_result.rec_mii - e.mii_result.res_mii)
                for e in evaluations
            ],
            0,
        ),
        distribution_row(
            "Number of non-trivial SCCs",
            [e.mii_result.n_nontrivial_sccs for e in evaluations],
            0,
        ),
        distribution_row("Number of nodes per SCC", per_scc_sizes, 1),
        distribution_row("II - MII", [e.delta_ii for e in evaluations], 0),
        distribution_row(
            "II / MII", [e.result.ii_ratio for e in evaluations], 1
        ),
        distribution_row(
            "Schedule length (ratio)", [e.sl_ratio for e in evaluations], 1
        ),
        distribution_row(
            "Execution time (ratio)",
            [e.exec_ratio for e in (executed or evaluations)],
            1,
        ),
        distribution_row(
            "Number of nodes scheduled (ratio)",
            [e.schedule_ratio for e in evaluations],
            1,
        ),
    ]
