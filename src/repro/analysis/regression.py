"""Least-mean-square fits for the complexity study (Section 4.4, Table 4).

The paper fits polynomials in N (operations per loop) to the measured
innermost-loop execution counts: E = 3.0036N, MinDist inner = 11.9133N,
HeightR = 4.5021N, Estart = 3.3321N, FindTimeSlot = 0.0587N^2 + ...; and
infers the empirical order.  These helpers reproduce those fits and also
provide a log-log power fit, whose exponent is a scale-free order
estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """``y ~ slope * x (+ intercept)`` with the residual std deviation."""

    slope: float
    intercept: float
    residual_std: float

    def describe(self, x_name: str = "N") -> str:
        """Render the fit as e.g. ``3.0036N (residual std 5.5)``."""
        if self.intercept:
            return (
                f"{self.slope:.4f}{x_name} + {self.intercept:.4f} "
                f"(residual std {self.residual_std:.1f})"
            )
        return f"{self.slope:.4f}{x_name} (residual std {self.residual_std:.1f})"


@dataclass(frozen=True)
class QuadraticFit:
    """``y ~ a*x^2 + b*x + c``."""

    a: float
    b: float
    c: float
    residual_std: float

    def describe(self, x_name: str = "N") -> str:
        """Render the fit as ``a N^2 + b N + c``."""
        return (
            f"{self.a:.4f}{x_name}^2 + {self.b:.4f}{x_name} + {self.c:.4f} "
            f"(residual std {self.residual_std:.1f})"
        )


@dataclass(frozen=True)
class PowerFit:
    """``y ~ scale * x^exponent`` (log-log least squares)."""

    exponent: float
    scale: float

    def describe(self, x_name: str = "N") -> str:
        """Render the fit as ``scale * N^exponent``."""
        return f"{self.scale:.3f} * {x_name}^{self.exponent:.2f}"


def _residual_std(y: np.ndarray, predicted: np.ndarray) -> float:
    residuals = y - predicted
    if len(residuals) < 2:
        return 0.0
    return float(np.std(residuals, ddof=1))


def fit_linear(
    x: Sequence[float], y: Sequence[float], through_origin: bool = True
) -> LinearFit:
    """LMS fit of a line; through the origin by default, as in the paper."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size == 0 or xs.size != ys.size:
        raise ValueError("x and y must be equal-length, non-empty")
    if through_origin:
        denominator = float(np.dot(xs, xs))
        if denominator == 0.0:
            raise ValueError("cannot fit through origin with all-zero x")
        slope = float(np.dot(xs, ys)) / denominator
        return LinearFit(slope, 0.0, _residual_std(ys, slope * xs))
    slope, intercept = np.polyfit(xs, ys, 1)
    return LinearFit(
        float(slope),
        float(intercept),
        _residual_std(ys, slope * xs + intercept),
    )


def fit_quadratic(x: Sequence[float], y: Sequence[float]) -> QuadraticFit:
    """LMS fit of a quadratic, as the paper uses for FindTimeSlot."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size < 3:
        raise ValueError("need at least 3 points for a quadratic fit")
    a, b, c = np.polyfit(xs, ys, 2)
    predicted = a * xs * xs + b * xs + c
    return QuadraticFit(float(a), float(b), float(c), _residual_std(ys, predicted))


def load_timing_report(path) -> dict:
    """Load an engine timing report (see ``CorpusEvaluation.timing_report``).

    The regression harness compares these documents across runs — e.g. a
    cold run against a warm-cache run, or the current build against a
    baseline — so the loader validates the format marker up front.
    """
    import json
    from pathlib import Path

    data = json.loads(Path(path).read_text())
    expected = "repro.engine-timing.v1"
    if not isinstance(data, dict) or data.get("format") != expected:
        raise ValueError(
            f"{path}: not an engine timing report "
            f"(format {data.get('format') if isinstance(data, dict) else data!r})"
        )
    return data


def load_obs_records(path) -> list:
    """Load and schema-validate a ``repro.obs.v1``/``v2`` JSONL export.

    Returns the decoded record list; raises :class:`ValueError` with the
    validator's findings when the file is not schema-valid.  This is the
    regression harness's entry point for telemetry diffs — the same
    validator gates CI (``python -m repro.obs.check``).
    """
    import json
    from pathlib import Path

    from repro.obs.schema import validate_jsonl

    text = Path(path).read_text()
    errors = validate_jsonl(text)
    if errors:
        raise ValueError(
            f"{path}: not a valid repro.obs export: " + "; ".join(errors[:5])
        )
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def phase_regressions(
    baseline,
    candidate,
    noise_ratio: float = 0.25,
    noise_floor: float = 0.05,
) -> dict:
    """Noise-gated per-phase regressions between two timing reports.

    Both arguments are timing reports (dicts) or paths.  Returns
    ``{phase: (base_seconds, cand_seconds)}`` for every phase whose
    total grew by more than ``max(noise_floor, noise_ratio * base)`` —
    the same gate the observatory's ``repro obs diff`` applies to span
    self time (:func:`repro.obs.analyze.diff_runs`), here available to
    harnesses that only kept the flat reports.
    """
    if not isinstance(baseline, dict):
        baseline = load_timing_report(baseline)
    if not isinstance(candidate, dict):
        candidate = load_timing_report(candidate)
    base_phases = baseline.get("phase_seconds") or {}
    cand_phases = candidate.get("phase_seconds") or {}
    regressions = {}
    for name in sorted(set(base_phases) | set(cand_phases)):
        if name == "total":
            continue
        base = float(base_phases.get(name, 0.0))
        cand = float(cand_phases.get(name, 0.0))
        if cand - base > max(noise_floor, noise_ratio * base):
            regressions[name] = (base, cand)
    return regressions


def counter_totals(report) -> dict:
    """The run-level counter aggregate of a timing report (or its path).

    Returns the ``counters`` snapshot (empty for pre-telemetry reports),
    letting the harness compare Table-4-style complexity counters across
    runs and job counts.
    """
    if not isinstance(report, dict):
        report = load_timing_report(report)
    return dict(report.get("counters") or {})


def timing_speedup(baseline, candidate) -> float:
    """Wall-clock speedup of ``candidate`` over ``baseline``.

    Both arguments are timing reports (dicts) or paths to them.  Returns
    ``baseline_wall / candidate_wall``; a zero-cost candidate reports
    ``inf``.  CI uses this to assert that a warm-cache run is at least 5x
    faster than the cold run that populated the cache.
    """
    if not isinstance(baseline, dict):
        baseline = load_timing_report(baseline)
    if not isinstance(candidate, dict):
        candidate = load_timing_report(candidate)
    base = float(baseline["wall_seconds"])
    cand = float(candidate["wall_seconds"])
    if cand <= 0.0:
        return math.inf
    return base / cand


def fit_power(x: Sequence[float], y: Sequence[float]) -> PowerFit:
    """Log-log fit: the exponent estimates the empirical complexity order.

    Points with non-positive x or y are dropped (log is undefined there);
    zero counts carry no order information anyway.
    """
    pairs = [(a, b) for a, b in zip(x, y) if a > 0 and b > 0]
    if len(pairs) < 2:
        raise ValueError("need at least 2 positive points for a power fit")
    log_x = np.log([a for a, _ in pairs])
    log_y = np.log([b for _, b in pairs])
    exponent, log_scale = np.polyfit(log_x, log_y, 1)
    return PowerFit(float(exponent), float(math.exp(log_scale)))
