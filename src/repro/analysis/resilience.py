"""Fault-tolerant corpus execution: the engine's resilience substrate.

The corpus engine (:mod:`repro.analysis.engine`) must survive adversarial
loops, not just the curated corpus: one hung MinDist search, one crashed
worker or one truncated cache entry must never lose a 1327-loop run.
This module holds the policy pieces the reworked execution path composes:

* the **cooperative deadline** (re-exported from
  :mod:`repro.core.deadline`) that the in-worker watchdog threads through
  ``compute_mii`` and ``modulo_schedule``;
* the **failure taxonomy** — every terminal error is classified as
  :data:`TRANSIENT` (environmental: crashed or reaped workers, I/O),
  :data:`RESOURCE` (ran out of a budget: wall-clock deadline, memory) or
  :data:`DETERMINISTIC` (the algorithm itself rejects the loop: a
  zero-distance circuit, a verification mismatch).  Transient and
  resource failures are retried with exponential backoff on a fresh
  worker; deterministic ones are quarantined immediately — retrying a
  pure function on the same input is wasted work;
* the **retry policy** (:class:`RetryPolicy`) with its capped
  exponential backoff;
* the **degradation ladder** constants — when iterative modulo
  scheduling exhausts its budget or deadline the worker falls back,
  *recorded but never silent*, first to floor-budget IMS and then to the
  acyclic list scheduler with kernel-only codegen, so every feasible
  loop yields a verified schedule plus a ``degradation_level``;
* the **checkpoint journal** (:class:`ResultJournal`) — an append-only
  JSONL of per-loop outcomes written next to the cache, so
  ``corpus --resume`` after a crash or Ctrl-C replays completed loops
  from the journal and re-evaluates only the rest;
* the **quarantine file** — terminal failures serialized to
  ``quarantine.json`` with enough detail (attempted IIs, budget spent,
  taxonomy kind) to be actionable without re-running the corpus.

Everything here is deliberately free of process-pool mechanics; the
engine owns the execution path and consults these policies.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.core.deadline import Deadline, DeadlineExceeded, check_deadline

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "TRANSIENT",
    "DETERMINISTIC",
    "RESOURCE",
    "classify_failure",
    "RetryPolicy",
    "DEGRADATION_LEVELS",
    "LEVEL_FULL",
    "LEVEL_RELAXED",
    "LEVEL_LIST_FALLBACK",
    "ResultJournal",
    "write_quarantine",
    "load_quarantine",
    "QUARANTINE_FORMAT",
    "JOURNAL_FORMAT",
]


# ----------------------------------------------------------------------
# Failure taxonomy

#: Environmental failures (killed/reaped workers, broken pools, I/O):
#: nothing about the loop itself is known to be wrong, so retry.
TRANSIENT = "transient"

#: A budget ran out (wall-clock deadline, memory).  Retried — a loaded
#: machine can starve an innocent loop — but a repeat offender ends up
#: quarantined with kind ``resource`` rather than ``deterministic``.
RESOURCE = "resource"

#: The algorithm rejected the loop (infeasible graph, verification
#: mismatch, bad input).  Re-running a pure function on the same input
#: cannot help: quarantine immediately, never retry.
DETERMINISTIC = "deterministic"

#: Error types raised by the pool machinery rather than the loop.
_TRANSIENT_ERRORS = frozenset(
    {
        "WorkerCrash",
        "WorkerHang",
        "BrokenProcessPool",
        "BrokenExecutor",
        "CancelledError",
        "InjectedTransientError",
        "ConnectionError",
        "BrokenPipeError",
        "InterruptedError",
    }
)

#: Error types meaning a budget was exhausted.
_RESOURCE_ERRORS = frozenset(
    {
        "DeadlineExceeded",
        "TimeoutError",
        "MemoryError",
    }
)


def classify_failure(error_type: str) -> str:
    """Map an exception type name onto the retry taxonomy.

    Classification is by *name* because failures cross process
    boundaries as structured records, never as live exception objects
    (an exception type with a non-trivial ``__init__`` must not poison
    the pool on the way back).
    """
    if error_type in _TRANSIENT_ERRORS:
        return TRANSIENT
    if error_type in _RESOURCE_ERRORS:
        return RESOURCE
    return DETERMINISTIC


# ----------------------------------------------------------------------
# Retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient/resource failures.

    ``max_retries`` counts *re-executions* (0 disables retrying);
    attempt ``k`` (0-based) failing transiently waits
    ``min(backoff_base * 2**k, backoff_cap)`` seconds before the loop is
    resubmitted to a fresh worker.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 2.0

    def should_retry(self, kind: str, attempt: int) -> bool:
        """Whether attempt ``attempt`` (0-based) of kind ``kind`` retries."""
        if kind == DETERMINISTIC:
            return False
        return attempt < self.max_retries

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a task that failed attempt ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)


# ----------------------------------------------------------------------
# Degradation ladder

#: Level 0: the paper's iterative modulo scheduler at the configured
#: budget ratio — the normal path.
LEVEL_FULL = 0

#: Level 1: IMS again, with the budget ratio relaxed to its floor (1.0):
#: each operation is scheduled ~once per candidate II, escalating II
#: quickly.  Produces a legal modulo schedule, usually at a worse II.
LEVEL_RELAXED = 1

#: Level 2: the acyclic list scheduler plus kernel-only codegen — no
#: software pipelining at all, but always a verified schedule.
LEVEL_LIST_FALLBACK = 2

#: Human-readable ladder rung names (report + quarantine rendering).
DEGRADATION_LEVELS = {
    LEVEL_FULL: "full-ims",
    LEVEL_RELAXED: "relaxed-ims",
    LEVEL_LIST_FALLBACK: "list-fallback",
}


# ----------------------------------------------------------------------
# Checkpoint journal

JOURNAL_FORMAT = "repro.journal.v1"


class ResultJournal:
    """Append-only JSONL checkpoint of per-loop outcomes.

    Each line is one completed loop: its content-addressed cache key,
    corpus position, and either the evaluation payload or the terminal
    failure record.  The file is append-only and flushed per record, so
    a crash or Ctrl-C loses at most the line being written —
    :meth:`load` tolerates a truncated tail.  Keys are content-addressed
    (loop IR + machine + scheduler config), so records from a run with a
    different configuration simply never match and resume stays safe
    without any generation counter.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._stream = None

    # -- writing -------------------------------------------------------

    def append(
        self,
        key: str,
        index: int,
        loop_name: str,
        payload: Optional[Dict[str, Any]] = None,
        failure: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal one finished loop (exactly one of payload/failure)."""
        record = {
            "format": JOURNAL_FORMAT,
            "key": key,
            "index": index,
            "loop": loop_name,
            "ok": failure is None,
        }
        if payload is not None:
            record["payload"] = payload
        if failure is not None:
            record["failure"] = failure
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a")
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        """Close the append stream (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Map of cache key -> last journaled record (latest wins).

        A truncated or corrupt line (the write the crash interrupted)
        ends the replay: everything before it is trusted, everything
        after is ignored — exactly the prefix that was durably written.
        """
        records: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break
            if (
                not isinstance(record, dict)
                or record.get("format") != JOURNAL_FORMAT
                or not isinstance(record.get("key"), str)
            ):
                break
            records[record["key"]] = record
        return records

    def completed_payloads(self) -> Dict[str, Dict[str, Any]]:
        """Map of cache key -> payload for successfully journaled loops."""
        return {
            key: record["payload"]
            for key, record in self.load().items()
            if record.get("ok") and isinstance(record.get("payload"), dict)
        }


# ----------------------------------------------------------------------
# Quarantine

QUARANTINE_FORMAT = "repro.quarantine.v1"


def write_quarantine(
    path,
    machine_name: str,
    entries: Iterable[Dict[str, Any]],
) -> Path:
    """Atomically write ``quarantine.json`` (always, even when empty).

    ``entries`` are :meth:`repro.analysis.engine.LoopFailure.to_dict`
    records, each carrying the taxonomy ``kind``, the attempt count and
    the structured ``detail`` (attempted IIs, per-II budget spent) that
    makes the record actionable without re-running the corpus.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": QUARANTINE_FORMAT,
        "machine": machine_name,
        "entries": list(entries),
    }
    handle, temp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(document, stream, indent=2)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def load_quarantine(path) -> List[Dict[str, Any]]:
    """Read a quarantine file's entries (raises on a foreign document)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != QUARANTINE_FORMAT:
        raise ValueError(f"not a quarantine file: {path}")
    return data.get("entries", [])
