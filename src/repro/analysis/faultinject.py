"""Deterministic fault injection for the corpus engine's resilience suite.

Every mechanism in :mod:`repro.analysis.resilience` — the in-worker
watchdog, the pool-side reaper, crash-isolated retries, cache-corruption
recovery, the quarantine — is proved end-to-end by injecting faults into
an otherwise-clean corpus run and asserting nothing is lost.  Faults are
keyed by *corpus loop index* and *attempt number*, so a run is exactly
reproducible: the same spec against the same corpus fires the same
faults at the same points, every time (no randomness, no clocks).

Spec grammar (``REPRO_FAULT_INJECT`` or an explicit :class:`FaultPlan`)::

    spec      := directive (";" directive)*
    directive := kind "@" index [":" arg] ["!"]

* ``crash@3``       — the worker evaluating loop 3 dies with ``os._exit``
  (indistinguishable from a SIGKILL / OOM kill: the pool breaks);
* ``hang@5:60``     — the worker wedges for 60s (default 300) with
  SIGALRM ignored, i.e. a hang even the in-worker watchdog cannot see —
  only the pool-side reaper can recover it.  Under ``jobs=1`` there is
  no pool to reap, so the hang degrades to a deadline-bounded stall;
* ``slow@7:0.5``    — the loop stalls 0.5s (default 0.25) cooperatively:
  the in-worker deadline (SIGALRM + ``Deadline`` checks) catches it when
  it overruns ``--loop-timeout``;
* ``raise@4:ValueError`` — the evaluation raises the named exception
  (``transient`` and ``exotic`` select the injector's own types below);
* ``corrupt@2``     — the *engine* truncates loop 2's cache entry right
  after writing it, so the next run exercises the corrupt-cache path.

A directive fires on attempt 0 only — the fault is *transient* and a
retry on a fresh worker succeeds, which is what lets the resilience
suite assert bit-identical results versus a clean run.  A trailing ``!``
makes it fire on **every** attempt (a *persistent* fault), driving the
retry budget to exhaustion and the loop into quarantine.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.deadline import Deadline, DeadlineExceeded

#: Environment variable consulted by the engine when no explicit plan is
#: passed.  Empty/unset means no injection (the production default).
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Exit status of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_STATUS = 66

_KINDS = ("crash", "hang", "slow", "raise", "corrupt")


class FaultSpecError(ValueError):
    """The fault-injection spec does not follow the grammar."""


class InjectedTransientError(RuntimeError):
    """An injected failure classified as transient (retried away)."""


class ExoticError(Exception):
    """An exception the pool could never pickle back whole.

    Its mandatory multi-argument ``__init__`` and unpicklable baggage
    model third-party exception types; the worker must reduce it to a
    structured string record instead of letting it poison the pool.
    """

    def __init__(self, code: int, context: Dict[str, object]) -> None:
        super().__init__(f"exotic failure code={code}")
        self.code = code
        self.context = context

    def __reduce__(self):
        raise TypeError("ExoticError deliberately refuses to pickle")


#: Exception types selectable by ``raise@i:<name>``.
RAISABLE = {
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "MemoryError": MemoryError,
    "transient": InjectedTransientError,
    "exotic": None,  # constructed specially (mandatory arguments)
}


@dataclass(frozen=True)
class FaultDirective:
    """One parsed ``kind@index[:arg][!]`` directive."""

    kind: str
    index: int
    arg: str = ""
    persistent: bool = False

    def fires(self, attempt: int) -> bool:
        """Whether this directive applies to attempt ``attempt`` (0-based)."""
        return self.persistent or attempt == 0

    def spec(self) -> str:
        """Canonical textual form (round-trips through the parser)."""
        text = f"{self.kind}@{self.index}"
        if self.arg:
            text += f":{self.arg}"
        if self.persistent:
            text += "!"
        return text


def parse_fault_spec(text: Optional[str]) -> "FaultPlan":
    """Parse a spec string into a :class:`FaultPlan` (empty for blank)."""
    directives = []
    for chunk in (text or "").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        persistent = chunk.endswith("!")
        if persistent:
            chunk = chunk[:-1]
        if "@" not in chunk:
            raise FaultSpecError(
                f"bad fault directive {chunk!r}: expected kind@index[:arg]"
            )
        kind, _, rest = chunk.partition("@")
        kind = kind.strip()
        if kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (choose from {', '.join(_KINDS)})"
            )
        index_text, _, arg = rest.partition(":")
        try:
            index = int(index_text)
        except ValueError:
            raise FaultSpecError(
                f"bad loop index {index_text!r} in fault directive {chunk!r}"
            ) from None
        if kind == "raise" and arg and arg not in RAISABLE:
            raise FaultSpecError(
                f"unknown exception {arg!r} in {chunk!r} "
                f"(choose from {', '.join(sorted(RAISABLE))})"
            )
        directives.append(
            FaultDirective(
                kind=kind, index=index, arg=arg.strip(), persistent=persistent
            )
        )
    return FaultPlan(tuple(directives))


@dataclass(frozen=True)
class FaultPlan:
    """The full set of directives for one engine run (picklable)."""

    directives: Tuple[FaultDirective, ...] = ()

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan named by :data:`FAULT_ENV` (empty when unset)."""
        environ = os.environ if environ is None else environ
        return parse_fault_spec(environ.get(FAULT_ENV))

    def __bool__(self) -> bool:
        return bool(self.directives)

    def for_loop(self, index: int) -> Tuple[FaultDirective, ...]:
        """Worker-side directives for one corpus loop (corrupt excluded:
        cache corruption is injected by the engine at write time)."""
        return tuple(
            d
            for d in self.directives
            if d.index == index and d.kind != "corrupt"
        )

    def corrupts_cache(self, index: int) -> bool:
        """Whether loop ``index``'s cache entry should be truncated."""
        return any(
            d.kind == "corrupt" and d.index == index for d in self.directives
        )

    def spec(self) -> str:
        """Canonical spec string for the whole plan."""
        return ";".join(d.spec() for d in self.directives)


#: The empty plan (no directives; every query is a fast no).
NULL_PLAN = FaultPlan()


def apply_worker_faults(
    directives: Tuple[FaultDirective, ...],
    attempt: int,
    deadline: Optional[Deadline] = None,
    in_pool: bool = True,
) -> None:
    """Fire the directives that apply to this attempt, in spec order.

    Called by the corpus worker at the top of a loop evaluation.  In a
    pool worker a ``crash`` really exits the process and a ``hang``
    really wedges it; in-process (``jobs=1``) both degrade to their
    recoverable analogues (a transient exception, a deadline-bounded
    stall) because killing or wedging the caller would take the whole
    run down — the thing the injection exists to prove cannot happen.
    """
    for directive in directives:
        if not directive.fires(attempt):
            continue
        if directive.kind == "crash":
            if in_pool:
                os._exit(CRASH_EXIT_STATUS)
            raise InjectedTransientError(
                f"injected crash (in-process analogue): {directive.spec()}"
            )
        elif directive.kind == "hang":
            seconds = float(directive.arg) if directive.arg else 300.0
            if in_pool and hasattr(signal, "SIGALRM"):
                # A true wedge: even the SIGALRM watchdog is ignored, so
                # only the pool-side reaper can recover this worker.
                signal.signal(signal.SIGALRM, signal.SIG_IGN)
                time.sleep(seconds)
                raise InjectedTransientError(
                    f"injected hang outlived its sleep: {directive.spec()}"
                )
            _cooperative_stall(seconds, deadline, directive)
        elif directive.kind == "slow":
            seconds = float(directive.arg) if directive.arg else 0.25
            _cooperative_stall(seconds, deadline, directive)
        elif directive.kind == "raise":
            name = directive.arg or "RuntimeError"
            if name == "exotic":
                raise ExoticError(
                    code=13, context={"directive": directive.spec()}
                )
            raise RAISABLE[name](f"injected failure: {directive.spec()}")


def _cooperative_stall(
    seconds: float,
    deadline: Optional[Deadline],
    directive: FaultDirective,
) -> None:
    """Sleep ``seconds`` in small slices, honouring the deadline."""
    end = time.monotonic() + seconds
    while True:
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"injected stall overran the loop deadline: "
                f"{directive.spec()}"
            )
        time.sleep(min(0.02, remaining))
