"""One-stop evaluation of corpus loops: everything Section 4 measures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.model import execution_time, execution_time_bound
from repro.baselines.list_scheduler import list_schedule_length
from repro.core.mii import MIIResult, compute_mii
from repro.core.mindist import schedule_length_lower_bound
from repro.core.scheduler import ModuloScheduleResult
from repro.core.stats import Counters
from repro.workloads.corpus import CorpusLoop


@dataclass
class LoopEvaluation:
    """All per-loop measurements used by the Table 3/4 and Figure 6 benches."""

    loop: CorpusLoop
    n_ops: int
    n_real_ops: int
    n_edges: int
    mii_result: MIIResult
    result: ModuloScheduleResult
    list_sl: int
    mindist_sl_at_mii: int
    mindist_sl_at_ii: int
    counters: Counters
    #: Degradation-ladder record when the engine fell back (None on the
    #: normal full-IMS path): level, rung name, trigger and its detail.
    degradation: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------

    @property
    def degradation_level(self) -> int:
        """Ladder rung this record came from (0 = full IMS, no fallback)."""
        if not self.degradation:
            return 0
        return int(self.degradation.get("level", 0))

    @property
    def degraded(self) -> bool:
        """Whether this record came from a fallback scheduler."""
        return self.degradation_level > 0

    @property
    def mii(self) -> int:
        """The MII lower bound for this loop."""
        return self.mii_result.mii

    @property
    def ii(self) -> int:
        """The achieved initiation interval."""
        return self.result.ii

    @property
    def delta_ii(self) -> int:
        """Achieved II minus the MII bound."""
        return self.result.delta_ii

    @property
    def sl(self) -> int:
        """The achieved schedule length."""
        return self.result.schedule_length

    @property
    def sl_bound(self) -> int:
        """Lower bound on SL at the achieved II (Section 4.2): the larger
        of MinDist[START, STOP] and the acyclic list schedule length."""
        return max(self.mindist_sl_at_ii, self.list_sl)

    @property
    def sl_bound_at_mii(self) -> int:
        """SL lower bound evaluated at the MII (for the exec-time bound)."""
        return max(self.mindist_sl_at_mii, self.list_sl)

    @property
    def sl_ratio(self) -> float:
        """Achieved SL over its (not necessarily achievable) bound."""
        bound = self.sl_bound
        return self.sl / bound if bound else 1.0

    @property
    def exec_time(self) -> int:
        """The Section 4.3 execution-time model at the achieved SL and II."""
        return execution_time(
            self.loop.entry_freq, self.loop.loop_freq, self.sl, self.ii
        )

    @property
    def exec_bound(self) -> int:
        """The execution-time lower bound (SL bound at MII, and MII)."""
        return execution_time_bound(
            self.loop.entry_freq,
            self.loop.loop_freq,
            self.sl_bound_at_mii,
            self.mii,
        )

    @property
    def exec_ratio(self) -> float:
        """Execution time over its lower bound."""
        bound = self.exec_bound
        return self.exec_time / bound if bound else 1.0

    @property
    def schedule_ratio(self) -> float:
        """Operations scheduled per operation, in the successful attempt."""
        return self.result.steps_last / self.n_ops

    @property
    def backend(self) -> str:
        """Name of the scheduler backend that produced the result."""
        return self.result.backend

    @property
    def optimal(self) -> Optional[bool]:
        """Whether the achieved II is proven minimal (None = unproven)."""
        return self.result.optimal

    @property
    def optimality_gap(self) -> Optional[int]:
        """Heuristic II minus proven-minimal II (None without a proof)."""
        return self.result.optimality_gap


def evaluate_loop(
    loop: CorpusLoop,
    machine,
    budget_ratio: float = 6.0,
    exact_mii: bool = True,
    backend: str = "ims",
) -> LoopEvaluation:
    """Schedule one corpus loop and gather every Section-4 measurement."""
    from repro.backends import IIPolicy, get_backend

    counters = Counters()
    mii_result = compute_mii(loop.graph, machine, counters, exact=exact_mii)
    result = get_backend(backend).schedule(
        loop.graph,
        machine,
        IIPolicy(budget_ratio=budget_ratio, exact_mii=exact_mii),
        counters=counters,
        mii_result=mii_result,
    )
    list_sl = list_schedule_length(loop.graph, machine)
    memo = mii_result.mindist_memo
    at_mii = schedule_length_lower_bound(
        loop.graph, mii_result.mii, memo=memo
    )
    if result.ii == mii_result.mii:
        at_ii = at_mii
    else:
        at_ii = schedule_length_lower_bound(loop.graph, result.ii, memo=memo)
    return LoopEvaluation(
        loop=loop,
        n_ops=loop.graph.n_ops,
        n_real_ops=loop.graph.n_real_ops,
        n_edges=loop.graph.n_edges,
        mii_result=mii_result,
        result=result,
        list_sl=list_sl,
        mindist_sl_at_mii=at_mii,
        mindist_sl_at_ii=at_ii,
        counters=counters,
    )


def evaluate_corpus(
    corpus: Sequence[CorpusLoop],
    machine,
    budget_ratio: float = 6.0,
    exact_mii: bool = True,
    backend: str = "ims",
    jobs: Optional[int] = 1,
    cache_dir=None,
    use_cache: bool = True,
    verify_iterations: int = 0,
    failures: Optional[list] = None,
    counters: Optional[Counters] = None,
    obs=None,
    loop_timeout: Optional[float] = None,
    retry_policy=None,
    degrade: bool = True,
    journal_path=None,
    resume: bool = False,
    quarantine_path=None,
    fault_plan=None,
) -> List[LoopEvaluation]:
    """Evaluate every loop of a corpus (order preserved).

    Delegates to :class:`repro.analysis.engine.EvaluationEngine`: ``jobs``
    fans the work out over a process pool, and ``cache_dir`` enables the
    content-addressed result cache (``use_cache=False`` bypasses it).

    A loop that raises no longer aborts the whole run — it is skipped and
    reported as a structured :class:`repro.analysis.engine.LoopFailure`,
    appended to ``failures`` when a list is supplied.  Pass a
    :class:`Counters` as ``counters`` to receive the run-level aggregate
    merged over every evaluation (identical for any ``jobs`` value — the
    per-loop bundles ride back through the engine's JSON payloads), and
    an :class:`repro.obs.ObsContext` as ``obs`` to trace the run.  Use
    the engine directly for the full result (failures, timings, cache
    counters, the metric snapshot).
    """
    from repro.analysis.engine import EvaluationEngine

    engine = EvaluationEngine(
        machine,
        budget_ratio=budget_ratio,
        exact_mii=exact_mii,
        backend=backend,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        verify_iterations=verify_iterations,
        obs=obs,
        loop_timeout=loop_timeout,
        retry_policy=retry_policy,
        degrade=degrade,
        journal_path=journal_path,
        resume=resume,
        quarantine_path=quarantine_path,
        fault_plan=fault_plan,
    )
    result = engine.evaluate(corpus)
    if failures is not None:
        failures.extend(result.failures)
    if counters is not None:
        counters.merge(result.counters)
    return result.evaluations
