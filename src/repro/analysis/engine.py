"""Parallel, content-addressed, fault-tolerant corpus evaluation.

The paper's evaluation (Section 4) modulo-schedules 1327 loops to build
every table and figure; re-running that serially and from scratch for
each benchmark is the single biggest cost in the harness.  This module is
the substrate that makes corpus-scale evaluation cheap, repeatable and
*unkillable*:

* a **content-addressed result cache**: every per-loop evaluation is
  stored on disk under a stable hash of (loop IR, machine description,
  scheduler configuration, code-format version), so unchanged loops are
  never re-scheduled or re-simulated across runs — and any change to the
  loop's graph, the machine's latencies or reservation tables, or the
  scheduler's budget automatically invalidates only the affected entries;
* a **process-pool fan-out** over the per-loop work with deterministic,
  corpus-order results regardless of completion order;
* **structured failure records**: a loop that cannot be scheduled (or
  fails verification) no longer aborts the corpus run — it is reported as
  a :class:`LoopFailure` alongside the successful evaluations;
* a **watchdog**: with ``loop_timeout`` set, each evaluation runs under a
  cooperative :class:`~repro.core.deadline.Deadline` threaded through the
  MII search and the scheduler, backed in pool workers by a SIGALRM
  alarm, and backstopped by a pool-side reaper that kills and replaces
  workers that stop making progress entirely;
* **crash-isolated retries**: a crashed, reaped or timed-out loop is
  retried with exponential backoff on a fresh worker
  (:class:`~repro.analysis.resilience.RetryPolicy`); deterministic
  failures are never retried — they land in ``quarantine.json`` with the
  scheduler's full search trajectory attached;
* a **degradation ladder**: when iterative modulo scheduling exhausts
  its budget or deadline, the worker falls back — recorded, never
  silent — first to floor-budget IMS and then to the acyclic list
  scheduler (kernel-only code), so every feasible loop still yields a
  schedule plus a ``degradation`` record;
* **checkpoint/resume**: each finished loop is appended to a JSONL
  journal next to the cache; ``resume=True`` replays completed loops
  from the journal and re-evaluates only the rest;
* **per-loop phase timings** (mindist / scheduling / codegen /
  simulation) and cache hit/miss counters, emitted as JSON for the
  regression harness (see :func:`repro.analysis.regression.timing_speedup`).

Both the serial and the parallel path round-trip each evaluation through
the same JSON payload that the cache stores, so results are bit-identical
whether they were computed in-process, in a worker, after a transient
fault, or loaded from disk.  The fault-injection harness
(:mod:`repro.analysis.faultinject`) proves that property end to end.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import pickle
import signal
import tempfile
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.faultinject import (
    FaultDirective,
    FaultPlan,
    apply_worker_faults,
)
from repro.analysis.resilience import (
    DEGRADATION_LEVELS,
    DETERMINISTIC,
    LEVEL_LIST_FALLBACK,
    LEVEL_RELAXED,
    RESOURCE,
    Deadline,
    DeadlineExceeded,
    ResultJournal,
    RetryPolicy,
    classify_failure,
    write_quarantine,
)
from repro.analysis.runner import LoopEvaluation
from repro.backends import IIPolicy, get_backend
from repro.baselines.list_scheduler import list_schedule, list_schedule_length
from repro.core.mii import MIIResult, compute_mii, res_mii
from repro.core.mindist import schedule_length_lower_bound
from repro.core.scc import strongly_connected_components
from repro.core.scheduler import (
    AttemptRecord,
    ModuloScheduleResult,
    SchedulingFailure,
    modulo_schedule,
)
from repro.core.stats import Counters
from repro.ir.serialize import graph_to_dict, schedule_from_dict, schedule_to_dict
from repro.machine.serialize import machine_to_dict
from repro.obs.context import NULL_OBS, ObsContext
from repro.workloads.corpus import CorpusLoop

#: Version of the evaluation semantics baked into every cache key.  Bump
#: whenever the meaning of a cached payload changes (new measurements, a
#: scheduler fix that alters results, a payload schema change) so stale
#: entries are never resurrected.
CODE_FORMAT_VERSION = 5  # v5: per-(slot, alternative) findtimeslot_iters,
# parametric-MinDist counter fields in the cached counter snapshots

_PAYLOAD_FORMAT = "repro.loop-evaluation.v1"
TIMING_FORMAT = "repro.engine-timing.v1"

#: The per-loop phases the engine accounts for.
PHASES = ("mindist", "scheduling", "codegen", "check", "simulation")

#: Budget ratio of the ladder's relaxed rung: the legal floor, where each
#: operation is scheduled ~once per candidate II and II escalates fast.
RELAXED_BUDGET_RATIO = 1.0


class VerificationError(RuntimeError):
    """The pipelined schedule disagreed with the sequential oracle."""


class StaticCheckError(RuntimeError):
    """The independent static validator rejected a schedule (strict mode).

    Carries the full diagnostics set; :meth:`detail` surfaces it as the
    ``repro.check.v1`` document on the :class:`LoopFailure` record.
    """

    def __init__(self, diagnostics) -> None:
        super().__init__(
            "; ".join(d.describe() for d in diagnostics.errors[:5])
            or "static check failed"
        )
        self.diagnostics = diagnostics

    def detail(self) -> Dict[str, Any]:
        """Structured context for the failure record."""
        return self.diagnostics.to_dict()


# ----------------------------------------------------------------------
# Cache keys


def cache_key(
    loop: Union[CorpusLoop, Any],
    machine,
    budget_ratio: float = 6.0,
    exact_mii: bool = True,
    verify_iterations: int = 0,
    backend: str = "ims",
) -> str:
    """Stable, content-addressed key for one loop evaluation.

    The key is the SHA-256 of a canonical JSON document covering
    everything the evaluation's outcome depends on: the loop's dependence
    graph, the full machine description (latencies, reservation tables),
    the scheduler configuration, and :data:`CODE_FORMAT_VERSION`.  It is
    stable across processes and interpreter restarts (no reliance on
    ``hash()``), and any semantic mutation of an input changes it.

    ``loop`` may be a :class:`CorpusLoop` or a bare dependence graph; the
    execution profile (``entry_freq``/``loop_freq``) is deliberately *not*
    part of the key — it scales the execution-time model but never the
    schedule, and is re-attached from the live loop on every load.
    """
    graph = loop.graph if isinstance(loop, CorpusLoop) else loop
    document = {
        "version": CODE_FORMAT_VERSION,
        "graph": graph_to_dict(graph),
        "machine": machine_to_dict(machine),
        "config": {
            "backend": backend,
            "budget_ratio": budget_ratio,
            "exact_mii": exact_mii,
            "verify_iterations": verify_iterations,
        },
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Evaluation payloads (the cached, process-portable form)


def evaluation_to_dict(evaluation: LoopEvaluation, machine) -> Dict[str, Any]:
    """Serialize a :class:`LoopEvaluation` to a JSON-compatible payload.

    Only the measurements are stored; the :class:`CorpusLoop` (with its
    execution profile) is re-attached by :func:`evaluation_from_dict`.
    A clean (non-degraded) evaluation serializes exactly as it always
    has; a ``degradation`` key appears only when the ladder was used.
    """
    mii = evaluation.mii_result
    result = evaluation.result
    payload = {
        "format": _PAYLOAD_FORMAT,
        "n_ops": evaluation.n_ops,
        "n_real_ops": evaluation.n_real_ops,
        "n_edges": evaluation.n_edges,
        "mii": {
            "res_mii": mii.res_mii,
            "rec_mii": mii.rec_mii,
            "mii": mii.mii,
            "components": [list(c) for c in mii.components],
            "rec_mii_exact": mii.rec_mii_exact,
        },
        "schedule": schedule_to_dict(result.schedule, machine),
        "search": {
            "backend": result.backend,
            "budget_ratio": result.budget_ratio,
            "attempts": result.attempts,
            "steps_total": result.steps_total,
            "steps_last": result.steps_last,
            "optimal": result.optimal,
            "attempt_records": [
                record.to_dict() for record in result.attempt_records
            ],
            "certificates": {
                str(ii): cert for ii, cert in result.certificates.items()
            },
        },
        "list_sl": evaluation.list_sl,
        "mindist_sl_at_mii": evaluation.mindist_sl_at_mii,
        "mindist_sl_at_ii": evaluation.mindist_sl_at_ii,
        "counters": evaluation.counters.snapshot(),
    }
    if evaluation.degradation is not None:
        payload["degradation"] = dict(evaluation.degradation)
    return payload


def evaluation_from_dict(
    data: Dict[str, Any], loop: CorpusLoop, machine
) -> LoopEvaluation:
    """Rebuild a :class:`LoopEvaluation` from :func:`evaluation_to_dict`."""
    if data.get("format") != _PAYLOAD_FORMAT:
        raise ValueError(
            f"not a serialized loop evaluation: format {data.get('format')!r}"
        )
    counters = Counters(**data["counters"])
    mii_data = data["mii"]
    mii_result = MIIResult(
        res_mii=mii_data["res_mii"],
        rec_mii=mii_data["rec_mii"],
        mii=mii_data["mii"],
        components=[list(c) for c in mii_data["components"]],
        rec_mii_exact=mii_data["rec_mii_exact"],
    )
    search = data["search"]
    result = ModuloScheduleResult(
        schedule=schedule_from_dict(data["schedule"], machine),
        mii_result=mii_result,
        budget_ratio=search["budget_ratio"],
        attempts=search["attempts"],
        steps_total=search["steps_total"],
        steps_last=search["steps_last"],
        counters=counters,
        # v3 payloads predate backends; .get keeps them loadable.
        backend=search.get("backend", "ims"),
        optimal=search.get("optimal"),
        attempt_records=[
            AttemptRecord.from_dict(record)
            for record in search.get("attempt_records", [])
        ],
        certificates={
            int(ii): cert
            for ii, cert in search.get("certificates", {}).items()
        },
    )
    return LoopEvaluation(
        loop=loop,
        n_ops=data["n_ops"],
        n_real_ops=data["n_real_ops"],
        n_edges=data["n_edges"],
        mii_result=mii_result,
        result=result,
        list_sl=data["list_sl"],
        mindist_sl_at_mii=data["mindist_sl_at_mii"],
        mindist_sl_at_ii=data["mindist_sl_at_ii"],
        counters=counters,
        degradation=data.get("degradation"),
    )


# ----------------------------------------------------------------------
# Structured records


@dataclass(frozen=True)
class LoopFailure:
    """One loop that could not be evaluated (the run continues without it).

    ``kind`` is the retry-taxonomy classification
    (:func:`repro.analysis.resilience.classify_failure`), ``attempts``
    how many executions were spent (retries included) and ``detail`` the
    structured context the failing layer attached — for a
    :class:`~repro.core.scheduler.SchedulingFailure` that is the full II
    search trajectory (attempted IIs, steps per II, budget per II).
    """

    index: int
    loop_name: str
    phase: str
    error_type: str
    message: str
    traceback: str = ""
    kind: str = DETERMINISTIC
    attempts: int = 1
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (traceback included for the report)."""
        return {
            "index": self.index,
            "loop": self.loop_name,
            "phase": self.phase,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "kind": self.kind,
            "attempts": self.attempts,
            "detail": dict(self.detail),
        }

    def describe(self) -> str:
        """One-line rendering for logs and CLI output."""
        retried = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"{self.loop_name}: {self.error_type} during {self.phase}: "
            f"{self.message}{retried}"
        )


@dataclass(frozen=True)
class LoopTiming:
    """Structured per-loop timing record (one per corpus loop, in order)."""

    index: int
    loop_name: str
    key: str
    cache_hit: bool
    seconds: Dict[str, float]
    resumed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form for the timing report."""
        return {
            "index": self.index,
            "loop": self.loop_name,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "seconds": dict(self.seconds),
            "resumed": self.resumed,
        }


@dataclass
class CorpusEvaluation:
    """Everything one engine run over a corpus produced.

    ``evaluations`` holds the successful records in corpus order;
    ``failures`` the loops that terminally failed (also in corpus order);
    ``timings`` one record per corpus loop regardless of outcome.
    ``counters`` is the run-level :class:`Counters` aggregate merged over
    every successful evaluation — cache hits included — so Table-4-style
    complexity data survives any ``jobs`` fan-out.  ``metrics`` is the
    deterministic metric snapshot of the engine's
    :class:`~repro.obs.ObsContext` (``None`` when observability is off).

    The resilience tallies (``retries`` .. ``quarantined``) count fault
    events the run absorbed; they are all zero on a clean run.
    ``diagnostics`` carries run-level human-readable notes (a broken
    pool, a reap) that belong to the run rather than to any one loop.
    """

    evaluations: List[LoopEvaluation]
    failures: List[LoopFailure]
    timings: List[LoopTiming]
    machine_name: str
    jobs: int
    cache_dir: Optional[str]
    cache_enabled: bool
    hits: int
    misses: int
    wall_seconds: float
    counters: Counters = field(default_factory=Counters)
    metrics: Optional[Dict[str, Any]] = None
    #: Merged collapsed-stack sample counts from the sampling profiler
    #: (``--profile``); ``None`` on unprofiled runs.
    profile: Optional[Dict[str, int]] = None
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    reaped: int = 0
    degraded: int = 0
    resume_skipped: int = 0
    cache_corrupt: int = 0
    quarantined: int = 0
    diagnostics: List[str] = field(default_factory=list)
    journal_path: Optional[str] = None
    quarantine_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when every loop evaluated successfully."""
        return not self.failures

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per phase, aggregated over all loops."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            for name, value in timing.seconds.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def timing_report(self) -> Dict[str, Any]:
        """The structured timing document the regression harness consumes.

        Alongside the timings proper the report carries the run-level
        telemetry snapshot: the aggregated algorithm ``counters``, the
        resilience tallies, and, when the run was observed, the
        deterministic ``metrics`` registry — a stable schema for
        BENCH_*.json to track across PRs.
        """
        return {
            "format": TIMING_FORMAT,
            "machine": self.machine_name,
            "jobs": self.jobs,
            "cache": {
                "enabled": self.cache_enabled,
                "dir": self.cache_dir,
                "hits": self.hits,
                "misses": self.misses,
            },
            "n_loops": len(self.timings),
            "n_failures": len(self.failures),
            "wall_seconds": self.wall_seconds,
            "phase_seconds": self.phase_seconds(),
            "counters": self.counters.snapshot(),
            "metrics": self.metrics,
            "resilience": {
                "retries": self.retries,
                "timeouts": self.timeouts,
                "crashes": self.crashes,
                "reaped": self.reaped,
                "degraded": self.degraded,
                "resume_skipped": self.resume_skipped,
                "cache_corrupt": self.cache_corrupt,
                "quarantined": self.quarantined,
                "diagnostics": list(self.diagnostics),
                "journal": self.journal_path,
                "quarantine": self.quarantine_path,
            },
            "loops": [t.to_dict() for t in self.timings],
            "failures": [f.to_dict() for f in self.failures],
        }

    def write_timing_json(self, path) -> Path:
        """Write :meth:`timing_report` to ``path`` (created/overwritten)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.timing_report(), indent=2) + "\n")
        return path

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        cache = (
            f"{self.hits} cache hits, {self.misses} misses"
            if self.cache_enabled
            else "cache off"
        )
        extras = []
        for label, value in (
            ("resumed", self.resume_skipped),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("crashes", self.crashes),
            ("reaped", self.reaped),
            ("degraded", self.degraded),
            ("corrupt cache entries", self.cache_corrupt),
        ):
            if value:
                extras.append(f"{value} {label}")
        tail = f", {', '.join(extras)}" if extras else ""
        return (
            f"{len(self.timings)} loops in {self.wall_seconds:.2f}s "
            f"(jobs={self.jobs}, {cache}, {len(self.failures)} failures{tail})"
        )


# ----------------------------------------------------------------------
# The per-loop worker (module-level so process pools can pickle it)


@dataclass(frozen=True)
class _LoopTask:
    """Everything one worker needs to evaluate one loop (picklable)."""

    loop: CorpusLoop
    machine: Any
    budget_ratio: float
    exact_mii: bool
    verify_iterations: int
    observe: bool
    timeout: Optional[float]
    degrade: bool
    attempt: int
    faults: Tuple[FaultDirective, ...]
    in_pool: bool
    index: int
    check: bool = False
    backend: str = "ims"
    #: Sampling-profiler interval in seconds; 0.0 leaves the profiler
    #: entirely out of the worker (the disabled path is one ``if``).
    profile: float = 0.0


class _WatchdogAlarm:
    """SIGALRM backstop behind the cooperative deadline (pool workers only).

    The cooperative :class:`Deadline` checks cover the algorithm's hot
    loops; the alarm covers everything else (a wedged syscall, a hot loop
    the checks missed).  It fires a grace factor *after* the cooperative
    deadline so the structured ``DeadlineExceeded`` path wins whenever it
    can.  A no-op when ``seconds`` is None or SIGALRM is unavailable.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._armed = False
        self._previous = None

    def _fire(self, signum, frame):
        raise DeadlineExceeded(
            f"watchdog alarm: loop evaluation exceeded {self.seconds:.3g}s "
            "(SIGALRM backstop)"
        )

    def __enter__(self) -> "_WatchdogAlarm":
        if self.seconds is not None and hasattr(signal, "SIGALRM"):
            try:
                self._previous = signal.signal(signal.SIGALRM, self._fire)
                signal.setitimer(
                    signal.ITIMER_REAL, self.seconds * 1.25 + 0.05
                )
                self._armed = True
            except ValueError:
                # Not the main thread: cooperative checks stand alone.
                self._previous = None
        return self

    def __exit__(self, *exc) -> None:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
            self._armed = False


def _bound_mii(graph, machine, counters) -> MIIResult:
    """Cheap MII lower bound for the ladder when the real search blew up.

    The full MII's Floyd-Warshall feasibility probes are exactly what a
    wall-clock deadline interrupts, so the fallback never re-runs them:
    ResMII (linear in operations) seeds the II search instead, marked
    ``rec_mii_exact=False``.
    """
    res = res_mii(graph, machine, counters)
    components = strongly_connected_components(graph, counters)
    return MIIResult(
        res_mii=res,
        rec_mii=res,
        mii=res,
        components=components,
        rec_mii_exact=False,
    )


def _resilient_schedule(task: "_LoopTask", counters, obs, timer, phase_box):
    """The degradation ladder around one loop's MII + scheduling work.

    Returns ``(mii_result, result, degradation, deterministic)`` where
    ``degradation`` is None on the normal path and ``deterministic`` says
    whether the outcome may be cached (budget exhaustion is a property of
    the input; a blown wall-clock deadline is not).  Raises when the loop
    genuinely cannot be scheduled (or ``degrade`` is off).
    """
    loop, machine = task.loop, task.machine
    deadline = Deadline(task.timeout) if task.timeout else None
    mii_result = None
    try:
        with _WatchdogAlarm(task.timeout if task.in_pool else None):
            if task.faults:
                apply_worker_faults(
                    task.faults, task.attempt, deadline, task.in_pool
                )
            phase_box[0] = "mindist"
            with timer.phase("mindist"):
                mii_result = compute_mii(
                    loop.graph,
                    machine,
                    counters,
                    exact=task.exact_mii,
                    obs=obs,
                    deadline=deadline,
                )
            phase_box[0] = "scheduling"
            with timer.phase("scheduling"):
                if task.backend == "ims":
                    # The module-global name is the seam the fault
                    # injectors and resilience tests patch; the default
                    # backend must keep flowing through it.
                    result = modulo_schedule(
                        loop.graph,
                        machine,
                        budget_ratio=task.budget_ratio,
                        counters=counters,
                        mii_result=mii_result,
                        obs=obs,
                        deadline=deadline,
                    )
                else:
                    result = get_backend(task.backend).schedule(
                        loop.graph,
                        machine,
                        IIPolicy(
                            budget_ratio=task.budget_ratio,
                            exact_mii=task.exact_mii,
                        ),
                        counters=counters,
                        mii_result=mii_result,
                        obs=obs,
                        deadline=deadline,
                    )
            return mii_result, result, None, True
    except (DeadlineExceeded, SchedulingFailure) as trigger:
        if not task.degrade:
            raise
        deterministic = isinstance(trigger, SchedulingFailure)
        degradation = {
            "reason": type(trigger).__name__,
            "message": str(trigger),
            "detail": trigger.detail() if deterministic else {},
            "backend": task.backend,
        }
        # Normalized attempt metadata for the rung that failed: the
        # ladder concatenates these in front of whatever the fallback
        # rung records, so the journal names the backend behind every
        # candidate II even across rungs.
        failed_records = tuple(
            AttemptRecord(
                backend=task.backend,
                ii=ii,
                success=False,
                steps=trigger.steps_by_ii.get(ii, 0),
                reason="budget",
            )
            for ii in trigger.attempted_iis
        ) if deterministic else ()

    # Rung 1: IMS at the floor budget, unclocked (the watchdog is
    # disarmed — each attempt is linear in operations and II escalates
    # fast, so the rung is bounded without a clock).
    phase_box[0] = "scheduling"
    if mii_result is None:
        with timer.phase("mindist"):
            mii_result = _bound_mii(loop.graph, machine, counters)
    with timer.phase("scheduling"):
        try:
            result = modulo_schedule(
                loop.graph,
                machine,
                budget_ratio=RELAXED_BUDGET_RATIO,
                counters=counters,
                mii_result=mii_result,
                obs=obs,
            )
            degradation["level"] = LEVEL_RELAXED
            degradation["name"] = DEGRADATION_LEVELS[LEVEL_RELAXED]
            degradation["backend"] = result.backend
            result.attempt_records = (
                list(failed_records) + result.attempt_records
            )
            return mii_result, result, degradation, deterministic
        except SchedulingFailure as exc:
            degradation["relaxed_error"] = f"{type(exc).__name__}: {exc}"
            failed_records = failed_records + tuple(
                AttemptRecord(
                    backend="ims",
                    ii=ii,
                    success=False,
                    steps=exc.steps_by_ii.get(ii, 0),
                    reason="budget",
                )
                for ii in exc.attempted_iis
            )

    # Rung 2: no software pipelining at all — the acyclic list schedule
    # (iterations never overlap, so its code is the kernel alone).
    with timer.phase("scheduling"):
        schedule = list_schedule(loop.graph, machine, counters)
        result = ModuloScheduleResult(
            schedule=schedule,
            mii_result=mii_result,
            budget_ratio=0.0,
            attempts=0,
            steps_total=0,
            steps_last=loop.graph.n_ops,
            counters=counters,
            backend="list",
            attempt_records=list(failed_records)
            + [
                AttemptRecord(
                    backend="list",
                    ii=schedule.ii,
                    success=True,
                    steps=loop.graph.n_ops,
                    reason="scheduled",
                )
            ],
        )
    degradation["level"] = LEVEL_LIST_FALLBACK
    degradation["name"] = DEGRADATION_LEVELS[LEVEL_LIST_FALLBACK]
    degradation["backend"] = "list"
    return mii_result, result, degradation, deterministic


def _evaluate_loop_task(task: "_LoopTask") -> Dict[str, Any]:
    """Evaluate one loop under the watchdog + ladder; never raises.

    Returns a JSON-compatible dict with exactly one of ``payload`` /
    ``failure`` non-None, the per-phase ``seconds``, the worker's ``obs``
    snapshot (None unless observing), the collapsed ``profile`` samples
    (None unless ``task.profile`` set) and ``cacheable`` (False when the
    outcome depended on wall-clock rather than on the input alone).  Any
    exception — including injected exotic types whose instances refuse to
    pickle — is reduced to a structured record here, inside the worker,
    so nothing unpicklable ever rides back through the pool.
    """
    profiler = None
    if task.profile:
        from repro.obs.profile import shared_profiler

        # One long-lived profiler per worker process: harvesting (not
        # re-arming) per task lets sub-interval tasks accumulate samples
        # statistically across the worker's lifetime.
        profiler = shared_profiler(task.profile)
        profiler.take()  # discard samples accrued between tasks
    obs = ObsContext() if task.observe else NULL_OBS
    timer = obs.timer()
    phase_box = ["setup"]
    payload = None
    failure = None
    cacheable = True
    with obs.span("loop", loop=task.loop.name) as loop_span:
        if task.attempt:
            loop_span.set("attempt", task.attempt)
        try:
            counters = Counters()
            mii_result, result, degradation, deterministic = (
                _resilient_schedule(task, counters, obs, timer, phase_box)
            )
            cacheable = degradation is None or deterministic
            with timer.phase("scheduling"):
                list_sl = list_schedule_length(task.loop.graph, task.machine)
            if degradation is None:
                phase_box[0] = "mindist"
                with timer.phase("mindist"):
                    memo = mii_result.mindist_memo
                    at_mii = schedule_length_lower_bound(
                        task.loop.graph, mii_result.mii, obs=obs, memo=memo
                    )
                    if result.ii == mii_result.mii:
                        at_ii = at_mii
                    else:
                        at_ii = schedule_length_lower_bound(
                            task.loop.graph, result.ii, obs=obs, memo=memo
                        )
            else:
                # A degraded schedule is outside the paper's statistics;
                # skipping the whole-graph MinDist bounds keeps the
                # fallback path clear of the N^3 work that (on the
                # deadline rung) already proved pathological.
                at_mii = at_ii = 0
            evaluation = LoopEvaluation(
                loop=task.loop,
                n_ops=task.loop.graph.n_ops,
                n_real_ops=task.loop.graph.n_real_ops,
                n_edges=task.loop.graph.n_edges,
                mii_result=mii_result,
                result=result,
                list_sl=list_sl,
                mindist_sl_at_mii=at_mii,
                mindist_sl_at_ii=at_ii,
                counters=counters,
                degradation=degradation,
            )
            payload = evaluation_to_dict(evaluation, task.machine)
            if task.check:
                # Strict mode: the independent validator re-derives every
                # constraint before the payload may be cached — degraded
                # (relaxed-IMS and list-fallback) schedules included.
                phase_box[0] = "check"
                with timer.phase("check"), obs.span(
                    "check", loop=task.loop.name
                ) as check_span:
                    from repro.check import check_schedule

                    diags = check_schedule(
                        task.loop.graph,
                        task.machine,
                        result.schedule,
                        codegen=True,
                    )
                    check_span.set("findings", len(diags))
                obs.counter("check.schedules").inc()
                if len(diags):
                    obs.counter("check.findings").inc(len(diags))
                if not diags.ok:
                    obs.counter("check.rejected").inc()
                    raise StaticCheckError(diags)
                payload["check"] = {
                    "ok": True,
                    "warnings": len(diags.warnings),
                }
            if task.verify_iterations > 0 and task.loop.lowered is not None:
                phase_box[0] = "codegen"
                with timer.phase("codegen"):
                    from repro.codegen import emit_pipelined_code

                    emit_pipelined_code(task.loop.graph, result.schedule)
                phase_box[0] = "simulation"
                with timer.phase("simulation"):
                    from repro.simulator import check_equivalence

                    report = check_equivalence(
                        task.loop.lowered,
                        result.schedule,
                        n=task.verify_iterations,
                    )
                if not report.ok:
                    raise VerificationError(report.describe())
                payload["verify"] = {"n": task.verify_iterations, "ok": True}
            loop_span.set("ii", result.ii)
            loop_span.set("ok", True)
            if degradation is not None:
                loop_span.set("degraded", degradation["name"])
        except Exception as exc:  # surfaced as a structured LoopFailure
            payload = None
            cacheable = False
            detail: Dict[str, Any] = {}
            detail_of = getattr(exc, "detail", None)
            if callable(detail_of):
                try:
                    detail = detail_of()
                except Exception:
                    detail = {}
            failure = {
                "phase": phase_box[0],
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "detail": detail,
            }
            loop_span.set("ok", False)
            loop_span.set("failed_phase", phase_box[0])
    samples = profiler.take() if profiler is not None else None
    return {
        "payload": payload,
        "failure": failure,
        "seconds": timer.snapshot(),
        "obs": obs.to_dict() if task.observe else None,
        "profile": samples,
        "cacheable": cacheable,
    }


@dataclass
class _RunStats:
    """Mutable per-run resilience tallies (shared across the helpers)."""

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    reaped: int = 0
    degraded: int = 0
    resume_skipped: int = 0
    cache_corrupt: int = 0
    quarantined: int = 0
    diagnostics: List[str] = field(default_factory=list)


def _pool_failure(error_type: str, message: str) -> Dict[str, Any]:
    """A synthesized worker outcome for a pool-level casualty."""
    return {
        "payload": None,
        "failure": {
            "phase": "pool",
            "error_type": error_type,
            "message": message,
            "traceback": "",
            "detail": {},
        },
        "seconds": {},
        "obs": None,
        "profile": None,
        "cacheable": False,
    }


# ----------------------------------------------------------------------
# The engine


class EvaluationEngine:
    """Corpus evaluation with a process pool and an on-disk result cache.

    Parameters
    ----------
    machine:
        The target machine description.
    budget_ratio, exact_mii:
        Scheduler configuration, folded into every cache key.
    jobs:
        Worker processes for cache misses; ``1`` evaluates in-process,
        ``0``/``None`` means one per CPU.  Results are always returned in
        corpus order, independent of completion order.
    cache_dir:
        Directory for the content-addressed cache (created on demand);
        ``None`` disables caching entirely.
    use_cache:
        When False, the cache is neither read nor written even if
        ``cache_dir`` is set (the CLI's ``--no-cache``).
    verify_iterations:
        When positive, every loop with front-end metadata additionally
        runs code generation and ``verify_iterations`` iterations of the
        cycle-level simulator against the sequential oracle; a mismatch
        becomes a :class:`LoopFailure` with phase ``"simulation"``.
    check:
        Strict static-validation mode.  Every schedule — including the
        degradation ladder's relaxed-IMS and list-fallback outputs — is
        re-validated from first principles by :mod:`repro.check` before
        its payload is cached; an error-severity finding becomes a
        :class:`LoopFailure` with phase ``"check"`` carrying the full
        ``repro.check.v1`` diagnostics document.  Cache hits and resumed
        journal payloads are re-validated too (the validator is the
        corruption detector), at a few milliseconds per loop.
    obs:
        Optional :class:`repro.obs.ObsContext`.  When given, the run is
        traced end to end: a ``corpus.evaluate`` root span, a per-loop
        span tree from every worker (merged through the same JSON
        round-trip the payloads use), ``cache.load`` spans for hits, and
        a deterministic metric snapshot (cache counters, aggregated
        algorithm counters, II/attempt histograms) that is byte-identical
        for any ``jobs`` value on a clean run; ``resilience.*`` counters
        appear only when fault events actually happen.
    loop_timeout:
        Per-loop wall-clock deadline in seconds (None disables the
        watchdog).  Enforced cooperatively inside the algorithms, by a
        SIGALRM backstop in pool workers, and by the pool-side reaper.
    retry_policy:
        :class:`~repro.analysis.resilience.RetryPolicy` for transient and
        resource failures (default: 2 retries, capped backoff).
    degrade:
        Whether budget/deadline exhaustion falls down the degradation
        ladder instead of failing the loop (default True).
    journal_path:
        Path of the append-only checkpoint journal.  Defaults to
        ``<cache_dir>/journal.jsonl`` when caching is on; None disables
        journaling (and therefore resume).
    resume:
        Replay completed loops from the journal instead of re-evaluating
        them.  Requires a journal.
    quarantine_path:
        Where terminal failures are written as ``quarantine.json``
        (default ``<cache_dir>/quarantine.json`` when caching; None
        disables the file — failures still appear on the result).
    reap_after:
        Pool-side no-progress window in seconds before hung workers are
        killed and replaced (default ``2 * loop_timeout + 5`` when a
        timeout is set, else off).
    fault_plan:
        A :class:`~repro.analysis.faultinject.FaultPlan` for the
        resilience test-suite; defaults to the ``REPRO_FAULT_INJECT``
        environment spec (empty in production).
    profile_interval:
        When set, every worker runs under the sampling profiler
        (:class:`repro.obs.profile.SamplingProfiler`) at this interval
        in seconds; the merged collapsed stacks land on
        ``CorpusEvaluation.profile``.  ``None`` (the default) keeps the
        profiler entirely out of the workers.
    """

    def __init__(
        self,
        machine,
        budget_ratio: float = 6.0,
        exact_mii: bool = True,
        backend: str = "ims",
        jobs: Optional[int] = 1,
        cache_dir=None,
        use_cache: bool = True,
        verify_iterations: int = 0,
        check: bool = False,
        obs=None,
        loop_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        degrade: bool = True,
        journal_path=None,
        resume: bool = False,
        quarantine_path=None,
        reap_after: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        profile_interval: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.budget_ratio = budget_ratio
        self.exact_mii = exact_mii
        get_backend(backend)  # fail fast on an unknown backend name
        self.backend = backend
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.use_cache = use_cache
        self.verify_iterations = verify_iterations
        self.check = bool(check)
        self.obs = obs if obs is not None else NULL_OBS
        self.loop_timeout = float(loop_timeout) if loop_timeout else None
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.degrade = degrade
        if journal_path is not None:
            self.journal_path: Optional[Path] = Path(journal_path)
        elif self.caching:
            self.journal_path = self.cache_dir / "journal.jsonl"
        else:
            self.journal_path = None
        if resume and self.journal_path is None:
            raise ValueError(
                "resume needs a journal: enable the cache or pass journal_path"
            )
        self.resume = resume
        if quarantine_path is not None:
            self.quarantine_path: Optional[Path] = Path(quarantine_path)
        elif self.caching:
            self.quarantine_path = self.cache_dir / "quarantine.json"
        else:
            self.quarantine_path = None
        if reap_after is not None:
            self.reap_after: Optional[float] = float(reap_after)
        elif self.loop_timeout is not None:
            self.reap_after = 2.0 * self.loop_timeout + 5.0
        else:
            self.reap_after = None
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        # None/0 keeps the workers' disabled path a single falsy check.
        self.profile_interval = (
            float(profile_interval) if profile_interval else 0.0
        )

    # -- cache ---------------------------------------------------------

    @property
    def caching(self) -> bool:
        """Whether this engine reads and writes the on-disk cache."""
        return self.use_cache and self.cache_dir is not None

    def key_for(self, loop: CorpusLoop) -> str:
        """The cache key of one loop under this engine's configuration."""
        return cache_key(
            loop,
            self.machine,
            budget_ratio=self.budget_ratio,
            exact_mii=self.exact_mii,
            verify_iterations=self.verify_iterations,
            backend=self.backend,
        )

    def cache_path(self, key: str) -> Path:
        """On-disk location of a cache entry: ``<dir>/<key[:2]>/<key>.json``."""
        if self.cache_dir is None:
            raise ValueError("engine has no cache directory")
        return self.cache_dir / key[:2] / f"{key}.json"

    def _cache_read(
        self, key: str, stats: Optional[_RunStats] = None
    ) -> Optional[Dict[str, Any]]:
        """Load a payload, or None on miss.

        A present-but-unreadable entry (truncated JSON, a foreign or
        garbled document — the aftermath of a crash or disk fault) is a
        *counted* miss: the entry is deleted so the rewrite starts clean,
        and ``cache.corrupt`` ticks in the run's telemetry.
        """
        path = self.cache_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # genuinely absent: the ordinary miss
        try:
            data = json.loads(text)
        except (ValueError, EOFError, UnicodeDecodeError,
                pickle.UnpicklingError):
            data = None
        if not isinstance(data, dict) or data.get("format") != _PAYLOAD_FORMAT:
            if stats is not None:
                stats.cache_corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return data

    def _payload_checks(self, payload: Dict[str, Any], loop: CorpusLoop) -> bool:
        """Strict mode: re-validate a stored payload's schedule.

        The times, II and alternative choices are taken verbatim from the
        payload — they are what the store holds, so a bit flip that
        survived JSON parsing or a stale entry from a buggy scheduler
        build surfaces here as a rejected payload.  The graph comes from
        the live ``loop`` (graph identity is already part of the cache
        key, so a divergent graph can never be served for this key), and
        the codegen cross-checks are skipped: codegen artifacts are not
        stored but re-derived from the schedule, and the fresh-evaluation
        path validated that derivation when the entry was written.
        """
        try:
            from repro.check import check_schedule
            from repro.core.schedule import Schedule

            data = payload["schedule"]
            times = {int(op): t for op, t in data["times"].items()}
            alternatives = {}
            for op_text, alt_name in data["alternatives"].items():
                op = int(op_text)
                if alt_name is None:
                    alternatives[op] = None
                    continue
                opcode = self.machine.opcode(loop.graph.operation(op).opcode)
                matches = [
                    a for a in opcode.alternatives if a.name == alt_name
                ]
                if not matches:
                    return False
                alternatives[op] = matches[0]
            schedule = Schedule(
                loop.graph,
                data["ii"],
                times,
                alternatives,
                modulo=data.get("modulo", True),
            )
            diags = check_schedule(loop.graph, self.machine, schedule)
        except Exception:
            return False
        self.obs.counter("check.schedules").inc()
        return diags.ok

    def _cache_write(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist a payload (write-to-temp, then rename)."""
        path = self.cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, separators=(",", ":"))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _truncate_cache_entry(self, key: str) -> None:
        """Fault injection only: clip a just-written entry mid-document."""
        path = self.cache_path(key)
        try:
            raw = path.read_bytes()
            path.write_bytes(raw[: max(1, len(raw) // 2)])
        except OSError:
            pass

    # -- evaluation ----------------------------------------------------

    def evaluate(self, corpus: Sequence[CorpusLoop]) -> CorpusEvaluation:
        """Evaluate a corpus; never raises for per-loop failures."""
        started = time.perf_counter()
        obs = self.obs
        n = len(corpus)
        stats = _RunStats()
        with obs.span("corpus.evaluate", loops=n, jobs=self.jobs) as root:
            keys = [self.key_for(loop) for loop in corpus]
            payloads: List[Optional[Dict[str, Any]]] = [None] * n
            failures_by_index: Dict[int, LoopFailure] = {}
            seconds: List[Dict[str, float]] = [{} for _ in range(n)]
            hit_flags = [False] * n
            resumed_flags = [False] * n

            journal = (
                ResultJournal(self.journal_path)
                if self.journal_path is not None
                else None
            )
            journaled: Dict[str, Dict[str, Any]] = {}
            if self.resume and journal is not None:
                journaled = journal.load()

            pending: List[int] = []
            for index, key in enumerate(keys):
                record = journaled.get(key)
                if (
                    record is not None
                    and record.get("ok")
                    and isinstance(record.get("payload"), dict)
                ):
                    if self.check and not self._payload_checks(
                        record["payload"], corpus[index]
                    ):
                        stats.diagnostics.append(
                            f"resume: journaled payload for "
                            f"{corpus[index].name} failed the static "
                            "check; re-evaluating"
                        )
                        obs.counter("check.rejected").inc()
                    else:
                        payloads[index] = record["payload"]
                        resumed_flags[index] = True
                        seconds[index] = {"total": 0.0}
                        stats.resume_skipped += 1
                        continue
                if self.caching:
                    load_started = time.perf_counter()
                    with obs.span("cache.load", loop=corpus[index].name):
                        payload = self._cache_read(key, stats)
                    if payload is not None and self.check:
                        # Strict mode treats a hit that fails the
                        # validator as a corrupt entry: drop it and
                        # re-evaluate (which re-checks the fresh result).
                        if not self._payload_checks(payload, corpus[index]):
                            stats.cache_corrupt += 1
                            obs.counter("check.rejected").inc()
                            try:
                                self.cache_path(key).unlink()
                            except OSError:
                                pass
                            payload = None
                    if payload is not None:
                        elapsed = time.perf_counter() - load_started
                        payloads[index] = payload
                        hit_flags[index] = True
                        seconds[index] = {"load": elapsed, "total": elapsed}
                        continue
                pending.append(index)

            def finish(index: int, outcome: Dict[str, Any], attempts: int):
                """Bank one loop's terminal outcome as soon as it exists.

                Cache and journal writes happen here — per completion,
                not at end of run — so a kill -9 one loop before the end
                still leaves every earlier result durable for resume.
                """
                seconds[index] = outcome["seconds"]
                failure = outcome["failure"]
                if failure is not None:
                    failures_by_index[index] = LoopFailure(
                        index=index,
                        loop_name=corpus[index].name,
                        phase=failure["phase"],
                        error_type=failure["error_type"],
                        message=failure["message"],
                        traceback=failure.get("traceback", ""),
                        kind=classify_failure(failure["error_type"]),
                        attempts=attempts,
                        detail=failure.get("detail") or {},
                    )
                    if journal is not None:
                        journal.append(
                            keys[index],
                            index,
                            corpus[index].name,
                            failure=failures_by_index[index].to_dict(),
                        )
                    return
                payloads[index] = outcome["payload"]
                if self.caching and outcome.get("cacheable", True):
                    self._cache_write(keys[index], outcome["payload"])
                    if self.fault_plan.corrupts_cache(index):
                        self._truncate_cache_entry(keys[index])
                if journal is not None:
                    journal.append(
                        keys[index],
                        index,
                        corpus[index].name,
                        payload=outcome["payload"],
                    )

            outcomes: Dict[int, Dict[str, Any]] = {}
            try:
                if self.jobs > 1 and len(pending) > 1:
                    workers = min(self.jobs, len(pending))
                    with obs.span("corpus.fanout", workers=workers):
                        outcomes = self._run_pool(
                            corpus, pending, workers, stats, finish
                        )
                else:
                    outcomes = self._run_serial(
                        corpus, pending, stats, finish
                    )
            finally:
                if journal is not None:
                    journal.close()
                if self.profile_interval:
                    # The serial path arms the shared profiler in this
                    # very process; leave nothing ticking after the run.
                    from repro.obs.profile import stop_shared

                    stop_shared()

            # Absorb worker snapshots in corpus order (not completion
            # order) so the merged trace is reproducible run over run.
            profile: Optional[Dict[str, int]] = None
            for index in pending:
                outcome = outcomes.get(index)
                if outcome is not None:
                    obs.absorb(outcome.get("obs"), parent=root, index=index)
                    samples = outcome.get("profile")
                    if samples:
                        if profile is None:
                            profile = {}
                        for stack, count in samples.items():
                            profile[stack] = profile.get(stack, 0) + count

            evaluations: List[LoopEvaluation] = []
            failures: List[LoopFailure] = []
            timings: List[LoopTiming] = []
            for index, loop in enumerate(corpus):
                timings.append(
                    LoopTiming(
                        index=index,
                        loop_name=loop.name,
                        key=keys[index],
                        cache_hit=hit_flags[index],
                        seconds=seconds[index],
                        resumed=resumed_flags[index],
                    )
                )
                if index in failures_by_index:
                    failures.append(failures_by_index[index])
                elif payloads[index] is not None:
                    evaluations.append(
                        evaluation_from_dict(
                            payloads[index], loop, self.machine
                        )
                    )

            # Run-level telemetry: the Counters aggregate survives any
            # jobs fan-out (and cache hits) because every evaluation's
            # bundle rides through the same JSON payload.
            totals = Counters()
            for evaluation in evaluations:
                totals.merge(evaluation.counters)
                obs.histogram("loop.ops").observe(evaluation.n_real_ops)
                if evaluation.degradation is not None:
                    stats.degraded += 1
            obs.absorb_counters(totals)
            obs.counter("engine.loops").inc(n)
            obs.counter("engine.failures").inc(len(failures))
            obs.counter("engine.cache.hits").inc(sum(hit_flags))
            obs.counter("engine.cache.misses").inc(len(pending))
            # Resilience metrics tick only on actual events (and resume
            # only when requested), so a clean run's metric snapshot is
            # byte-identical to what it was before this layer existed.
            if self.resume:
                obs.counter("engine.resume.skipped").inc(stats.resume_skipped)
            for name, value in (
                ("resilience.retries", stats.retries),
                ("resilience.timeouts", stats.timeouts),
                ("resilience.crashes", stats.crashes),
                ("resilience.reaped", stats.reaped),
                ("resilience.degraded", stats.degraded),
                ("cache.corrupt", stats.cache_corrupt),
            ):
                if value:
                    obs.counter(name).inc(value)

            stats.quarantined = len(failures)
            if self.quarantine_path is not None:
                write_quarantine(
                    self.quarantine_path,
                    self.machine.name,
                    [f.to_dict() for f in failures],
                )
                if failures:
                    obs.counter("resilience.quarantined").inc(len(failures))
            root.set("failures", len(failures))
        return CorpusEvaluation(
            evaluations=evaluations,
            failures=failures,
            timings=timings,
            machine_name=self.machine.name,
            jobs=self.jobs,
            cache_dir=str(self.cache_dir) if self.cache_dir else None,
            cache_enabled=self.caching,
            hits=sum(hit_flags),
            misses=len(pending),
            wall_seconds=time.perf_counter() - started,
            counters=totals,
            metrics=obs.metrics.snapshot() if obs.enabled else None,
            profile=profile,
            retries=stats.retries,
            timeouts=stats.timeouts,
            crashes=stats.crashes,
            reaped=stats.reaped,
            degraded=stats.degraded,
            resume_skipped=stats.resume_skipped,
            cache_corrupt=stats.cache_corrupt,
            quarantined=stats.quarantined,
            diagnostics=stats.diagnostics,
            journal_path=(
                str(self.journal_path) if self.journal_path else None
            ),
            quarantine_path=(
                str(self.quarantine_path) if self.quarantine_path else None
            ),
        )

    # -- execution paths ----------------------------------------------

    def _make_task(
        self, loop: CorpusLoop, index: int, attempt: int, in_pool: bool
    ) -> _LoopTask:
        return _LoopTask(
            loop=loop,
            machine=self.machine,
            budget_ratio=self.budget_ratio,
            exact_mii=self.exact_mii,
            verify_iterations=self.verify_iterations,
            observe=self.obs.enabled,
            timeout=self.loop_timeout,
            degrade=self.degrade,
            attempt=attempt,
            faults=self.fault_plan.for_loop(index),
            in_pool=in_pool,
            index=index,
            check=self.check,
            backend=self.backend,
            profile=self.profile_interval,
        )

    @staticmethod
    def _note_failure(failure: Dict[str, Any], stats: _RunStats) -> None:
        """Tally one observed failure occurrence (retried or terminal)."""
        error_type = failure["error_type"]
        if error_type in ("WorkerCrash", "BrokenProcessPool", "BrokenExecutor"):
            stats.crashes += 1
        elif error_type == "WorkerHang":
            stats.reaped += 1
        elif classify_failure(error_type) == RESOURCE:
            stats.timeouts += 1

    def _run_serial(
        self,
        corpus: Sequence[CorpusLoop],
        pending: Sequence[int],
        stats: _RunStats,
        finish: Callable[[int, Dict[str, Any], int], None],
    ) -> Dict[int, Dict[str, Any]]:
        """In-process evaluation with the same retry semantics as the pool."""
        outcomes: Dict[int, Dict[str, Any]] = {}
        for index in pending:
            attempt = 0
            while True:
                task = self._make_task(
                    corpus[index], index, attempt, in_pool=False
                )
                outcome = _evaluate_loop_task(task)
                failure = outcome["failure"]
                if failure is None:
                    break
                self._note_failure(failure, stats)
                kind = classify_failure(failure["error_type"])
                if not self.retry_policy.should_retry(kind, attempt):
                    break
                stats.retries += 1
                time.sleep(self.retry_policy.delay(attempt))
                attempt += 1
            finish(index, outcome, attempt + 1)
            outcomes[index] = outcome
        return outcomes

    def _rebuild_pool(
        self, pool: ProcessPoolExecutor, workers: int
    ) -> ProcessPoolExecutor:
        pool.shutdown(wait=False)
        return ProcessPoolExecutor(max_workers=workers)

    def _run_pool(
        self,
        corpus: Sequence[CorpusLoop],
        pending: Sequence[int],
        workers: int,
        stats: _RunStats,
        finish: Callable[[int, Dict[str, Any], int], None],
    ) -> Dict[int, Dict[str, Any]]:
        """Pool fan-out with retries, crash salvage and the hang reaper.

        One wave loop owns everything: feed the pool (bounded in-flight),
        wait with a tick, bank completions, re-queue retryable failures
        through a backoff heap, and — when the pool breaks or stops
        making progress — salvage whatever finished, replace the pool,
        and carry on.  Loops are lost only when their retry budget is
        spent; the run itself never dies to a worker.
        """
        outcomes: Dict[int, Dict[str, Any]] = {}
        attempts = {index: 0 for index in pending}
        ready = deque(pending)
        delayed: List[Tuple[float, int]] = []  # (ready-at, index) heap
        inflight: Dict[Any, int] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        last_progress = time.monotonic()

        def resolve(index: int, outcome: Dict[str, Any]) -> None:
            failure = outcome["failure"]
            if failure is not None:
                self._note_failure(failure, stats)
                kind = classify_failure(failure["error_type"])
                if self.retry_policy.should_retry(kind, attempts[index]):
                    stats.retries += 1
                    ready_at = time.monotonic() + self.retry_policy.delay(
                        attempts[index]
                    )
                    attempts[index] += 1
                    heapq.heappush(delayed, (ready_at, index))
                    return
            finish(index, outcome, attempts[index] + 1)
            outcomes[index] = outcome

        def salvage_or(index: int, future, fallback: Dict[str, Any]) -> None:
            """A finished-before-disaster future keeps its real result."""
            if future.done() and not future.cancelled():
                try:
                    error = future.exception()
                except Exception:
                    error = fallback  # anything non-None suppresses result
                if error is None:
                    resolve(index, future.result())
                    return
            resolve(index, fallback)

        try:
            while ready or delayed or inflight:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    ready.append(heapq.heappop(delayed)[1])
                # Keep the pool fed, but bounded: pickled tasks waiting in
                # the call queue would all die with one crashed worker.
                while ready and len(inflight) < 2 * workers:
                    index = ready.popleft()
                    task = self._make_task(
                        corpus[index], index, attempts[index], in_pool=True
                    )
                    try:
                        future = pool.submit(_evaluate_loop_task, task)
                    except (BrokenProcessPool, RuntimeError):
                        pool = self._rebuild_pool(pool, workers)
                        future = pool.submit(_evaluate_loop_task, task)
                    inflight[future] = index
                if not inflight:
                    if delayed:  # only backoff timers left: sleep them out
                        time.sleep(
                            max(0.0, min(0.05, delayed[0][0] - time.monotonic()))
                        )
                    continue
                tick = (
                    0.05
                    if (self.reap_after is not None or delayed)
                    else None
                )
                done, _ = wait(
                    list(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                if not done:
                    if (
                        self.reap_after is not None
                        and time.monotonic() - last_progress >= self.reap_after
                    ):
                        # The reaper: nothing has completed for the whole
                        # window with work in flight — kill the workers
                        # (SIGKILL: a truly hung worker ignores polite
                        # signals by definition) and retry their loops.
                        stats.diagnostics.append(
                            f"reaper: no progress for {self.reap_after:.3g}s "
                            f"with {len(inflight)} loop(s) in flight; "
                            "killed and replaced the worker pool"
                        )
                        for process in list(
                            getattr(pool, "_processes", {}).values()
                        ):
                            process.kill()
                        wait(list(inflight), timeout=10.0)
                        for future, index in list(inflight.items()):
                            salvage_or(
                                index,
                                future,
                                _pool_failure(
                                    "WorkerHang",
                                    "worker made no progress within "
                                    f"{self.reap_after:.3g}s and was reaped",
                                ),
                            )
                        inflight.clear()
                        pool = self._rebuild_pool(pool, workers)
                        last_progress = time.monotonic()
                    continue
                last_progress = time.monotonic()
                pool_broke = False
                for future in done:
                    index = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        resolve(index, future.result())
                    else:
                        pool_broke = pool_broke or isinstance(
                            error, BrokenProcessPool
                        )
                        resolve(
                            index,
                            _pool_failure(
                                type(error).__name__,
                                str(error) or "worker died abruptly",
                            ),
                        )
                if pool_broke:
                    # One dead worker condemns every in-flight future of
                    # this executor.  Salvage the ones that completed
                    # before the break, retry the rest as crashes, and
                    # run on with a fresh pool.
                    stats.diagnostics.append(
                        "worker pool broke (a worker died); salvaged "
                        "finished results, rebuilt the pool and resumed"
                    )
                    for future, index in list(inflight.items()):
                        salvage_or(
                            index,
                            future,
                            _pool_failure(
                                "WorkerCrash",
                                "in flight when the worker pool broke",
                            ),
                        )
                    inflight.clear()
                    pool = self._rebuild_pool(pool, workers)
        finally:
            pool.shutdown(wait=False)
        return outcomes

    def evaluate_loop(self, loop: CorpusLoop) -> LoopEvaluation:
        """Evaluate (or load) one loop; raises on failure."""
        result = self.evaluate([loop])
        if result.failures:
            failure = result.failures[0]
            raise RuntimeError(failure.describe())
        return result.evaluations[0]
