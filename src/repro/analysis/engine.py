"""Parallel, content-addressed corpus evaluation.

The paper's evaluation (Section 4) modulo-schedules 1327 loops to build
every table and figure; re-running that serially and from scratch for
each benchmark is the single biggest cost in the harness.  This module is
the substrate that makes corpus-scale evaluation cheap and repeatable:

* a **content-addressed result cache**: every per-loop evaluation is
  stored on disk under a stable hash of (loop IR, machine description,
  scheduler configuration, code-format version), so unchanged loops are
  never re-scheduled or re-simulated across runs — and any change to the
  loop's graph, the machine's latencies or reservation tables, or the
  scheduler's budget automatically invalidates only the affected entries;
* a **process-pool fan-out** over :func:`evaluate_loop`'s work with
  deterministic, corpus-order results regardless of completion order;
* **structured failure records**: a loop that cannot be scheduled (or
  fails verification) no longer aborts the corpus run — it is reported as
  a :class:`LoopFailure` alongside the successful evaluations;
* **per-loop phase timings** (mindist / scheduling / codegen /
  simulation) and cache hit/miss counters, emitted as JSON for the
  regression harness (see :func:`repro.analysis.regression.timing_speedup`).

Both the serial and the parallel path round-trip each evaluation through
the same JSON payload that the cache stores, so results are bit-identical
whether they were computed in-process, in a worker, or loaded from disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.runner import LoopEvaluation
from repro.baselines.list_scheduler import list_schedule_length
from repro.core.mii import MIIResult, compute_mii
from repro.core.mindist import schedule_length_lower_bound
from repro.core.scheduler import ModuloScheduleResult, modulo_schedule
from repro.core.stats import Counters
from repro.core.trace import PhaseTimer
from repro.ir.serialize import graph_to_dict, schedule_from_dict, schedule_to_dict
from repro.machine.serialize import machine_to_dict
from repro.obs.context import NULL_OBS, ObsContext
from repro.workloads.corpus import CorpusLoop

#: Version of the evaluation semantics baked into every cache key.  Bump
#: whenever the meaning of a cached payload changes (new measurements, a
#: scheduler fix that alters results, a payload schema change) so stale
#: entries are never resurrected.
CODE_FORMAT_VERSION = 2  # v2: Counters gained ops_forced (obs layer)

_PAYLOAD_FORMAT = "repro.loop-evaluation.v1"
TIMING_FORMAT = "repro.engine-timing.v1"

#: The per-loop phases the engine accounts for.
PHASES = ("mindist", "scheduling", "codegen", "simulation")


class VerificationError(RuntimeError):
    """The pipelined schedule disagreed with the sequential oracle."""


# ----------------------------------------------------------------------
# Cache keys


def cache_key(
    loop: Union[CorpusLoop, Any],
    machine,
    budget_ratio: float = 6.0,
    exact_mii: bool = True,
    verify_iterations: int = 0,
) -> str:
    """Stable, content-addressed key for one loop evaluation.

    The key is the SHA-256 of a canonical JSON document covering
    everything the evaluation's outcome depends on: the loop's dependence
    graph, the full machine description (latencies, reservation tables),
    the scheduler configuration, and :data:`CODE_FORMAT_VERSION`.  It is
    stable across processes and interpreter restarts (no reliance on
    ``hash()``), and any semantic mutation of an input changes it.

    ``loop`` may be a :class:`CorpusLoop` or a bare dependence graph; the
    execution profile (``entry_freq``/``loop_freq``) is deliberately *not*
    part of the key — it scales the execution-time model but never the
    schedule, and is re-attached from the live loop on every load.
    """
    graph = loop.graph if isinstance(loop, CorpusLoop) else loop
    document = {
        "version": CODE_FORMAT_VERSION,
        "graph": graph_to_dict(graph),
        "machine": machine_to_dict(machine),
        "config": {
            "budget_ratio": budget_ratio,
            "exact_mii": exact_mii,
            "verify_iterations": verify_iterations,
        },
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Evaluation payloads (the cached, process-portable form)


def evaluation_to_dict(evaluation: LoopEvaluation, machine) -> Dict[str, Any]:
    """Serialize a :class:`LoopEvaluation` to a JSON-compatible payload.

    Only the measurements are stored; the :class:`CorpusLoop` (with its
    execution profile) is re-attached by :func:`evaluation_from_dict`.
    """
    mii = evaluation.mii_result
    result = evaluation.result
    return {
        "format": _PAYLOAD_FORMAT,
        "n_ops": evaluation.n_ops,
        "n_real_ops": evaluation.n_real_ops,
        "n_edges": evaluation.n_edges,
        "mii": {
            "res_mii": mii.res_mii,
            "rec_mii": mii.rec_mii,
            "mii": mii.mii,
            "components": [list(c) for c in mii.components],
            "rec_mii_exact": mii.rec_mii_exact,
        },
        "schedule": schedule_to_dict(result.schedule, machine),
        "search": {
            "budget_ratio": result.budget_ratio,
            "attempts": result.attempts,
            "steps_total": result.steps_total,
            "steps_last": result.steps_last,
        },
        "list_sl": evaluation.list_sl,
        "mindist_sl_at_mii": evaluation.mindist_sl_at_mii,
        "mindist_sl_at_ii": evaluation.mindist_sl_at_ii,
        "counters": evaluation.counters.snapshot(),
    }


def evaluation_from_dict(
    data: Dict[str, Any], loop: CorpusLoop, machine
) -> LoopEvaluation:
    """Rebuild a :class:`LoopEvaluation` from :func:`evaluation_to_dict`."""
    if data.get("format") != _PAYLOAD_FORMAT:
        raise ValueError(
            f"not a serialized loop evaluation: format {data.get('format')!r}"
        )
    counters = Counters(**data["counters"])
    mii_data = data["mii"]
    mii_result = MIIResult(
        res_mii=mii_data["res_mii"],
        rec_mii=mii_data["rec_mii"],
        mii=mii_data["mii"],
        components=[list(c) for c in mii_data["components"]],
        rec_mii_exact=mii_data["rec_mii_exact"],
    )
    search = data["search"]
    result = ModuloScheduleResult(
        schedule=schedule_from_dict(data["schedule"], machine),
        mii_result=mii_result,
        budget_ratio=search["budget_ratio"],
        attempts=search["attempts"],
        steps_total=search["steps_total"],
        steps_last=search["steps_last"],
        counters=counters,
    )
    return LoopEvaluation(
        loop=loop,
        n_ops=data["n_ops"],
        n_real_ops=data["n_real_ops"],
        n_edges=data["n_edges"],
        mii_result=mii_result,
        result=result,
        list_sl=data["list_sl"],
        mindist_sl_at_mii=data["mindist_sl_at_mii"],
        mindist_sl_at_ii=data["mindist_sl_at_ii"],
        counters=counters,
    )


# ----------------------------------------------------------------------
# Structured records


@dataclass(frozen=True)
class LoopFailure:
    """One loop that could not be evaluated (the run continues without it)."""

    index: int
    loop_name: str
    phase: str
    error_type: str
    message: str
    traceback: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (traceback included for the report)."""
        return {
            "index": self.index,
            "loop": self.loop_name,
            "phase": self.phase,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    def describe(self) -> str:
        """One-line rendering for logs and CLI output."""
        return (
            f"{self.loop_name}: {self.error_type} during {self.phase}: "
            f"{self.message}"
        )


@dataclass(frozen=True)
class LoopTiming:
    """Structured per-loop timing record (one per corpus loop, in order)."""

    index: int
    loop_name: str
    key: str
    cache_hit: bool
    seconds: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form for the timing report."""
        return {
            "index": self.index,
            "loop": self.loop_name,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "seconds": dict(self.seconds),
        }


@dataclass
class CorpusEvaluation:
    """Everything one engine run over a corpus produced.

    ``evaluations`` holds the successful records in corpus order;
    ``failures`` the loops that raised (also in corpus order); ``timings``
    one record per corpus loop regardless of outcome.  ``counters`` is
    the run-level :class:`Counters` aggregate merged over every
    successful evaluation — cache hits included — so Table-4-style
    complexity data survives any ``jobs`` fan-out.  ``metrics`` is the
    deterministic metric snapshot of the engine's
    :class:`~repro.obs.ObsContext` (``None`` when observability is off).
    """

    evaluations: List[LoopEvaluation]
    failures: List[LoopFailure]
    timings: List[LoopTiming]
    machine_name: str
    jobs: int
    cache_dir: Optional[str]
    cache_enabled: bool
    hits: int
    misses: int
    wall_seconds: float
    counters: Counters = field(default_factory=Counters)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when every loop evaluated successfully."""
        return not self.failures

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per phase, aggregated over all loops."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            for name, value in timing.seconds.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def timing_report(self) -> Dict[str, Any]:
        """The structured timing document the regression harness consumes.

        Alongside the timings proper the report carries the run-level
        telemetry snapshot: the aggregated algorithm ``counters`` and,
        when the run was observed, the deterministic ``metrics``
        registry — a stable schema for BENCH_*.json to track across PRs.
        """
        return {
            "format": TIMING_FORMAT,
            "machine": self.machine_name,
            "jobs": self.jobs,
            "cache": {
                "enabled": self.cache_enabled,
                "dir": self.cache_dir,
                "hits": self.hits,
                "misses": self.misses,
            },
            "n_loops": len(self.timings),
            "n_failures": len(self.failures),
            "wall_seconds": self.wall_seconds,
            "phase_seconds": self.phase_seconds(),
            "counters": self.counters.snapshot(),
            "metrics": self.metrics,
            "loops": [t.to_dict() for t in self.timings],
            "failures": [f.to_dict() for f in self.failures],
        }

    def write_timing_json(self, path) -> Path:
        """Write :meth:`timing_report` to ``path`` (created/overwritten)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.timing_report(), indent=2) + "\n")
        return path

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        cache = (
            f"{self.hits} cache hits, {self.misses} misses"
            if self.cache_enabled
            else "cache off"
        )
        return (
            f"{len(self.timings)} loops in {self.wall_seconds:.2f}s "
            f"(jobs={self.jobs}, {cache}, {len(self.failures)} failures)"
        )


# ----------------------------------------------------------------------
# The per-loop worker (module-level so process pools can pickle it)


def _evaluate_loop_payload(
    loop: CorpusLoop,
    machine,
    budget_ratio: float,
    exact_mii: bool,
    verify_iterations: int,
    observe: bool = False,
):
    """Evaluate one loop; returns ``(payload, failure, seconds, obs)``.

    Exactly one of ``payload`` / ``failure`` is non-None.  Everything
    returned is JSON-compatible, so the tuple crosses process boundaries
    cheaply and uniformly.  With ``observe=True`` the loop runs under its
    own :class:`~repro.obs.ObsContext`; its serialized snapshot rides
    back in the fourth slot for the engine to merge (``None`` otherwise).
    """
    obs = ObsContext() if observe else NULL_OBS
    timer = obs.timer()
    phase = "setup"
    payload = None
    failure = None
    with obs.span("loop", loop=loop.name) as loop_span:
        try:
            counters = Counters()
            phase = "mindist"
            with timer.phase("mindist"):
                mii_result = compute_mii(
                    loop.graph, machine, counters, exact=exact_mii, obs=obs
                )
            phase = "scheduling"
            with timer.phase("scheduling"):
                result = modulo_schedule(
                    loop.graph,
                    machine,
                    budget_ratio=budget_ratio,
                    counters=counters,
                    mii_result=mii_result,
                    obs=obs,
                )
                list_sl = list_schedule_length(loop.graph, machine)
            phase = "mindist"
            with timer.phase("mindist"):
                memo = mii_result.mindist_memo
                at_mii = schedule_length_lower_bound(
                    loop.graph, mii_result.mii, obs=obs, memo=memo
                )
                if result.ii == mii_result.mii:
                    at_ii = at_mii
                else:
                    at_ii = schedule_length_lower_bound(
                        loop.graph, result.ii, obs=obs, memo=memo
                    )
            evaluation = LoopEvaluation(
                loop=loop,
                n_ops=loop.graph.n_ops,
                n_real_ops=loop.graph.n_real_ops,
                n_edges=loop.graph.n_edges,
                mii_result=mii_result,
                result=result,
                list_sl=list_sl,
                mindist_sl_at_mii=at_mii,
                mindist_sl_at_ii=at_ii,
                counters=counters,
            )
            payload = evaluation_to_dict(evaluation, machine)
            if verify_iterations > 0 and loop.lowered is not None:
                phase = "codegen"
                with timer.phase("codegen"):
                    from repro.codegen import emit_pipelined_code

                    emit_pipelined_code(loop.graph, result.schedule)
                phase = "simulation"
                with timer.phase("simulation"):
                    from repro.simulator import check_equivalence

                    report = check_equivalence(
                        loop.lowered, result.schedule, n=verify_iterations
                    )
                if not report.ok:
                    raise VerificationError(report.describe())
                payload["verify"] = {"n": verify_iterations, "ok": True}
            loop_span.set("ii", result.ii)
            loop_span.set("ok", True)
        except Exception as exc:  # surfaced as a structured LoopFailure
            payload = None
            failure = {
                "phase": phase,
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            loop_span.set("ok", False)
            loop_span.set("failed_phase", phase)
    obs_snapshot = obs.to_dict() if observe else None
    return payload, failure, timer.snapshot(), obs_snapshot


# ----------------------------------------------------------------------
# The engine


class EvaluationEngine:
    """Corpus evaluation with a process pool and an on-disk result cache.

    Parameters
    ----------
    machine:
        The target machine description.
    budget_ratio, exact_mii:
        Scheduler configuration, forwarded to :func:`evaluate_loop`'s
        work and folded into every cache key.
    jobs:
        Worker processes for cache misses; ``1`` evaluates in-process,
        ``0``/``None`` means one per CPU.  Results are always returned in
        corpus order, independent of completion order.
    cache_dir:
        Directory for the content-addressed cache (created on demand);
        ``None`` disables caching entirely.
    use_cache:
        When False, the cache is neither read nor written even if
        ``cache_dir`` is set (the CLI's ``--no-cache``).
    verify_iterations:
        When positive, every loop with front-end metadata additionally
        runs code generation and ``verify_iterations`` iterations of the
        cycle-level simulator against the sequential oracle; a mismatch
        becomes a :class:`LoopFailure` with phase ``"simulation"``.
    obs:
        Optional :class:`repro.obs.ObsContext`.  When given, the run is
        traced end to end: a ``corpus.evaluate`` root span, a per-loop
        span tree from every worker (merged through the same JSON
        round-trip the payloads use), ``cache.load`` spans for hits, and
        a deterministic metric snapshot (cache counters, aggregated
        algorithm counters, II/attempt histograms) that is byte-identical
        for any ``jobs`` value.
    """

    def __init__(
        self,
        machine,
        budget_ratio: float = 6.0,
        exact_mii: bool = True,
        jobs: Optional[int] = 1,
        cache_dir=None,
        use_cache: bool = True,
        verify_iterations: int = 0,
        obs=None,
    ) -> None:
        self.machine = machine
        self.budget_ratio = budget_ratio
        self.exact_mii = exact_mii
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.use_cache = use_cache
        self.verify_iterations = verify_iterations
        self.obs = obs if obs is not None else NULL_OBS

    # -- cache ---------------------------------------------------------

    @property
    def caching(self) -> bool:
        """Whether this engine reads and writes the on-disk cache."""
        return self.use_cache and self.cache_dir is not None

    def key_for(self, loop: CorpusLoop) -> str:
        """The cache key of one loop under this engine's configuration."""
        return cache_key(
            loop,
            self.machine,
            budget_ratio=self.budget_ratio,
            exact_mii=self.exact_mii,
            verify_iterations=self.verify_iterations,
        )

    def cache_path(self, key: str) -> Path:
        """On-disk location of a cache entry: ``<dir>/<key[:2]>/<key>.json``."""
        if self.cache_dir is None:
            raise ValueError("engine has no cache directory")
        return self.cache_dir / key[:2] / f"{key}.json"

    def _cache_read(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a payload, or None on miss/corruption (corrupt = miss)."""
        try:
            text = self.cache_path(key).read_text()
            data = json.loads(text)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("format") != _PAYLOAD_FORMAT:
            return None
        return data

    def _cache_write(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist a payload (write-to-temp, then rename)."""
        path = self.cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, separators=(",", ":"))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    # -- evaluation ----------------------------------------------------

    def evaluate(self, corpus: Sequence[CorpusLoop]) -> CorpusEvaluation:
        """Evaluate a corpus; never raises for per-loop failures."""
        started = time.perf_counter()
        obs = self.obs
        n = len(corpus)
        with obs.span("corpus.evaluate", loops=n, jobs=self.jobs) as root:
            keys = [self.key_for(loop) for loop in corpus]
            payloads: List[Optional[Dict[str, Any]]] = [None] * n
            failures_by_index: Dict[int, LoopFailure] = {}
            seconds: List[Dict[str, float]] = [{} for _ in range(n)]
            hit_flags = [False] * n

            pending: List[int] = []
            for index, key in enumerate(keys):
                if self.caching:
                    load_started = time.perf_counter()
                    with obs.span("cache.load", loop=corpus[index].name):
                        payload = self._cache_read(key)
                    if payload is not None:
                        elapsed = time.perf_counter() - load_started
                        payloads[index] = payload
                        hit_flags[index] = True
                        seconds[index] = {"load": elapsed, "total": elapsed}
                        continue
                pending.append(index)

            config = (
                self.machine,
                self.budget_ratio,
                self.exact_mii,
                self.verify_iterations,
                obs.enabled,
            )
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with obs.span("corpus.fanout", workers=workers):
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        futures = [
                            pool.submit(
                                _evaluate_loop_payload, corpus[i], *config
                            )
                            for i in pending
                        ]
                        outcomes = [future.result() for future in futures]
            else:
                outcomes = [
                    _evaluate_loop_payload(corpus[i], *config)
                    for i in pending
                ]

            for index, (payload, failure, secs, snapshot) in zip(
                pending, outcomes
            ):
                seconds[index] = secs
                obs.absorb(snapshot, parent=root, index=index)
                if failure is not None:
                    failures_by_index[index] = LoopFailure(
                        index=index, loop_name=corpus[index].name, **failure
                    )
                    continue
                payloads[index] = payload
                if self.caching:
                    self._cache_write(keys[index], payload)

            evaluations: List[LoopEvaluation] = []
            failures: List[LoopFailure] = []
            timings: List[LoopTiming] = []
            for index, loop in enumerate(corpus):
                timings.append(
                    LoopTiming(
                        index=index,
                        loop_name=loop.name,
                        key=keys[index],
                        cache_hit=hit_flags[index],
                        seconds=seconds[index],
                    )
                )
                if index in failures_by_index:
                    failures.append(failures_by_index[index])
                elif payloads[index] is not None:
                    evaluations.append(
                        evaluation_from_dict(
                            payloads[index], loop, self.machine
                        )
                    )

            # Run-level telemetry: the Counters aggregate survives any
            # jobs fan-out (and cache hits) because every evaluation's
            # bundle rides through the same JSON payload.
            totals = Counters()
            for evaluation in evaluations:
                totals.merge(evaluation.counters)
                obs.histogram("loop.ops").observe(evaluation.n_real_ops)
            obs.absorb_counters(totals)
            obs.counter("engine.loops").inc(n)
            obs.counter("engine.failures").inc(len(failures))
            obs.counter("engine.cache.hits").inc(sum(hit_flags))
            obs.counter("engine.cache.misses").inc(len(pending))
            root.set("failures", len(failures))
        return CorpusEvaluation(
            evaluations=evaluations,
            failures=failures,
            timings=timings,
            machine_name=self.machine.name,
            jobs=self.jobs,
            cache_dir=str(self.cache_dir) if self.cache_dir else None,
            cache_enabled=self.caching,
            hits=sum(hit_flags),
            misses=len(pending),
            wall_seconds=time.perf_counter() - started,
            counters=totals,
            metrics=obs.metrics.snapshot() if obs.enabled else None,
        )

    def evaluate_loop(self, loop: CorpusLoop) -> LoopEvaluation:
        """Evaluate (or load) one loop; raises on failure."""
        result = self.evaluate([loop])
        if result.failures:
            failure = result.failures[0]
            raise RuntimeError(failure.describe())
        return result.evaluations[0]
