"""Command-line interface: compile, analyze and schedule DSL loops.

Usage (see ``python -m repro --help``)::

    python -m repro machines
    python -m repro mii loop.dsl --machine cydra5
    python -m repro schedule loop.dsl --budget-ratio 2 --verify 50 --kernel
    python -m repro schedule loop.dsl --json > schedule.json
    python -m repro corpus --loops 200
    python -m repro corpus --loops 200 --obs-db obs.db --profile
    python -m repro obs report --db obs.db
    python -m repro obs diff --db obs.db BASE [OTHER]
    python -m repro check --loops 200 --jobs 2 --json check.json
    python -m repro lint --all-machines

``loop.dsl`` contains a single DSL loop, e.g.::

    for i in n:
        s = s + x[i] * y[i]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core import compute_mii, recommend_unroll
from repro.ir import DelayModel, schedule_to_json
from repro.loopir import compile_loop_full
from repro.machine import (
    bus_conflict_machine,
    cydra5,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)
from repro.simulator import check_equivalence

MACHINES: Dict[str, Callable] = {
    "cydra5": cydra5,
    "single_alu": single_alu_machine,
    "two_alu": two_alu_machine,
    "superscalar": superscalar_machine,
    "bus_conflict": bus_conflict_machine,
}


class _ObsConfigError(Exception):
    """A bad --obs-out / --obs-format combination (clean exit code 2)."""


def _obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-out", default=None, metavar="FILE",
        help="trace the run and write spans + metrics to FILE "
             "(repro.obs.v1 JSONL by default)",
    )
    parser.add_argument(
        "--obs-format", default="jsonl", metavar="FMT",
        help="obs export format: jsonl (schema repro.obs.v1) or chrome "
             "(Perfetto / chrome://tracing trace-event JSON)",
    )


def _obs_context(args):
    """Build the ObsContext requested by --obs-out, validating up front.

    Returns ``None`` when tracing was not requested.  An unknown format
    or an unwritable output path raises :class:`_ObsConfigError` *before*
    any scheduling work happens (mirroring the --cache-dir handling: a
    clean message on stderr and exit code 2, never a traceback after a
    long run).
    """
    if args.obs_out is None:
        return None
    from repro.obs import FORMATS, ObsContext

    if args.obs_format not in FORMATS:
        raise _ObsConfigError(
            f"unknown obs format {args.obs_format!r} "
            f"(choose from {', '.join(FORMATS)})"
        )
    try:
        with open(args.obs_out, "w"):
            pass
    except OSError as exc:
        raise _ObsConfigError(
            f"obs output path unusable: {exc}"
        ) from None
    return ObsContext()


def _write_obs(obs, args, out, run: Dict) -> None:
    """Export a traced run to --obs-out and print the text summary."""
    from repro.analysis.report import render_obs_summary
    from repro.obs import write_export

    snapshot = obs.to_dict()
    path = write_export(snapshot, args.obs_out, args.obs_format, run=run)
    print(render_obs_summary(snapshot), file=out)
    print(
        f"obs export ({args.obs_format}) written to {path}", file=out
    )


def _backend_argument(parser: argparse.ArgumentParser) -> None:
    from repro.backends import backend_names

    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="ims",
        help="scheduler backend (default: ims; 'exact' proves II "
             "minimality with a SAT search from the MII upward)",
    )


def _resolve_backend(args):
    """Instantiate args.backend, or print an error and return None.

    Backend construction can fail cleanly (unknown name, or an exact
    solver requested via REPRO_SAT_SOLVER that is not installed); both
    become exit code 2 in the caller, never a traceback.
    """
    from repro.backends import get_backend
    from repro.backends.z3bridge import SolverUnavailable

    try:
        return get_backend(args.backend)
    except (ValueError, SolverUnavailable) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _machine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        choices=sorted(MACHINES),
        default="cydra5",
        help="target machine description (default: cydra5)",
    )
    parser.add_argument(
        "--conservative-delays",
        action="store_true",
        help="use Table 1's conservative (superscalar) delay column",
    )


def _compile(args, out):
    """Compile the DSL file named by args; returns (lowered, machine)."""
    machine = MACHINES[args.machine]()
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    model = (
        DelayModel.CONSERVATIVE
        if args.conservative_delays
        else DelayModel.VLIW
    )
    return compile_loop_full(source, machine, delay_model=model), machine


def _cmd_machines(args, out) -> int:
    for name in sorted(MACHINES):
        machine = MACHINES[name]()
        census = machine.table_kind_census()
        shapes = ", ".join(f"{k.value}:{v}" for k, v in census.items() if v)
        print(
            f"{name:<14} {len(machine.resources):>2} resources, "
            f"{len(machine.opcode_names):>2} opcodes  [{shapes}]",
            file=out,
        )
    return 0


def _cmd_mii(args, out) -> int:
    lowered, machine = _compile(args, out)
    result = compute_mii(lowered.graph, machine, exact=True)
    print(f"loop: {lowered.graph.n_real_ops} operations, "
          f"{lowered.graph.n_edges} edges", file=out)
    print(f"ResMII = {result.res_mii}", file=out)
    print(f"RecMII = {result.rec_mii}", file=out)
    print(f"MII    = {result.mii}", file=out)
    print(
        f"non-trivial SCCs: {result.n_nontrivial_sccs} "
        f"(largest {max(result.scc_sizes)})",
        file=out,
    )
    if args.recommend_unroll > 1:
        recommendation = recommend_unroll(
            lowered.graph, machine, max_factor=args.recommend_unroll
        )
        table = ", ".join(
            f"{f}x:{v:.2f}"
            for f, v in sorted(recommendation.amortized_by_factor.items())
        )
        print(
            f"amortized MII by unroll factor: {table} -> "
            f"recommend {recommendation.factor}x",
            file=out,
        )
    return 0


def _cmd_schedule(args, out) -> int:
    from repro.core import ScheduleTrace
    from repro.obs.context import NULL_OBS

    try:
        obs = _obs_context(args)
    except _ObsConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = obs if obs is not None else NULL_OBS
    with obs.span("frontend", file=args.file):
        lowered, machine = _compile(args, out)
    from repro.backends import IIPolicy

    backend = _resolve_backend(args)
    if backend is None:
        return 2
    trace = ScheduleTrace() if args.trace else None
    result = backend.schedule(
        lowered.graph,
        machine,
        IIPolicy(budget_ratio=args.budget_ratio),
        trace=trace,
        obs=obs,
    )
    if args.json:
        print(schedule_to_json(result.schedule, machine, indent=2), file=out)
        if args.obs_out:
            from repro.obs import write_export

            # Machine-output mode: export silently, keep stdout pure JSON.
            write_export(
                obs.to_dict(), args.obs_out, args.obs_format,
                run={"command": "schedule", "file": args.file,
                     "machine": args.machine},
            )
        return 0
    mii = result.mii_result
    print(
        f"MII={mii.mii} (Res {mii.res_mii} / Rec {mii.rec_mii})  "
        f"II={result.ii}  SL={result.schedule_length}  "
        f"stages={result.schedule.stage_count}  "
        f"attempts={result.attempts}  steps/op={result.inefficiency:.2f}",
        file=out,
    )
    if backend.proves_optimality:
        if result.optimal:
            gap = result.optimality_gap
            detail = (
                "heuristic matched it"
                if gap == 0
                else f"heuristic II was {result.heuristic_ii}"
            )
            print(f"II={result.ii} proven minimal ({detail})", file=out)
        else:
            print(
                "optimality unproven (solver budget exhausted below "
                f"II={result.ii})",
                file=out,
            )
    if args.kernel:
        print(result.schedule.describe(), file=out)
    if args.trace:
        print(trace.render(lowered.graph), file=out)
    if args.gantt:
        from repro.viz import resource_gantt

        print(resource_gantt(lowered.graph, machine, result.schedule), file=out)
    if args.diagram:
        from repro.viz import pipeline_diagram

        print(pipeline_diagram(lowered.graph, result.schedule), file=out)
    if args.verify:
        with obs.span("simulation", iterations=args.verify):
            report = check_equivalence(
                lowered, result.schedule, n=args.verify
            )
        print(
            f"simulation vs sequential oracle ({args.verify} iterations): "
            f"{'OK' if report.ok else 'MISMATCH'}",
            file=out,
        )
        if not report.ok:
            print(report.describe(), file=out)
            return 1
    if args.obs_out:
        try:
            _write_obs(
                obs, args, out,
                run={"command": "schedule", "file": args.file,
                     "machine": args.machine},
            )
        except OSError as exc:
            print(f"error: obs output path unusable: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_lint(args, out) -> int:
    """Run the static linters over machines (and optionally one loop)."""
    import inspect

    from repro.check import (
        Diagnostics,
        lint_graph,
        lint_machine,
        lint_mindist,
        waivers_in_source,
    )

    diags = Diagnostics()
    names = sorted(MACHINES) if args.all_machines else [args.machine]
    for name in names:
        factory = MACHINES[name]
        machine = factory()
        waivers = waivers_in_source(inspect.getmodule(factory))
        diags.extend(lint_machine(machine, waivers=waivers))
    if args.file is not None:
        lowered, machine = _compile(args, out)
        lint_graph(lowered.graph, diagnostics=diags)
        lint_mindist(lowered.graph, machine, diagnostics=diags)
    print(diags.render(), file=out)
    if args.json:
        from pathlib import Path

        document = diags.to_dict(
            run={"command": "lint", "machines": names, "file": args.file}
        )
        Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
        print(f"diagnostics written to {args.json}", file=out)
    return 0 if diags.ok else 1


def _cmd_check(args, out) -> int:
    """Statically validate one loop's schedule, or a whole corpus."""
    from pathlib import Path

    from repro.check import Diagnostics, check_schedule

    if args.file is not None:
        from repro.backends import IIPolicy

        backend = _resolve_backend(args)
        if backend is None:
            return 2
        lowered, machine = _compile(args, out)
        result = backend.schedule(
            lowered.graph, machine,
            IIPolicy(budget_ratio=args.budget_ratio),
        )
        diags = check_schedule(
            lowered.graph, machine, result.schedule, codegen=True
        )
        print(
            f"{lowered.graph.name}: II={result.ii} "
            f"SL={result.schedule_length}",
            file=out,
        )
        print(diags.render(), file=out)
        if args.json:
            document = diags.to_dict(
                run={"command": "check", "file": args.file,
                     "machine": args.machine}
            )
            Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
            print(f"diagnostics written to {args.json}", file=out)
        return 0 if diags.ok else 1

    # Corpus mode: the evaluation engine in strict --check mode; every
    # schedule (degraded-ladder fallbacks included) passes through the
    # independent validator before it is cached or counted.
    from repro.analysis.engine import EvaluationEngine
    from repro.analysis.resilience import RetryPolicy
    from repro.workloads import build_corpus
    from repro.workloads.kernels import KERNELS

    machine = MACHINES[args.machine]()
    n_synthetic = max(0, args.loops - len(KERNELS))
    corpus = build_corpus(machine, n_synthetic=n_synthetic, seed=args.seed)
    try:
        engine = EvaluationEngine(
            machine,
            budget_ratio=args.budget_ratio,
            backend=args.backend,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            verify_iterations=args.verify,
            check=True,
            retry_policy=RetryPolicy(max_retries=args.retries),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = engine.evaluate(corpus)
    except OSError as exc:
        print(f"error: cache directory unusable: {exc}", file=sys.stderr)
        return 2
    diags = Diagnostics()
    other_failures = []
    for failure in result.failures:
        entries = (
            failure.detail.get("diagnostics")
            if failure.phase == "check"
            else None
        )
        if entries:
            for entry in entries:
                diags.add(
                    entry.get("code", "SCHED005"),
                    f"{failure.loop_name}: {entry.get('message', '')}",
                    unit=entry.get("unit", failure.loop_name),
                    obj=entry.get("obj"),
                )
        else:
            other_failures.append(failure)
    checked = len(result.evaluations)
    print(
        f"checked {checked}/{len(corpus)} schedules on {machine.name!r}: "
        f"{len(result.failures)} rejection(s) "
        f"({result.describe()})",
        file=out,
    )
    print(diags.render(), file=out)
    for failure in other_failures:
        print(f"  FAILED {failure.describe()}", file=out)
    if args.json:
        document = diags.to_dict(
            run={
                "command": "check",
                "machine": args.machine,
                "loops": args.loops,
                "seed": args.seed,
                "jobs": engine.jobs,
            },
            checked=checked,
            failures=[f.to_dict() for f in result.failures],
            wall_seconds=result.wall_seconds,
            cache={"hits": result.hits, "misses": result.misses},
        )
        Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
        print(f"diagnostics written to {args.json}", file=out)
    return 0 if result.ok and diags.ok else 1


def _cmd_corpus(args, out) -> int:
    from collections import Counter

    from repro.analysis import distribution_row, render_table
    from repro.analysis.engine import EvaluationEngine
    from repro.analysis.resilience import RetryPolicy
    from repro.analysis.report import render_phase_summary
    from repro.workloads import build_corpus
    from repro.workloads.kernels import KERNELS

    from repro.obs.context import NULL_OBS

    try:
        obs = _obs_context(args)
    except _ObsConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if obs is None and args.obs_db:
        # --obs-db implies tracing: the store ingests the span tree.
        from repro.obs import ObsContext

        obs = ObsContext()
    obs = obs if obs is not None else NULL_OBS
    machine = MACHINES[args.machine]()
    n_synthetic = max(0, args.loops - len(KERNELS))
    with obs.span("frontend", loops=args.loops, seed=args.seed):
        corpus = build_corpus(
            machine, n_synthetic=n_synthetic, seed=args.seed
        )
    try:
        engine = EvaluationEngine(
            machine,
            budget_ratio=args.budget_ratio,
            backend=args.backend,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            verify_iterations=args.verify,
            obs=obs,
            loop_timeout=args.loop_timeout,
            retry_policy=RetryPolicy(max_retries=args.retries),
            degrade=not args.no_degrade,
            journal_path=args.journal,
            resume=args.resume,
            quarantine_path=args.quarantine,
            check=args.check,
            profile_interval=(
                args.profile_interval if args.profile else None
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = engine.evaluate(corpus)
    except OSError as exc:
        print(f"error: cache directory unusable: {exc}", file=sys.stderr)
        return 2
    if args.obs_out:
        try:
            _write_obs(
                obs, args, out,
                run={"command": "corpus", "machine": args.machine,
                     "loops": args.loops, "jobs": engine.jobs,
                     "seed": args.seed, "verify": args.verify},
            )
        except OSError as exc:
            print(f"error: obs output path unusable: {exc}", file=sys.stderr)
            return 2
    if args.timings:
        path = result.write_timing_json(args.timings)
        print(render_phase_summary(result.phase_seconds()), file=out)
        print(f"timing report written to {path}", file=out)
    if args.obs_db:
        from repro.obs.store import RunStore, StoreError

        try:
            with RunStore(args.obs_db) as store:
                ingested = store.ingest_run_artifacts(
                    obs.to_dict(),
                    run={"command": "corpus", "machine": args.machine,
                         "loops": args.loops, "jobs": engine.jobs,
                         "seed": args.seed},
                    timing_report=result.timing_report(),
                    profile=result.profile,
                    source="corpus",
                )
        except (StoreError, OSError) as exc:
            print(f"error: obs db unusable: {exc}", file=sys.stderr)
            return 2
        print(
            f"run {ingested.run_id} recorded in {args.obs_db}", file=out
        )
    if args.profile_out:
        from repro.obs.flame import folded_lines, write_flamegraph

        if result.profile:
            path = write_flamegraph(
                folded_lines(result.profile), args.profile_out
            )
            print(
                f"profiler samples ({sum(result.profile.values())}) "
                f"written to {path}",
                file=out,
            )
        else:
            print(
                "no profiler samples collected (run too short, or "
                "--profile not set)",
                file=out,
            )
    evaluations = result.evaluations
    if not evaluations:
        print(f"engine: {result.describe()}", file=out)
        for failure in result.failures:
            print(f"  FAILED {failure.describe()}", file=out)
        return 1
    rows = [
        distribution_row("ops", [e.n_real_ops for e in evaluations], 4),
        distribution_row("MII", [e.mii for e in evaluations], 1),
        distribution_row("II - MII", [e.delta_ii for e in evaluations], 0),
        distribution_row(
            "steps/op", [e.schedule_ratio for e in evaluations], 1
        ),
    ]
    print(
        render_table(
            ["measurement", "min", "freq(min)", "median", "mean", "max"],
            [r.cells() for r in rows],
            title=f"{len(evaluations)} loops on {machine.name!r}:",
        ),
        file=out,
    )
    census = Counter(e.delta_ii for e in evaluations)
    print(
        f"II = MII on {census[0] / len(evaluations):.1%} of loops",
        file=out,
    )
    from repro.backends import get_backend

    if get_backend(args.backend).proves_optimality:
        proven = [e for e in evaluations if e.optimal]
        unproven = sum(1 for e in evaluations if e.optimal is None)
        print(
            f"backend {args.backend!r}: II proven minimal on "
            f"{len(proven)}/{len(evaluations)} loops"
            + (f" ({unproven} unproven)" if unproven else ""),
            file=out,
        )
        gaps = Counter(
            e.optimality_gap for e in proven if e.optimality_gap is not None
        )
        if gaps:
            matched = gaps[0]
            total = sum(gaps.values())
            detail = ", ".join(
                f"+{gap}:{count}"
                for gap, count in sorted(gaps.items())
                if gap
            )
            print(
                f"  heuristic achieved II* on {matched / total:.1%} of "
                f"proven loops"
                + (f" (gap census {detail})" if detail else ""),
                file=out,
            )
    print(f"engine: {result.describe()}", file=out)
    for note in result.diagnostics:
        print(f"  note: {note}", file=out)
    if result.quarantine_path and result.quarantined:
        print(
            f"  {result.quarantined} loop(s) quarantined to "
            f"{result.quarantine_path}",
            file=out,
        )
    if result.failures:
        for failure in result.failures:
            print(f"  FAILED {failure.describe()}", file=out)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iterative modulo scheduling (Rau, MICRO-27 1994)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    machines = commands.add_parser(
        "machines", help="list available machine descriptions"
    )
    machines.set_defaults(handler=_cmd_machines)

    mii = commands.add_parser(
        "mii", help="compute the minimum initiation interval of a loop"
    )
    mii.add_argument("file", help="DSL file ('-' for stdin)")
    _machine_argument(mii)
    mii.add_argument(
        "--recommend-unroll",
        type=int,
        default=1,
        metavar="MAX",
        help="search unroll factors up to MAX for a better amortized MII",
    )
    mii.set_defaults(handler=_cmd_mii)

    schedule = commands.add_parser(
        "schedule", help="modulo-schedule a loop and report the result"
    )
    schedule.add_argument("file", help="DSL file ('-' for stdin)")
    _machine_argument(schedule)
    schedule.add_argument(
        "--budget-ratio", type=float, default=6.0,
        help="BudgetRatio (paper recommends ~2; default 6 for best quality)",
    )
    _backend_argument(schedule)
    schedule.add_argument(
        "--kernel", action="store_true", help="print the kernel layout"
    )
    schedule.add_argument(
        "--verify", type=int, default=0, metavar="N",
        help="simulate N iterations against the sequential oracle",
    )
    schedule.add_argument(
        "--json", action="store_true", help="emit the schedule as JSON"
    )
    schedule.add_argument(
        "--gantt", action="store_true",
        help="print the kernel's resource-occupancy grid",
    )
    schedule.add_argument(
        "--diagram", action="store_true",
        help="print the iterations-vs-time pipeline diagram",
    )
    schedule.add_argument(
        "--trace", action="store_true",
        help="print the scheduler's decision trace",
    )
    _obs_arguments(schedule)
    schedule.set_defaults(handler=_cmd_schedule)

    corpus = commands.add_parser(
        "corpus", help="evaluate a corpus and print summary statistics"
    )
    _machine_argument(corpus)
    corpus.add_argument("--loops", type=int, default=200)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--budget-ratio", type=float, default=6.0)
    _backend_argument(corpus)
    corpus.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the evaluation engine "
             "(0 = one per CPU; default 1)",
    )
    corpus.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory "
             "(unchanged loops are never re-scheduled across runs)",
    )
    corpus.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    corpus.add_argument(
        "--timings", default=None, metavar="FILE",
        help="write the engine's structured timing report (JSON) to FILE",
    )
    corpus.add_argument(
        "--verify", type=int, default=0, metavar="N",
        help="simulate N iterations of every front-end loop against the "
             "sequential oracle (mismatches become failure records)",
    )
    corpus.add_argument(
        "--loop-timeout", type=float, default=None, metavar="SECONDS",
        help="per-loop wall-clock watchdog: a loop exceeding this budget "
             "is stopped (and falls down the degradation ladder)",
    )
    corpus.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions granted to a loop after a transient failure "
             "(crashed/hung worker, timeout); 0 disables retrying",
    )
    corpus.add_argument(
        "--no-degrade", action="store_true",
        help="fail a loop outright on budget/deadline exhaustion instead "
             "of falling back to relaxed IMS / list scheduling",
    )
    corpus.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append-only per-loop checkpoint journal "
             "(default <cache-dir>/journal.jsonl when caching)",
    )
    corpus.add_argument(
        "--resume", action="store_true",
        help="replay loops already completed in the journal and evaluate "
             "only the rest (needs --cache-dir or --journal)",
    )
    corpus.add_argument(
        "--quarantine", default=None, metavar="FILE",
        help="where terminal failures are recorded as quarantine.json "
             "(default <cache-dir>/quarantine.json when caching)",
    )
    corpus.add_argument(
        "--check", action="store_true",
        help="strict mode: statically validate every schedule (including "
             "degraded fallbacks) with the independent checker before "
             "caching or counting it",
    )
    _obs_arguments(corpus)
    corpus.add_argument(
        "--obs-db", default=None, metavar="FILE",
        help="record the run (spans, metrics, timings, profiler samples) "
             "into this observatory database; implies tracing",
    )
    corpus.add_argument(
        "--profile", action="store_true",
        help="sample worker call stacks with the SIGPROF profiler "
             "(off by default; ~5ms interval)",
    )
    corpus.add_argument(
        "--profile-interval", type=float, default=0.005, metavar="SECONDS",
        help="sampling interval for --profile (default 0.005)",
    )
    corpus.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="write the merged collapsed-stack profiler samples to FILE",
    )
    corpus.set_defaults(handler=_cmd_corpus)

    check = commands.add_parser(
        "check",
        help="statically validate schedules with the independent checker",
    )
    check.add_argument(
        "file", nargs="?", default=None,
        help="DSL file to schedule and check ('-' for stdin); omit to "
             "check the whole corpus through the evaluation engine",
    )
    _machine_argument(check)
    check.add_argument("--loops", type=int, default=200)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--budget-ratio", type=float, default=6.0)
    _backend_argument(check)
    check.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for corpus mode (0 = one per CPU)",
    )
    check.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory (cache hits are "
             "re-validated before being trusted)",
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    check.add_argument(
        "--verify", type=int, default=0, metavar="N",
        help="also simulate N iterations against the sequential oracle",
    )
    check.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions granted after a transient failure",
    )
    check.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the repro.check.v1 diagnostics document to FILE",
    )
    check.set_defaults(handler=_cmd_check)

    lint = commands.add_parser(
        "lint",
        help="lint machine descriptions (and optionally one DSL loop)",
    )
    lint.add_argument(
        "file", nargs="?", default=None,
        help="DSL file whose graph and MinDist matrix to lint "
             "('-' for stdin)",
    )
    _machine_argument(lint)
    lint.add_argument(
        "--all-machines", action="store_true",
        help="lint every shipped machine description, not just --machine",
    )
    lint.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the repro.check.v1 diagnostics document to FILE",
    )
    lint.set_defaults(handler=_cmd_lint)

    from repro.obs.cli import register as register_obs

    register_obs(commands)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    return args.handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
