"""``python -m repro``: the command-line interface."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # Output piped into e.g. `head`; exit quietly like a well-behaved CLI.
    sys.stderr.close()
    code = 0
sys.exit(code)
