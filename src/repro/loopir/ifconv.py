"""IF-conversion: control flow to predicates (Section 1's pre-pass).

The loop body is an acyclic control-flow region.  IF-conversion flattens it
into a single straight-line block of *guarded* statements: each statement
carries the conjunction of the branch conditions dominating it (or no
guard).  Branches disappear; control dependence becomes data dependence on
predicate values, exactly as on the Cydra 5.

Downstream, the lowering pass keeps guards on stores (they have side
effects) and turns guarded scalar assignments into speculative computation
merged with a ``select`` — the standard way to exploit machines whose
arithmetic cannot fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.loopir.ast import Assign, BoolOp, Cond, If, Loop, NotOp, Statement, Store


@dataclass
class PredicatedStatement:
    """A non-branch statement plus the predicate expression guarding it."""

    guard: Optional[Cond]
    statement: Union[Assign, Store]


@dataclass
class CondEvaluation:
    """Evaluate a branch condition *here*, at the If's program point.

    Guards downstream refer to this evaluation (by the identity of the
    ``cond`` node).  Materializing the predicate at the branch point is
    essential for correctness, not just efficiency: a then-branch may
    redefine a scalar the condition reads, and the else-branch's
    ``not cond`` must still see the *original* value — exactly as the
    branch hardware would have.
    """

    cond: Cond


def _conjoin(left: Optional[Cond], right: Cond) -> Cond:
    if left is None:
        return right
    return BoolOp("and", left, right)


def if_convert(loop: Loop) -> List[Union[PredicatedStatement, CondEvaluation]]:
    """Flatten the loop body into guarded straight-line statements.

    The result interleaves :class:`CondEvaluation` markers (one per If,
    in program order) with :class:`PredicatedStatement` entries whose
    guards are conjunctions over the marked condition nodes.
    """
    flattened: List[Union[PredicatedStatement, CondEvaluation]] = []

    def walk(statements: List[Statement], guard: Optional[Cond]) -> None:
        for statement in statements:
            if isinstance(statement, If):
                flattened.append(CondEvaluation(statement.cond))
                walk(statement.then_body, _conjoin(guard, statement.cond))
                if statement.else_body:
                    walk(
                        statement.else_body,
                        _conjoin(guard, NotOp(statement.cond)),
                    )
            else:
                flattened.append(PredicatedStatement(guard, statement))

    walk(loop.body, None)
    return flattened
