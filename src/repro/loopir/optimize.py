"""Post-lowering optimization: dead-code elimination by graph rebuild.

Value numbering (in :mod:`repro.loopir.lower`) removes duplicate
computations at emission time; what remains dead afterwards are shadowed
definitions — e.g. ``u = a[i] * 2.0`` immediately overwritten by
``u = b[i]`` — whose results nothing observable consumes.  The observable
roots of a loop are its stores, its loop control, and the final
definition of every assigned scalar (those values are live-out).

Because dependence graphs are sealed (immutable), elimination rebuilds:
live operations are copied into a fresh graph in order, edges between
live operations are re-added (the START/STOP bracket is recreated by
``seal``), and all metadata — operand descriptors, carried/final
definitions, live-ins — is remapped.  The result is a new
:class:`~repro.loopir.lower.LoweredLoop` that simulates identically,
which the tests verify against the sequential oracle.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.graph import DependenceGraph
from repro.loopir.lower import LoweredLoop


def _observable_roots(lowered: LoweredLoop) -> Set[int]:
    roots: Set[int] = set()
    for op in lowered.graph.real_operations():
        if op.opcode in ("store", "brtop"):
            roots.add(op.index)
    roots.update(lowered.final_defs.values())
    roots.update(lowered.carried_defs.values())
    if lowered.alive_op is not None:
        roots.add(lowered.alive_op)
    return roots


def _live_set(lowered: LoweredLoop) -> Set[int]:
    """Backward closure of the roots over operand (dataflow) edges."""
    graph = lowered.graph
    live = set(_observable_roots(lowered))
    work = list(live)
    while work:
        op = work.pop()
        for descriptor in graph.operation(op).attrs.get("operands", ()):
            if descriptor[0] != "op":
                continue
            producer = descriptor[1]
            if producer not in live:
                live.add(producer)
                work.append(producer)
    return live


def eliminate_dead_code(lowered: LoweredLoop) -> LoweredLoop:
    """Return an equivalent LoweredLoop without dead operations.

    Idempotent; returns the input object unchanged when nothing is dead.
    """
    graph = lowered.graph
    live = _live_set(lowered)
    dead = [
        op.index
        for op in graph.real_operations()
        if op.index not in live
    ]
    if not dead:
        return lowered

    rebuilt = DependenceGraph(
        graph._latencies, name=graph.name, delay_model=graph.delay_model
    )
    index_map: Dict[int, int] = {}
    for op in graph.real_operations():
        if op.index not in live:
            continue
        index_map[op.index] = rebuilt.add_operation(
            op.opcode,
            dest=op.dest,
            srcs=op.srcs,
            predicate=op.predicate,
            **dict(op.attrs),
        )
    # Remap operand descriptors onto the new indices.
    for old_index, new_index in index_map.items():
        operation = rebuilt.operation(new_index)
        operands = operation.attrs.get("operands")
        if operands is None:
            continue
        operation.attrs["operands"] = tuple(
            ("op", index_map[d[1]], d[2]) if d[0] == "op" else d
            for d in operands
        )
    # Re-add every edge whose endpoints are both live and real; dead
    # operations feed only dead operations, so nothing live dangles.
    for edge in graph.edges:
        pred = graph.operation(edge.pred)
        succ = graph.operation(edge.succ)
        if pred.is_pseudo or succ.is_pseudo:
            continue
        if edge.pred not in index_map or edge.succ not in index_map:
            continue
        rebuilt.add_edge(
            index_map[edge.pred],
            index_map[edge.succ],
            edge.kind,
            distance=edge.distance,
            delay=edge.delay,
        )
    rebuilt.seal()

    # Live-ins keep the original (super)set: the sequential oracle still
    # interprets the full AST, dead reads included, so every scalar it
    # touches must remain in the initial state.
    live_ins: Set[str] = set(lowered.live_in_scalars)
    live_ins.update(lowered.carried_defs)

    return LoweredLoop(
        loop=lowered.loop,
        graph=rebuilt,
        machine=lowered.machine,
        statements=lowered.statements,
        live_in_scalars=live_ins,
        carried_defs={
            name: index_map[op] for name, op in lowered.carried_defs.items()
        },
        final_defs={
            name: index_map[op] for name, op in lowered.final_defs.items()
        },
        alive_op=(
            None
            if lowered.alive_op is None
            else index_map[lowered.alive_op]
        ),
    )
