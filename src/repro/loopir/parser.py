"""Recursive-descent parser for the loop DSL.

The concrete syntax is indentation-based, one statement per line::

    for i in n:
        t = a[i] * x + b[i+1]   # comments run to end of line
        if t >= 0.0 and t < hi:
            s = s + sqrt(t)
        else:
            s = s - abs(t)
        c[i] = max(t, floor)

Tokens: identifiers, numbers, ``[ ] ( ) , = + - * /``, comparison
operators, and the keywords ``for in if else and or not``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    If,
    IndirectRef,
    IndirectStore,
    IVar,
    Loop,
    NotOp,
    Num,
    Scalar,
    Statement,
    Store,
)

_KEYWORDS = {"for", "in", "if", "else", "and", "or", "not", "while"}
_INTRINSICS = {"sqrt", "abs", "min", "max", "neg"}
_COMPARISONS = {"<", "<=", "==", "!=", ">", ">="}

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|<|>|=|\+|-|\*|/|\[|\]|\(|\)|,|:)"
    r")"
)


class ParseError(ValueError):
    """Raised on malformed DSL text, with a line number when available."""


def _tokenize(text: str, line_no: int) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"line {line_no}: cannot tokenize {text[pos:]!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    return tokens


class _Line:
    """One meaningful source line: indent depth plus its token stream."""

    def __init__(self, number: int, indent: int, tokens: List[str]) -> None:
        self.number = number
        self.indent = indent
        self.tokens = tokens


def _logical_lines(source: str) -> List[_Line]:
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].rstrip()
        if not text.strip():
            continue
        stripped = text.lstrip()
        indent = len(text) - len(stripped)
        if "\t" in text[: indent]:
            raise ParseError(f"line {number}: tabs are not allowed in indentation")
        lines.append(_Line(number, indent, _tokenize(stripped, number)))
    return lines


class _TokenCursor:
    """A cursor over one line's tokens, with backtracking support."""

    def __init__(self, line: _Line) -> None:
        self.line = line
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.line.tokens):
            return self.line.tokens[self.pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError(f"line {self.line.number}: unexpected end of line")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(
                f"line {self.line.number}: expected {token!r}, got {got!r}"
            )

    def at_end(self) -> bool:
        return self.pos >= len(self.line.tokens)

    def error(self, message: str) -> ParseError:
        return ParseError(f"line {self.line.number}: {message}")


class _Parser:
    def __init__(self, source: str) -> None:
        self.lines = _logical_lines(source)
        self.index = 0
        self.ivar = ""

    # -- line-level structure ------------------------------------------

    def parse(self) -> Loop:
        if not self.lines:
            raise ParseError("empty program")
        header = _TokenCursor(self.lines[self.index])
        self.index += 1
        header.expect("for")
        self.ivar = self._name(header)
        header.expect("in")
        trip = self._name(header)
        while_cond = None
        if header.peek() == "while":
            header.next()
            while_cond = self._cond(header)
        header.expect(":")
        if not header.at_end():
            raise header.error("trailing tokens after loop header")
        body = self._parse_block(self.lines[0].indent)
        if self.index < len(self.lines):
            stray = self.lines[self.index]
            raise ParseError(
                f"line {stray.number}: statement outside the loop body"
            )
        if not body:
            raise ParseError("loop body is empty")
        return Loop(ivar=self.ivar, trip=trip, body=body, while_cond=while_cond)

    def _parse_block(self, parent_indent: int) -> List[Statement]:
        if self.index >= len(self.lines):
            return []
        indent = self.lines[self.index].indent
        if indent <= parent_indent:
            return []
        statements: List[Statement] = []
        while self.index < len(self.lines):
            line = self.lines[self.index]
            if line.indent < indent:
                break
            if line.indent > indent:
                raise ParseError(f"line {line.number}: unexpected indent")
            statements.append(self._parse_statement(line, indent))
        return statements

    def _parse_statement(self, line: _Line, indent: int) -> Statement:
        cursor = _TokenCursor(line)
        if cursor.peek() == "if":
            return self._parse_if(cursor, indent)
        if cursor.peek() == "else":
            raise cursor.error("'else' without matching 'if'")
        self.index += 1
        name = self._name(cursor)
        if cursor.peek() == "[":
            subscript = self._index_suffix(cursor)
            cursor.expect("=")
            value = self._expr(cursor)
            self._finish_line(cursor)
            if isinstance(subscript, ArrayRef):
                return IndirectStore(name, subscript, value)
            return Store(name, subscript, value)
        cursor.expect("=")
        value = self._expr(cursor)
        self._finish_line(cursor)
        return Assign(name, value)

    def _parse_if(self, cursor: _TokenCursor, indent: int) -> If:
        self.index += 1
        cursor.expect("if")
        cond = self._cond(cursor)
        cursor.expect(":")
        self._finish_line(cursor)
        then_body = self._parse_block(indent)
        if not then_body:
            raise cursor.error("'if' has an empty body")
        else_body: List[Statement] = []
        if (
            self.index < len(self.lines)
            and self.lines[self.index].indent == indent
            and self.lines[self.index].tokens[:1] == ["else"]
        ):
            else_line = _TokenCursor(self.lines[self.index])
            self.index += 1
            else_line.expect("else")
            else_line.expect(":")
            self._finish_line(else_line)
            else_body = self._parse_block(indent)
            if not else_body:
                raise else_line.error("'else' has an empty body")
        return If(cond, then_body, else_body)

    # -- expressions ----------------------------------------------------

    def _cond(self, cursor: _TokenCursor):
        left = self._and_cond(cursor)
        while cursor.peek() == "or":
            cursor.next()
            left = BoolOp("or", left, self._and_cond(cursor))
        return left

    def _and_cond(self, cursor: _TokenCursor):
        left = self._not_cond(cursor)
        while cursor.peek() == "and":
            cursor.next()
            left = BoolOp("and", left, self._not_cond(cursor))
        return left

    def _not_cond(self, cursor: _TokenCursor):
        if cursor.peek() == "not":
            cursor.next()
            return NotOp(self._not_cond(cursor))
        if cursor.peek() == "(":
            # Either a parenthesized condition or a parenthesized
            # arithmetic expression starting a comparison: backtrack.
            saved = cursor.pos
            try:
                cursor.next()
                cond = self._cond(cursor)
                cursor.expect(")")
                if cursor.peek() in _COMPARISONS:
                    raise cursor.error("comparison of a condition")
                return cond
            except ParseError:
                cursor.pos = saved
        return self._comparison(cursor)

    def _comparison(self, cursor: _TokenCursor) -> Compare:
        left = self._expr(cursor)
        op = cursor.next()
        if op not in _COMPARISONS:
            raise cursor.error(f"expected a comparison operator, got {op!r}")
        right = self._expr(cursor)
        return Compare(op, left, right)

    def _expr(self, cursor: _TokenCursor):
        left = self._term(cursor)
        while cursor.peek() in ("+", "-"):
            op = cursor.next()
            left = BinOp(op, left, self._term(cursor))
        return left

    def _term(self, cursor: _TokenCursor):
        left = self._unary(cursor)
        while cursor.peek() in ("*", "/"):
            op = cursor.next()
            left = BinOp(op, left, self._unary(cursor))
        return left

    def _unary(self, cursor: _TokenCursor):
        if cursor.peek() == "-":
            cursor.next()
            operand = self._unary(cursor)
            if isinstance(operand, Num):
                return Num(-operand.value)
            return Call("neg", (operand,))
        return self._atom(cursor)

    def _atom(self, cursor: _TokenCursor):
        token = cursor.next()
        if token == "(":
            inner = self._expr(cursor)
            cursor.expect(")")
            return inner
        if re.fullmatch(r"(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", token):
            return Num(float(token))
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) or token in _KEYWORDS:
            raise cursor.error(f"unexpected token {token!r} in expression")
        if token in _INTRINSICS and cursor.peek() == "(":
            cursor.expect("(")
            args = [self._expr(cursor)]
            while cursor.peek() == ",":
                cursor.next()
                args.append(self._expr(cursor))
            cursor.expect(")")
            arity = 1 if token in ("sqrt", "abs", "neg") else 2
            if len(args) != arity:
                raise cursor.error(f"{token}() takes {arity} argument(s)")
            return Call(token, tuple(args))
        if cursor.peek() == "[":
            subscript = self._index_suffix(cursor)
            if isinstance(subscript, ArrayRef):
                return IndirectRef(token, subscript)
            return ArrayRef(token, subscript)
        if token == self.ivar:
            return IVar()
        return Scalar(token)

    def _index_suffix(self, cursor: _TokenCursor):
        """Parse a subscript: ``[i±c]`` (returns the int offset) or the
        indirect form ``[idx[i±c]]`` (returns the inner ArrayRef)."""
        cursor.expect("[")
        name = self._name(cursor)
        if name != self.ivar:
            if cursor.peek() == "[":
                inner = self._index_suffix(cursor)
                if isinstance(inner, ArrayRef):
                    raise cursor.error(
                        "doubly indirect subscripts are not supported"
                    )
                cursor.expect("]")
                return ArrayRef(name, inner)
            raise cursor.error(
                f"array subscript must use the induction variable "
                f"{self.ivar!r}, got {name!r}"
            )
        offset = 0
        if cursor.peek() in ("+", "-"):
            sign = -1 if cursor.next() == "-" else 1
            literal = cursor.next()
            if not literal.isdigit():
                raise cursor.error(
                    f"array subscript offset must be an integer literal, "
                    f"got {literal!r}"
                )
            offset = sign * int(literal)
        cursor.expect("]")
        return offset

    # -- helpers ---------------------------------------------------------

    def _name(self, cursor: _TokenCursor) -> str:
        token = cursor.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) or token in _KEYWORDS:
            raise cursor.error(f"expected an identifier, got {token!r}")
        return token

    @staticmethod
    def _finish_line(cursor: _TokenCursor) -> None:
        if not cursor.at_end():
            raise cursor.error(
                f"trailing tokens: {' '.join(cursor.line.tokens[cursor.pos:])!r}"
            )


def parse_loop(source: str) -> Loop:
    """Parse DSL text into a :class:`~repro.loopir.ast.Loop`."""
    return _Parser(source).parse()
