"""Abstract syntax for the loop DSL.

A program is a single innermost DO-loop::

    for i in n:
        t = a[i] + b[i+1]
        if t > 0.0:
            s = s + t
        c[i] = t * 0.5

* ``i`` is the induction variable (zero-based), ``n`` the trip count.
* Array references use affine subscripts ``i + c`` / ``i - c`` only, which
  is what constant-distance dependence analysis requires.
* Scalars that are read before any write in the body are either live-in
  loop invariants or loop-carried (if also written later) — the lowering
  pass tells them apart.
* All values are floating point (as in the paper's Fortran kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A literal constant."""

    value: float


@dataclass(frozen=True)
class Scalar:
    """A scalar variable reference."""

    name: str


@dataclass(frozen=True)
class IVar:
    """The induction variable used as a value (e.g. ``0.5 * i``)."""


@dataclass(frozen=True)
class ArrayRef:
    """An array element ``array[i + offset]`` (a load when read)."""

    array: str
    offset: int


@dataclass(frozen=True)
class IndirectRef:
    """An indirectly addressed element ``array[index_array[i + offset]]``.

    The subscript is unanalyzable at compile time, so dependence analysis
    must serialize this reference conservatively against every store to
    ``array`` (and vice versa when this reference is itself stored to).
    """

    array: str
    index: ArrayRef


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: ``op`` is one of ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call:
    """Intrinsic call: sqrt, abs, min, max."""

    fn: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class Compare:
    """Comparison producing a predicate: ``op`` in ``< <= == != > >=``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class BoolOp:
    """Predicate combination: ``op`` in ``and or``."""

    op: str
    left: "Cond"
    right: "Cond"


@dataclass(frozen=True)
class NotOp:
    """Predicate negation."""

    operand: "Cond"


Expr = Union[Num, Scalar, IVar, ArrayRef, IndirectRef, BinOp, Call]
Cond = Union[Compare, BoolOp, NotOp]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Assign:
    """``scalar = expr``."""

    target: str
    value: Expr


@dataclass
class Store:
    """``array[i + offset] = expr``."""

    array: str
    offset: int
    value: Expr


@dataclass
class IndirectStore:
    """``array[index_array[i + offset]] = expr`` (a scatter)."""

    array: str
    index: ArrayRef
    value: Expr


@dataclass
class If:
    """A conditional with optional else branch."""

    cond: Cond
    then_body: List["Statement"]
    else_body: List["Statement"] = field(default_factory=list)


Statement = Union[Assign, Store, IndirectStore, If]


@dataclass
class Loop:
    """The whole program: one innermost DO-loop.

    With ``while_cond`` set, the loop is a WHILE-style loop: before each
    iteration the condition is evaluated against the current state and
    the loop exits early once it is false (the trip count remains an
    upper bound).
    """

    ivar: str
    trip: str
    body: List[Statement]
    name: str = "loop"
    while_cond: Optional[Cond] = None

    def arrays_read(self) -> List[str]:
        """Names of arrays loaded anywhere in the body (sorted)."""
        found = set()

        def walk_expr(expr) -> None:
            if isinstance(expr, ArrayRef):
                found.add(expr.array)
            elif isinstance(expr, IndirectRef):
                found.add(expr.array)
                found.add(expr.index.array)
            elif isinstance(expr, (BinOp, Compare)):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, Call):
                for arg in expr.args:
                    walk_expr(arg)
            elif isinstance(expr, BoolOp):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, NotOp):
                walk_expr(expr.operand)

        def walk_stmt(stmt) -> None:
            if isinstance(stmt, Assign):
                walk_expr(stmt.value)
            elif isinstance(stmt, Store):
                walk_expr(stmt.value)
            elif isinstance(stmt, IndirectStore):
                found.add(stmt.index.array)
                walk_expr(stmt.value)
            elif isinstance(stmt, If):
                walk_expr(stmt.cond)
                for s in stmt.then_body + stmt.else_body:
                    walk_stmt(s)

        for statement in self.body:
            walk_stmt(statement)
        if self.while_cond is not None:
            walk_expr(self.while_cond)
        return sorted(found)

    def arrays_written(self) -> List[str]:
        """Names of arrays stored anywhere in the body (sorted)."""
        found = set()

        def walk_stmt(stmt) -> None:
            if isinstance(stmt, (Store, IndirectStore)):
                found.add(stmt.array)
            elif isinstance(stmt, If):
                for s in stmt.then_body + stmt.else_body:
                    walk_stmt(s)

        for statement in self.body:
            walk_stmt(statement)
        return sorted(found)

    def arrays(self) -> List[str]:
        """All arrays read or written anywhere in the loop (sorted)."""
        return sorted(set(self.arrays_read()) | set(self.arrays_written()))
