"""A DO-loop front end for the modulo scheduler.

The paper's scheduler consumed the Cydra 5 compiler's intermediate
representation of Fortran innermost loops, *after* IF-conversion, dynamic
single assignment and dependence analysis.  This package recreates that
pipeline for a small loop language:

1. :mod:`repro.loopir.ast` / :mod:`repro.loopir.parser` — a textual DSL for
   innermost DO-loops over arrays and scalars, with arithmetic, reductions
   and (possibly nested) conditionals;
2. :mod:`repro.loopir.ifconv` — IF-conversion: control flow becomes
   predicate computations; scalar writes under a predicate become
   speculative computes merged with ``select``; stores stay predicated;
3. :mod:`repro.loopir.lower` — lowering to machine operations in dynamic
   single assignment form (scalar anti-/output dependences vanish, as the
   paper assumes of its EVR-based input), address-recurrence generation for
   array references, and array dependence analysis producing flow/anti/
   output memory edges with iteration distances.

:func:`compile_loop` runs the whole pipeline: DSL text in, sealed
:class:`~repro.ir.DependenceGraph` out (plus the metadata the simulator
and code generator need, via :func:`compile_loop_full`).
"""

from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Compare,
    If,
    IVar,
    Loop,
    Num,
    Scalar,
    Store,
)
from repro.loopir.parser import parse_loop, ParseError
from repro.loopir.ifconv import if_convert, PredicatedStatement
from repro.loopir.lower import lower_loop, LoweredLoop, LoweringError
from repro.loopir.optimize import eliminate_dead_code


def compile_loop(
    source: str, machine, name: str = None, delay_model=None, optimize=True
):
    """Compile DSL text to a sealed dependence graph for ``machine``."""
    return compile_loop_full(source, machine, name, delay_model, optimize).graph


def compile_loop_full(
    source: str,
    machine,
    name: str = None,
    delay_model=None,
    optimize: bool = True,
) -> LoweredLoop:
    """Compile DSL text, returning the graph plus front-end metadata.

    ``delay_model`` selects the Table-1 column for edge delays
    (:class:`repro.ir.DelayModel`; the exact VLIW formulae by default).
    ``optimize`` enables value numbering during lowering and dead-code
    elimination afterwards, matching the paper's pre-optimized input.
    """
    from repro.ir import DelayModel

    loop = parse_loop(source)
    if name is not None:
        loop.name = name
    statements = if_convert(loop)
    if delay_model is None:
        delay_model = DelayModel.VLIW
    lowered = lower_loop(loop, statements, machine, delay_model, optimize)
    if optimize:
        lowered = eliminate_dead_code(lowered)
    return lowered


__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "Compare",
    "If",
    "IVar",
    "Loop",
    "Num",
    "Scalar",
    "Store",
    "parse_loop",
    "ParseError",
    "if_convert",
    "PredicatedStatement",
    "lower_loop",
    "LoweredLoop",
    "LoweringError",
    "eliminate_dead_code",
    "compile_loop",
    "compile_loop_full",
]
