"""Lowering: guarded statements to a dependence graph in DSA form.

This pass performs, in one walk over the IF-converted body, the
pre-scheduling transformations the paper assumes of its input:

* **Dynamic single assignment.**  Every operation writes a fresh virtual
  register, so scalar anti- and output dependences never arise (the paper's
  EVR assumption).  A scalar read before any write in the body either
  refers to the previous iteration's last write (a loop-carried flow
  dependence at distance 1) or, if the scalar is never written, to a
  loop-invariant live-in.
* **Address recurrences.**  Each array referenced gets one address
  register, incremented once per iteration by an ``aadd`` whose only
  dependence is on itself at distance 1 — the paper notes that 93% of all
  SCCs are exactly this trivial address increment.  References use the
  previous iteration's value (rotating-register style), with the element
  offset folded into the memory operation.
* **Memory dependence analysis.**  Array subscripts are ``i + c`` with
  constant ``c``, so every pair of references to the same array yields an
  exact dependence distance ``|c1 - c2|``: flow (store to load), anti
  (load to store) and output (store to store) edges are added with Table-1
  delays.  Scalar dependences need no analysis thanks to DSA.
* **Predicate materialization.**  Guards become ``cmp_*``/``pand``/
  ``por``/``pnot`` operations.  Guarded stores stay predicated; guarded
  scalar assignments compute speculatively and merge with ``select``.
* **Loop control.**  One ``brtop`` with a distance-1 self-dependence
  closes the loop.

Every operation carries ``attrs['operands']`` — a tuple of descriptors
telling the simulator where each input value comes from::

    ("op", producer_index, distance)   value of a producer, d iterations back
    ("const", value)                   literal
    ("livein", name)                   loop-invariant scalar
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.ir.edges import DelayModel, DependenceKind
from repro.ir.graph import DependenceGraph
from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Cond,
    Expr,
    IndirectRef,
    IndirectStore,
    IVar,
    Loop,
    NotOp,
    Num,
    Scalar,
    Store,
)
from repro.loopir.ifconv import CondEvaluation, PredicatedStatement

_BINOP_OPCODE = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_CALL_OPCODE = {
    "sqrt": "fsqrt",
    "abs": "fabs",
    "neg": "fneg",
    "min": "fmin",
    "max": "fmax",
}
_COMPARE_OPCODE = {
    "<": "cmp_lt",
    "<=": "cmp_le",
    "==": "cmp_eq",
    "!=": "cmp_ne",
    ">": "cmp_gt",
    ">=": "cmp_ge",
}


class LoweringError(ValueError):
    """Raised when the AST cannot be lowered for the given machine."""


@dataclass
class LoweredLoop:
    """The compiled loop: graph plus everything the back end needs.

    Attributes
    ----------
    loop:
        The original AST — the simulator's independent reference oracle.
    graph:
        The sealed dependence graph.
    machine:
        The machine description used for latencies/opcodes.
    statements:
        The IF-converted statement list the graph was lowered from.
    live_in_scalars:
        Scalars whose value enters the loop from outside (loop invariants
        and the initial values of loop-carried scalars).
    carried_defs:
        For each loop-carried scalar, the operation whose value feeds the
        next iteration (its final definition in the body).
    final_defs:
        For *every* scalar assigned in the body, its final defining
        operation — what the simulator writes back after the last
        iteration.
    alive_op:
        For WHILE-loops, the operation computing the iteration's *alive*
        predicate (``alive[k] = alive[k-1] and cond[k]``); None for plain
        DO-loops.  Every store is guarded by it, and the simulator uses
        its instance values to find the exit iteration.
    """

    loop: Loop
    graph: DependenceGraph
    machine: object
    statements: List[PredicatedStatement]
    live_in_scalars: Set[str]
    carried_defs: Dict[str, int]
    final_defs: Dict[str, int] = field(default_factory=dict)
    alive_op: Optional[int] = None

    @property
    def arrays(self) -> List[str]:
        """All array names the loop touches (index arrays included)."""
        return self.loop.arrays()


@dataclass
class _MemRef:
    """One memory operation, for the dependence analysis.

    ``offset`` is None for indirect (unanalyzable-subscript) references.
    """

    op: int
    is_store: bool
    array: str
    offset: Optional[int]
    position: int  # program order


#: Opcodes safe to value-number: pure functions of their operands.
_PURE_OPCODES = frozenset({
    "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fabs", "fneg", "fmin",
    "fmax", "select", "copy", "limm", "cmp_lt", "cmp_le", "cmp_eq",
    "cmp_ne", "cmp_gt", "cmp_ge", "pand", "por", "pnot",
})


class _Lowerer:
    def __init__(
        self, loop: Loop, statements, machine, delay_model, optimize=True
    ) -> None:
        self.loop = loop
        self.statements = statements
        self.machine = machine
        self.optimize = optimize
        self.graph = DependenceGraph(
            machine, name=loop.name, delay_model=delay_model
        )
        self.current_def: Dict[str, int] = {}
        self.pending_carried: List[Tuple[int, int, str]] = []  # (op, pos, scalar)
        self.live_ins: Set[str] = set()
        self.addr_ops: Dict[str, int] = {}
        self.ivar_op: Optional[int] = None
        self.cond_cache: Dict[Cond, Tuple[int, frozenset]] = {}
        # Conditions evaluated at their If's program point, keyed by node
        # identity (IF-conversion reuses the same node in every guard
        # that refers to that branch).  Pinned values are never
        # invalidated: that is the point — guards must see the state at
        # the branch, not after the then-body's writes.
        self.pinned_conds: Dict[int, int] = {}
        self.mem_refs: List[_MemRef] = []
        self.fresh = 0
        self.alive_op: Optional[int] = None
        # Value numbering (common subexpression elimination): pure ops
        # keyed by (opcode, operands); loads keyed per (array, offset)
        # and invalidated by stores to the array.  The paper's input had
        # load-store elimination applied before scheduling (Section 1).
        self.pure_cache: Dict[tuple, int] = {}
        self.load_cache: Dict[Tuple[str, int], int] = {}

    # -- small helpers ---------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        self.fresh += 1
        return f"{base}.{self.fresh}"

    def _emit(
        self,
        opcode: str,
        dest: Optional[str],
        operands: List[tuple],
        predicate: Optional[str] = None,
        **attrs,
    ) -> int:
        """Add an operation, wire its operand flow edges, set descriptors.

        Pure operations are value-numbered when optimization is on: an
        identical (opcode, operands) pair returns the existing operation
        instead of a duplicate.  ``carried`` placeholder operands are
        safe to share — they denote "this scalar's previous-iteration
        value", the same value wherever it is read.
        """
        if not self.machine.has_opcode(opcode):
            raise LoweringError(
                f"machine {self.machine.name!r} lacks opcode {opcode!r} "
                f"needed by loop {self.loop.name!r}"
            )
        key = None
        if (
            self.optimize
            and opcode in _PURE_OPCODES
            and predicate is None
            and "role" not in attrs
        ):
            key = (opcode, tuple(operands))
            cached = self.pure_cache.get(key)
            if cached is None and self.machine.opcode(opcode).commutative:
                cached = self.pure_cache.get(
                    (opcode, tuple(reversed(operands)))
                )
            if cached is not None:
                return cached
        srcs = []
        for descriptor in operands:
            if descriptor[0] == "op":
                srcs.append(self.graph.operation(descriptor[1]).dest or "?")
            elif descriptor[0] == "livein":
                srcs.append(descriptor[1])
        op = self.graph.add_operation(
            opcode,
            dest=dest,
            srcs=tuple(srcs),
            predicate=predicate,
            operands=tuple(operands),
            **attrs,
        )
        for descriptor in operands:
            if descriptor[0] == "op":
                self.graph.add_edge(
                    descriptor[1], op, DependenceKind.FLOW, distance=descriptor[2]
                )
            elif descriptor[0] == "carried":
                self.pending_carried.append(
                    (op, len(self.pending_carried), descriptor[1])
                )
        if key is not None:
            self.pure_cache[key] = op
        return op

    def _invalidate_conditions(self, name: str) -> None:
        """Drop cached predicates that depend on a just-written location.

        ``name`` is either a scalar name or an ``"array:x"`` marker; cached
        conditions record both, so a store to ``x`` invalidates any cached
        predicate whose comparison loaded from ``x``.
        """
        stale = [
            cond
            for cond, (_, names) in self.cond_cache.items()
            if name in names
        ]
        for cond in stale:
            del self.cond_cache[cond]

    # -- scalar and array reads ------------------------------------------

    def _read_scalar(self, name: str) -> tuple:
        """Descriptor for reading scalar ``name`` at this program point."""
        if name in self.current_def:
            return ("op", self.current_def[name], 0)
        # Either loop-carried (a later definition exists) or live-in;
        # decided after the walk, when all definitions are known.
        return ("carried", name)

    def _address_descriptor(self, array: str) -> tuple:
        """Descriptor for an array's address register (previous iteration)."""
        if array not in self.addr_ops:
            # The increment op references its own previous value, so the
            # operand descriptor is patched right after creation.
            op = self._emit(
                "aadd",
                dest=f"&{array}",
                operands=[("const", 1.0)],
                role="address",
                array=array,
                init=0.0,
            )
            operation = self.graph.operation(op)
            operation.attrs["operands"] = (("op", op, 1), ("const", 1.0))
            self.graph.add_edge(op, op, DependenceKind.FLOW, distance=1)
            self.addr_ops[array] = op
        return ("op", self.addr_ops[array], 1)

    def _ivar_descriptor(self) -> tuple:
        """Descriptor for the induction variable used as a value."""
        if self.ivar_op is None:
            op = self._emit(
                "aadd",
                dest=self.loop.ivar,
                operands=[("const", 1.0)],
                role="ivar",
                init=0.0,
            )
            operation = self.graph.operation(op)
            operation.attrs["operands"] = (("op", op, 1), ("const", 1.0))
            self.graph.add_edge(op, op, DependenceKind.FLOW, distance=1)
            self.ivar_op = op
        return ("op", self.ivar_op, 1)

    # -- expressions -------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> tuple:
        """Lower an expression; returns the descriptor of its value."""
        if isinstance(expr, Num):
            return ("const", expr.value)
        if isinstance(expr, Scalar):
            return self._read_scalar(expr.name)
        if isinstance(expr, IVar):
            return self._ivar_descriptor()
        if isinstance(expr, ArrayRef):
            if self.optimize:
                cached = self.load_cache.get((expr.array, expr.offset))
                if cached is not None:
                    return ("op", cached, 0)
            address = self._address_descriptor(expr.array)
            op = self._emit(
                "load",
                dest=self._fresh_name(expr.array),
                operands=[address],
                array=expr.array,
                offset=expr.offset,
            )
            self.mem_refs.append(
                _MemRef(op, False, expr.array, expr.offset, len(self.mem_refs))
            )
            self.load_cache[(expr.array, expr.offset)] = op
            return ("op", op, 0)
        if isinstance(expr, IndirectRef):
            index_value = self._lower_expr(expr.index)
            address = self._address_descriptor(expr.array)
            op = self._emit(
                "load",
                dest=self._fresh_name(expr.array),
                operands=[address, index_value],
                array=expr.array,
                offset=None,
                indirect=True,
                index_array=expr.index.array,
            )
            self.mem_refs.append(
                _MemRef(op, False, expr.array, None, len(self.mem_refs))
            )
            return ("op", op, 0)
        if isinstance(expr, BinOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            opcode = _BINOP_OPCODE[expr.op]
            if left[0] == "const" and right[0] == "const":
                return ("const", _fold(expr.op, left[1], right[1]))
            op = self._emit(opcode, self._fresh_name("t"), [left, right])
            return ("op", op, 0)
        if isinstance(expr, Call):
            args = [self._lower_expr(a) for a in expr.args]
            op = self._emit(_CALL_OPCODE[expr.fn], self._fresh_name("t"), args)
            return ("op", op, 0)
        raise LoweringError(f"cannot lower expression {expr!r}")

    # -- predicates ----------------------------------------------------------

    def _lower_cond(self, cond: Cond) -> int:
        """Lower a predicate expression; returns the defining op index."""
        pinned = self.pinned_conds.get(id(cond))
        if pinned is not None:
            return pinned
        cached = self.cond_cache.get(cond)
        if cached is not None:
            return cached[0]
        if isinstance(cond, Compare):
            left = self._lower_expr(cond.left)
            right = self._lower_expr(cond.right)
            op = self._emit(
                _COMPARE_OPCODE[cond.op], self._fresh_name("p"), [left, right]
            )
        elif isinstance(cond, BoolOp):
            left = self._lower_cond(cond.left)
            right = self._lower_cond(cond.right)
            opcode = "pand" if cond.op == "and" else "por"
            op = self._emit(
                opcode,
                self._fresh_name("p"),
                [("op", left, 0), ("op", right, 0)],
            )
        elif isinstance(cond, NotOp):
            inner = self._lower_cond(cond.operand)
            op = self._emit("pnot", self._fresh_name("p"), [("op", inner, 0)])
        else:
            raise LoweringError(f"cannot lower condition {cond!r}")
        self.cond_cache[cond] = (op, frozenset(_cond_scalars(cond)))
        return op

    # -- statements ------------------------------------------------------------

    def _lower_statement(self, guarded: PredicatedStatement) -> None:
        statement = guarded.statement
        if isinstance(statement, Assign):
            value = self._lower_expr(statement.value)
            if guarded.guard is None:
                if value[0] != "op" or value[2] != 0:
                    # Constants, pass-throughs, and values read at a
                    # non-zero iteration distance (e.g. ``s = i``, whose
                    # producer is the induction recurrence read at
                    # distance 1) need a defining operation of their own:
                    # aliasing the scalar to the producer would lose the
                    # read distance for later uses and the final
                    # write-back.
                    opcode = "limm" if value[0] == "const" else "copy"
                    value = (
                        "op",
                        self._emit(opcode, statement.target, [value]),
                        0,
                    )
                self.current_def[statement.target] = value[1]
            else:
                predicate = self._lower_cond(guarded.guard)
                old = self._read_scalar(statement.target)
                merged = self._emit(
                    "select",
                    self._fresh_name(statement.target),
                    [("op", predicate, 0), value, old],
                )
                self.current_def[statement.target] = merged
            self._invalidate_conditions(statement.target)
        elif isinstance(statement, (Store, IndirectStore)):
            indirect = isinstance(statement, IndirectStore)
            value = self._lower_expr(statement.value)
            address = self._address_descriptor(statement.array)
            operands = [address, value]
            attrs = {
                "array": statement.array,
                "predicated": guarded.guard is not None,
            }
            if indirect:
                operands.append(self._lower_expr(statement.index))
                attrs["offset"] = None
                attrs["indirect"] = True
                attrs["index_array"] = statement.index.array
            else:
                attrs["offset"] = statement.offset
            predicate = None
            if guarded.guard is not None:
                predicate = self._lower_cond(guarded.guard)
            if self.alive_op is not None:
                # WHILE-loop: stores beyond the exit iteration execute
                # speculatively in the pipeline and must not commit.
                if predicate is None:
                    predicate = self.alive_op
                else:
                    predicate = self._emit(
                        "pand",
                        self._fresh_name("p"),
                        [("op", self.alive_op, 0), ("op", predicate, 0)],
                    )
            predicate_name = None
            if predicate is not None:
                predicate_name = self.graph.operation(predicate).dest
                operands.append(("op", predicate, 0))
                attrs["predicated"] = True
            op = self._emit(
                "store",
                dest=None,
                operands=operands,
                predicate=predicate_name,
                **attrs,
            )
            self.mem_refs.append(
                _MemRef(
                    op,
                    True,
                    statement.array,
                    attrs["offset"],
                    len(self.mem_refs),
                )
            )
            self._invalidate_conditions(f"array:{statement.array}")
            # A store kills cached loads of the array: a later read of
            # the same element must see the new value through a fresh
            # load (with its flow dependence on this store).
            for key in [
                k for k in self.load_cache if k[0] == statement.array
            ]:
                del self.load_cache[key]
        else:
            raise LoweringError(f"cannot lower statement {statement!r}")

    # -- memory dependence analysis ------------------------------------------

    def _add_memory_edges(self) -> None:
        for ref in self.mem_refs:
            if ref.is_store and ref.offset is None:
                # A scatter may hit the same element in consecutive
                # iterations: order it against itself.
                self._memory_edge(ref, ref, 1)
        for first in self.mem_refs:
            for second in self.mem_refs:
                if second.position <= first.position:
                    continue
                if first.array != second.array:
                    continue
                if not (first.is_store or second.is_store):
                    continue
                self._memory_pair(first, second)

    def _memory_pair(self, first: _MemRef, second: _MemRef) -> None:
        """Add the dependence between two references (first precedes second
        in program order) to the same array."""
        if first.offset is None or second.offset is None:
            # At least one subscript is unanalyzable: serialize the pair
            # consistently with sequential order — program order within
            # the iteration, and the later reference before the earlier
            # one of the *next* iteration.  Transitively this orders every
            # conflicting dynamic instance.
            self._memory_edge(first, second, 0)
            self._memory_edge(second, first, 1)
            return
        d = first.offset - second.offset
        if d > 0:
            # first@j and second@(j+d) touch the same element.
            self._memory_edge(first, second, d)
        elif d < 0:
            # second@(j+d), d<0, i.e. second of an *earlier* iteration
            # touches what first touches: dependence runs second -> first.
            self._memory_edge(second, first, -d)
        else:
            self._memory_edge(first, second, 0)

    def _memory_edge(self, src: _MemRef, dst: _MemRef, distance: int) -> None:
        if src.op == dst.op and distance == 0:
            return
        if src.is_store and dst.is_store:
            kind = DependenceKind.OUTPUT
        elif src.is_store:
            kind = DependenceKind.FLOW
        else:
            kind = DependenceKind.ANTI
        if src.op == dst.op and kind is not DependenceKind.OUTPUT:
            return
        self.graph.add_edge(src.op, dst.op, kind, distance=distance)

    # -- carried-scalar resolution ----------------------------------------------

    def _resolve_carried(self) -> Dict[str, int]:
        # First pick each carried scalar's defining operation.  Two names
        # may alias the same op (a pass-through assignment like ``s = u``,
        # or value numbering merging identical expressions); each then
        # needs a *private* defining copy, because the simulator maps the
        # op's iteration -1 instance to exactly one scalar's initial
        # value.
        carried: Dict[str, int] = {}
        claimed: Dict[int, str] = {}
        for name in sorted({n for _, _, n in self.pending_carried}):
            final_def = self.current_def.get(name)
            if final_def is None:
                continue
            if final_def in claimed:
                private = self._emit(
                    "copy",
                    f"{name}.carried",
                    [("op", final_def, 0)],
                    role="carried_copy",
                )
                final_def = private
            claimed[final_def] = name
            carried[name] = final_def

        for reader, _, name in self.pending_carried:
            operation = self.graph.operation(reader)
            final_def = carried.get(name)
            new_operands = []
            for descriptor in operation.attrs["operands"]:
                if descriptor != ("carried", name):
                    new_operands.append(descriptor)
                    continue
                if final_def is None:
                    self.live_ins.add(name)
                    new_operands.append(("livein", name))
                else:
                    self.live_ins.add(name)  # its pre-loop initial value
                    new_operands.append(("op", final_def, 1))
                    self.graph.add_edge(
                        final_def, reader, DependenceKind.FLOW, distance=1
                    )
            operation.attrs["operands"] = tuple(new_operands)
        return carried

    # -- driver ---------------------------------------------------------------------

    def _lower_while_condition(self) -> None:
        """alive[k] = alive[k-1] and cond[k], with alive[-1] = True.

        The condition is lowered first, so its scalar reads resolve to
        the previous iteration's values (exactly what the sequential
        semantics evaluate at the top of iteration k).
        """
        cond = self._lower_cond(self.loop.while_cond)
        alive = self._emit(
            "pand",
            self._fresh_name("alive"),
            [("op", cond, 0)],
            role="alive",
        )
        operation = self.graph.operation(alive)
        operation.attrs["operands"] = (("op", cond, 0), ("op", alive, 1))
        self.graph.add_edge(alive, alive, DependenceKind.FLOW, distance=1)
        self.alive_op = alive

    def run(self) -> LoweredLoop:
        if self.loop.while_cond is not None:
            self._lower_while_condition()
        for item in self.statements:
            if isinstance(item, CondEvaluation):
                # Materialize the branch predicate at the If's position
                # and pin it: later guard references (including the
                # negation in the else-branch) must reuse this value even
                # if the then-body redefines scalars the condition reads.
                self.pinned_conds[id(item.cond)] = self._lower_cond(item.cond)
                continue
            self._lower_statement(item)
        self._add_memory_edges()
        # Loop control: the loop-closing branch, sequential with itself.
        self._emit("brtop", dest=None, operands=[], role="loop_control")
        brtop = self.graph.n_ops - 1
        self.graph.add_edge(brtop, brtop, DependenceKind.FLOW, distance=1, delay=1)
        carried = self._resolve_carried()
        self.graph.seal()
        return LoweredLoop(
            loop=self.loop,
            graph=self.graph,
            machine=self.machine,
            statements=self.statements,
            live_in_scalars=self.live_ins,
            carried_defs=carried,
            final_defs=dict(self.current_def),
            alive_op=self.alive_op,
        )


def _fold(op: str, left: float, right: float) -> float:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    raise LoweringError(f"unknown operator {op!r}")


def _cond_scalars(cond) -> Set[str]:
    """Names a condition depends on, for cache invalidation.

    Scalars appear by name; array loads appear as ``"array:x"`` markers so
    that stores to ``x`` can invalidate the cached predicate.
    """
    names: Set[str] = set()

    def walk_expr(expr) -> None:
        if isinstance(expr, Scalar):
            names.add(expr.name)
        elif isinstance(expr, ArrayRef):
            names.add(f"array:{expr.array}")
        elif isinstance(expr, IndirectRef):
            names.add(f"array:{expr.array}")
            names.add(f"array:{expr.index.array}")
        elif isinstance(expr, (BinOp, Compare)):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Call):
            for arg in expr.args:
                walk_expr(arg)

    def walk_cond(node) -> None:
        if isinstance(node, Compare):
            walk_expr(node.left)
            walk_expr(node.right)
        elif isinstance(node, BoolOp):
            walk_cond(node.left)
            walk_cond(node.right)
        elif isinstance(node, NotOp):
            walk_cond(node.operand)

    walk_cond(cond)
    return names


def lower_loop(
    loop: Loop,
    statements,
    machine,
    delay_model: DelayModel = DelayModel.VLIW,
    optimize: bool = True,
) -> LoweredLoop:
    """Lower IF-converted statements to a sealed dependence graph.

    With ``optimize=True`` (the default, matching the paper's
    load-store-eliminated input) identical pure expressions and repeated
    loads of the same element are value-numbered away.
    """
    return _Lowerer(loop, statements, machine, delay_model, optimize).run()
