"""The paper's iterative modulo scheduler as a registered backend.

A thin adapter: :func:`repro.core.scheduler.modulo_schedule` already
returns the protocol's result type and populates attempt records, so the
backend only maps the :class:`~repro.backends.base.IIPolicy` fields onto
the function's parameters.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import IIPolicy, SchedulerBackend
from repro.backends.registry import register
from repro.core.deadline import Deadline
from repro.core.mii import MIIResult
from repro.core.scheduler import ModuloScheduleResult, modulo_schedule
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph


@register
class IMSBackend(SchedulerBackend):
    """Rau's iterative modulo scheduling (Figures 2-4) — the default."""

    name = "ims"
    modulo = True
    proves_optimality = False

    def schedule(
        self,
        graph: DependenceGraph,
        machine,
        policy: Optional[IIPolicy] = None,
        *,
        mii_result: Optional[MIIResult] = None,
        counters: Optional[Counters] = None,
        obs=None,
        deadline: Optional[Deadline] = None,
        trace=None,
        mrt_impl: Optional[str] = None,
    ) -> ModuloScheduleResult:
        policy = policy if policy is not None else IIPolicy()
        return modulo_schedule(
            graph,
            machine,
            budget_ratio=policy.budget_ratio,
            counters=counters,
            mii_result=mii_result,
            max_ii=policy.max_ii,
            exact_mii=policy.exact_mii,
            trace=trace,
            obs=obs,
            mrt_impl=mrt_impl,
            deadline=deadline,
        )
