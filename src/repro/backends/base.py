"""The :class:`SchedulerBackend` protocol.

A scheduler backend turns one sealed dependence graph plus a machine
description into a :class:`~repro.core.schedule.Schedule` wrapped in the
:class:`~repro.core.scheduler.ModuloScheduleResult` metadata bundle —
the same result type :func:`repro.core.scheduler.modulo_schedule` has
always produced, so everything downstream (the evaluation engine, the
cache payloads, the benchmarks, the validator) consumes any backend's
output unchanged.

Backends are small classes registered by name
(:mod:`repro.backends.registry`); the engine, the CLI's ``--backend``
flag and the cache key all select them by that name.  Three ship with
the repo:

``ims``
    Rau's iterative modulo scheduler (the paper's algorithm), moved
    behind the protocol unchanged.
``list``
    The acyclic list scheduler — no software pipelining; its schedule
    is a legal modulo schedule at II = SL, which makes it both the
    degradation ladder's last rung and the exact backend's termination
    guarantee.
``exact``
    SAT-based exact modulo scheduling: probes II upward from MII, so
    the first satisfiable II is *proven* minimal
    (:mod:`repro.backends.exact`).

See ``docs/BACKENDS.md`` for the full protocol contract and the
conformance suite that enforces it (``tests/backends/``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.deadline import Deadline
from repro.core.mii import MIIResult
from repro.core.scheduler import ModuloScheduleResult
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph

# Re-exported so backend implementations and tests import the attempt
# metadata from one place.
from repro.core.scheduler import AttemptRecord  # noqa: F401


@dataclass(frozen=True)
class IIPolicy:
    """How a backend may search the II axis (the protocol's third input).

    Attributes
    ----------
    budget_ratio:
        The paper's BudgetRatio for heuristic backends; the exact
        backend forwards it to its internal IMS upper-bound run.
    max_ii:
        Cap on the II search; ``None`` means the backend's default
        (:func:`repro.core.scheduler.default_max_ii`).
    exact_mii:
        Whether a backend computing its own MII should use the exact
        RecMII search.
    """

    budget_ratio: float = 6.0
    max_ii: Optional[int] = None
    exact_mii: bool = True


class SchedulerBackend(abc.ABC):
    """One scheduling algorithm behind a uniform interface.

    Class attributes describe capabilities the conformance suite keys
    off: ``modulo`` distinguishes true modulo schedulers (II bounded by
    ``[MII, max_ii]``, ``schedule.modulo`` True) from acyclic ones, and
    ``proves_optimality`` marks backends whose results may carry
    ``optimal=True`` for II > MII.
    """

    #: Registered name (set by subclasses; used by the registry, the
    #: cache key, the CLI and every attempt record).
    name: str = ""
    #: Whether the backend emits modulo schedules (II < SL possible).
    modulo: bool = True
    #: Whether the backend can prove II minimality above the MII bound.
    proves_optimality: bool = False

    @abc.abstractmethod
    def schedule(
        self,
        graph: DependenceGraph,
        machine,
        policy: Optional[IIPolicy] = None,
        *,
        mii_result: Optional[MIIResult] = None,
        counters: Optional[Counters] = None,
        obs=None,
        deadline: Optional[Deadline] = None,
        trace=None,
        mrt_impl: Optional[str] = None,
    ) -> ModuloScheduleResult:
        """Schedule ``graph`` on ``machine`` under ``policy``.

        Implementations must return a fully populated
        :class:`ModuloScheduleResult` whose ``backend`` field equals
        :attr:`name` and whose ``attempt_records`` tag every candidate
        II tried; they raise
        :class:`~repro.core.scheduler.SchedulingFailure` when no
        schedule exists within the policy's bounds and let
        :class:`~repro.core.deadline.DeadlineExceeded` propagate — the
        engine's degradation ladder handles both uniformly for every
        backend.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
