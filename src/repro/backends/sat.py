"""A small, deterministic CDCL SAT solver (the exact backend's engine).

The exact modulo-scheduling backend (:mod:`repro.backends.exact`) decides
"does a legal schedule exist at this II?" by encoding the dependence and
modulo-reservation constraints into CNF and asking a SAT solver — the
SAT-based exact scheduling line of SAT-MapIt (Tirelli et al.) and the
SMT formulation of Roorda.  The container must not grow dependencies, so
the default engine is this pure-python conflict-driven clause-learning
solver; :mod:`repro.backends.z3bridge` swaps in ``z3`` when (and only
when) it is importable.

The implementation is textbook MiniSat:

* two watched literals per clause with lazy watch repair,
* first-UIP conflict analysis producing one learned clause per conflict,
* VSIDS-style variable activities with exponential decay,
* Luby-sequence restarts,
* phase saving for decision polarity.

Everything is deterministic: ties break on variable index, there is no
randomization, and the same clause set always yields the same model —
which the backend-conformance suite (determinism for a fixed seed)
relies on.

Literals use the DIMACS convention: variables are ``1..n_vars`` and a
negative integer is the negation of its absolute value.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Result statuses.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_ACTIVITY_RESCALE = 1e100
_ACTIVITY_DECAY = 1.0 / 0.95
_LUBY_UNIT = 256  # conflicts per restart unit


@dataclass
class SolverResult:
    """Outcome of one :func:`solve` call.

    ``model`` maps every variable to its boolean value when ``status`` is
    ``"sat"`` (and is ``None`` otherwise).  ``stats`` always carries the
    search effort — conflicts, decisions, propagations, learned clauses,
    restarts — which the exact backend folds into its attempt records
    and UNSAT certificates.
    """

    status: str
    model: Optional[Dict[int, bool]] = None
    stats: Dict[str, int] = field(default_factory=dict)


def verify_model(
    clauses: Sequence[Sequence[int]], model: Dict[int, bool]
) -> bool:
    """True when ``model`` satisfies every clause (used as a self-check)."""
    for clause in clauses:
        if not any(
            model.get(abs(lit), False) == (lit > 0) for lit in clause
        ):
            return False
    return True


def _luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    while True:
        k = i.bit_length()  # smallest k with 2^k - 1 >= i
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class _Solver:
    """One CDCL search over a fixed clause set."""

    def __init__(self, n_vars: int, clauses: Sequence[Sequence[int]]):
        self.n_vars = n_vars
        # assignment[v]: 0 unassigned, 1 true, -1 false (1-based).
        self.assign = [0] * (n_vars + 1)
        self.level = [0] * (n_vars + 1)
        self.reason: List[Optional[List[int]]] = [None] * (n_vars + 1)
        self.activity = [0.0] * (n_vars + 1)
        self.phase = [False] * (n_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.prop_head = 0
        # watches[lit] = clauses currently watching lit.
        self.watches: Dict[int, List[List[int]]] = {}
        self.clauses: List[List[int]] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0
        self.var_inc = 1.0
        self.heap: List[Tuple[float, int]] = []
        self.contradiction = False
        for clause in clauses:
            if not self._add_clause(list(clause)):
                self.contradiction = True
                break
        if not self.contradiction:
            self.heap = [(0.0, v) for v in range(1, n_vars + 1)]
            heapq.heapify(self.heap)

    # -- clause management --------------------------------------------

    def _add_clause(self, lits: List[int]) -> bool:
        """Attach one input clause; False signals a root contradiction."""
        seen = set()
        reduced = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology: trivially satisfied, drop it
            if lit not in seen:
                seen.add(lit)
                reduced.append(lit)
        if not reduced:
            return False
        if len(reduced) == 1:
            value = self._value(reduced[0])
            if value == -1:
                return False
            if value == 0:
                self._enqueue(reduced[0], None)
            return True
        self.clauses.append(reduced)
        self._watch(reduced)
        return True

    def _watch(self, clause: List[int]) -> None:
        self.watches.setdefault(-clause[0], []).append(clause)
        self.watches.setdefault(-clause[1], []).append(clause)

    # -- assignment ----------------------------------------------------

    def _value(self, lit: int) -> int:
        value = self.assign[abs(lit)]
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            self.propagations += 1
            watching = self.watches.get(lit)
            if not watching:
                continue
            kept: List[List[int]] = []
            conflict = None
            index = 0
            n_watching = len(watching)
            while index < n_watching:
                clause = watching[index]
                index += 1
                # Normalize: the falsified watch sits at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(-clause[1], []).append(
                            clause
                        )
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) == -1:
                    conflict = clause
                    kept.extend(watching[index:])
                    break
                self._enqueue(first, clause)
            self.watches[lit] = kept
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis --------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self.n_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learning: returns (learned clause, backtrack level)."""
        learned: List[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        lit = None
        clause: Optional[List[int]] = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            assert clause is not None
            start = 1 if clause is not conflict and lit is not None else 0
            for k in range(start, len(clause)):
                other = clause[k]
                if lit is not None and other == lit:
                    continue
                var = abs(other)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(other)
            # Walk the trail back to the next marked literal.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            clause = self.reason[var]
        if len(learned) == 1:
            backtrack = 0
        else:
            # Second-highest decision level among the learned literals.
            best = 1
            for k in range(2, len(learned)):
                if self.level[abs(learned[k])] > self.level[abs(learned[best])]:
                    best = k
            learned[1], learned[best] = learned[best], learned[1]
            backtrack = self.level[abs(learned[1])]
        # Bump activities of the learned clause's variables into the heap.
        for other in learned:
            heapq.heappush(
                self.heap, (-self.activity[abs(other)], abs(other))
            )
        return learned, backtrack

    def _cancel_until(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            mark = self.trail_lim.pop()
            for lit in self.trail[mark:]:
                var = abs(lit)
                self.assign[var] = 0
                self.reason[var] = None
                heapq.heappush(self.heap, (-self.activity[var], var))
            del self.trail[mark:]
        self.prop_head = min(self.prop_head, len(self.trail))

    def _decide(self) -> Optional[int]:
        """Most-active unassigned variable (index-deterministic ties)."""
        while self.heap:
            negact, var = heapq.heappop(self.heap)
            if self.assign[var] == 0 and -negact == self.activity[var]:
                return var
        for var in range(1, self.n_vars + 1):  # heap entries went stale
            if self.assign[var] == 0:
                return var
        return None

    # -- the search ----------------------------------------------------

    def solve(self, max_conflicts: Optional[int]) -> SolverResult:
        if self.contradiction:
            return SolverResult(UNSAT, stats=self._stats())
        conflict = self._propagate()
        if conflict is not None:
            return SolverResult(UNSAT, stats=self._stats())
        budget = _LUBY_UNIT * _luby(self.restarts + 1)
        spent_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                spent_here += 1
                if not self.trail_lim:
                    return SolverResult(UNSAT, stats=self._stats())
                learned, backtrack = self._analyze(conflict)
                self._cancel_until(backtrack)
                if len(learned) > 1:
                    self.clauses.append(learned)
                    self._watch(learned)
                    self.learned += 1
                self._enqueue(learned[0], learned if len(learned) > 1 else None)
                self.var_inc *= _ACTIVITY_DECAY
                if (
                    max_conflicts is not None
                    and self.conflicts >= max_conflicts
                ):
                    return SolverResult(UNKNOWN, stats=self._stats())
                if spent_here >= budget:
                    self.restarts += 1
                    spent_here = 0
                    budget = _LUBY_UNIT * _luby(self.restarts + 1)
                    self._cancel_until(0)
                continue
            var = self._decide()
            if var is None:
                model = {
                    v: self.assign[v] == 1 for v in range(1, self.n_vars + 1)
                }
                return SolverResult(SAT, model=model, stats=self._stats())
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)

    def _stats(self) -> Dict[str, int]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned": self.learned,
            "restarts": self.restarts,
        }


def solve(
    n_vars: int,
    clauses: Sequence[Sequence[int]],
    max_conflicts: Optional[int] = None,
) -> SolverResult:
    """Decide a CNF formula.

    Parameters
    ----------
    n_vars:
        Number of variables; literals must lie in ``[-n_vars, n_vars]``
        excluding 0.
    clauses:
        The formula, one literal sequence per clause.
    max_conflicts:
        Optional effort cap; exceeding it returns status ``"unknown"``
        (the exact backend then refuses to claim a certificate).
    """
    for clause in clauses:
        for lit in clause:
            if lit == 0 or abs(lit) > n_vars:
                raise ValueError(f"literal {lit} out of range for {n_vars} vars")
    result = _Solver(n_vars, clauses).solve(max_conflicts)
    if result.status == SAT:
        assert result.model is not None
        if not verify_model(clauses, result.model):  # pragma: no cover
            raise AssertionError("CDCL produced a non-model (solver bug)")
    return result
