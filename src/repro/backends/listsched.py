"""The acyclic list scheduler as a registered backend.

No software pipelining: iterations never overlap, the schedule grid is
linear (``modulo=False``) and the recorded II is ``max(1, SL)`` — which
is exactly why the list schedule is also a *legal* modulo schedule at
that II, making this backend the degradation ladder's last rung and the
upper bound that guarantees the exact backend's II search terminates.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import AttemptRecord, IIPolicy, SchedulerBackend
from repro.backends.registry import register
from repro.baselines.list_scheduler import list_schedule
from repro.core.deadline import Deadline, check_deadline
from repro.core.mii import MIIResult, compute_mii
from repro.core.scheduler import ModuloScheduleResult
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph


@register
class ListBackend(SchedulerBackend):
    """Conventional acyclic list scheduling (the paper's baseline)."""

    name = "list"
    modulo = False
    proves_optimality = False

    def schedule(
        self,
        graph: DependenceGraph,
        machine,
        policy: Optional[IIPolicy] = None,
        *,
        mii_result: Optional[MIIResult] = None,
        counters: Optional[Counters] = None,
        obs=None,
        deadline: Optional[Deadline] = None,
        trace=None,
        mrt_impl: Optional[str] = None,
    ) -> ModuloScheduleResult:
        from repro.obs.context import NULL_OBS

        policy = policy if policy is not None else IIPolicy()
        obs = obs if obs is not None else NULL_OBS
        counters = counters if counters is not None else Counters()
        check_deadline(deadline, "list schedule")
        if mii_result is None:
            mii_result = compute_mii(
                graph, machine, counters, exact=policy.exact_mii, obs=obs,
                deadline=deadline,
            )
        with obs.span("schedule", graph=graph.name, style="list") as span:
            schedule = list_schedule(
                graph, machine, counters, mrt_impl=mrt_impl
            )
            span.set("ii", schedule.ii)
            span.set("attempts", 1)
        obs.counter("sched.loops").inc()
        obs.histogram("sched.ii").observe(schedule.ii)
        return ModuloScheduleResult(
            schedule=schedule,
            mii_result=mii_result,
            budget_ratio=policy.budget_ratio,
            attempts=1,
            steps_total=graph.n_ops,
            steps_last=graph.n_ops,
            counters=counters,
            backend=self.name,
            optimal=None,
            attempt_records=[
                AttemptRecord(
                    backend=self.name,
                    ii=schedule.ii,
                    success=True,
                    steps=graph.n_ops,
                    reason="scheduled",
                )
            ],
        )
