"""CNF encoding of "does a modulo schedule exist at this II?".

One encoding per (graph, machine, candidate II).  The constraint system
is the one the PR-5 validator re-derives — which is what makes the
exact backend's claims checkable:

* **dependences**: for every edge ``p -> q`` with delay ``d`` and
  iteration distance ``k``, ``t(q) >= t(p) + d - k*II`` (the MinDist
  inequality, Section 3.2 of the paper);
* **resources**: two placements may not reserve the same
  (resource, modulo-slot) cell — derived from the machine's compiled
  reservation masks (:class:`repro.machine.machine.CompiledMaskSet`),
  where a placement of alternative ``a`` at time ``t`` occupies
  ``a.slot_masks[t % II]`` and two placements conflict iff their masks
  intersect outside the sentinel bit.

Completeness of the time windows (why UNSAT here refutes the II):
resource legality depends only on the residues ``t mod II``, so any
feasible schedule can be replaced by the *minimal* solution of its
dependence system with the same residues.  That minimal solution is a
longest path from START where each edge weight ``w = d - k*II`` is
rounded up by the per-edge residue correction ``< II``; hence every
operation lands within ``lo(op) = MinDist(START, op)`` plus a slack of
at most ``(n_ops - 1) * (II - 1)``, and no later than
``t(STOP) - MinDist(op, STOP)``.  The encoder bounds every time
variable by exactly those windows, so a satisfying assignment exists
whenever any legal schedule does — UNSAT is a genuine certificate.

Time is encoded order/thermometer-style: ``g[op][t]`` means
``t(op) >= t`` (monotone chains, O(window) clauses per dependence edge
instead of O(window²)), with ``x[op][t]`` channelled to exact times for
the resource side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.deadline import Deadline, check_deadline
from repro.core.mindist import NO_PATH, MinDistMemo
from repro.core.schedule import Schedule
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph
from repro.machine.machine import CompiledMaskSet
from repro.machine.resources import ReservationTable

#: Encoding outcomes.
ENCODED = "encoded"
INFEASIBLE = "infeasible"  # refuted before any solver ran
TOO_LARGE = "too-large"  # exceeds the caller's size budget


@dataclass
class ExactEncoding:
    """One candidate II compiled to CNF (or refuted outright).

    ``status`` is :data:`INFEASIBLE` when the II is impossible without
    any search — a positive-weight recurrence circuit at this II, or an
    opcode whose every reservation alternative folds onto itself — with
    ``reason`` naming which.  Both refutations are horizon-independent,
    so they stay sound even under a truncated slack.  ``status`` is
    :data:`TOO_LARGE` when the windows exceed the caller's
    ``max_time_vars`` budget (nothing was built).  Otherwise ``status``
    is :data:`ENCODED` and the formula lives in ``clauses`` over
    ``n_vars`` variables; ``truncated`` records whether the horizon was
    capped below the provably complete slack — a SAT answer is always a
    real schedule, but an UNSAT answer from a truncated encoding is not
    a refutation of the II.
    """

    ii: int
    status: str
    reason: str = ""
    truncated: bool = False
    n_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)
    lo: Dict[int, int] = field(default_factory=dict)
    hi: Dict[int, int] = field(default_factory=dict)
    x_vars: Dict[Tuple[int, int], int] = field(default_factory=dict)
    alt_vars: Dict[Tuple[int, int], int] = field(default_factory=dict)
    feasible_alts: Dict[str, tuple] = field(default_factory=dict)

    def shape(self) -> Dict[str, int]:
        """Encoding size summary for certificates and obs."""
        window_sum = sum(
            self.hi[op] - self.lo[op] + 1 for op in self.lo
        )
        return {
            "vars": self.n_vars,
            "clauses": len(self.clauses),
            "window_sum": window_sum,
        }


def encode_exact_ii(
    graph: DependenceGraph,
    machine,
    ii: int,
    memo: Optional[MinDistMemo] = None,
    counters: Optional[Counters] = None,
    deadline: Optional[Deadline] = None,
    max_slack: Optional[int] = None,
    max_time_vars: Optional[int] = None,
    max_clauses: Optional[int] = None,
) -> ExactEncoding:
    """Compile the fixed-II scheduling decision problem to CNF.

    ``max_slack`` caps the window slack below the provably complete
    ``(n_ops - 1) * (II - 1)`` — the encoding is then marked
    ``truncated`` and only its SAT answers are conclusive.
    ``max_time_vars`` refuses (:data:`TOO_LARGE`) instead of building a
    formula whose summed window widths exceed the budget, and
    ``max_clauses`` refuses after building when the clause count does —
    both guard the pure-python solver against formulas it cannot finish.
    """
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    check_deadline(deadline, "exact encoding")
    if memo is None:
        memo = MinDistMemo(graph)
    # Under the parametric MinDist the feasibility probe is one
    # comparison against the closure's precomputed diagonal crossing, so
    # a recurrence-infeasible II is rejected without ever materializing
    # its matrix; the windows below are only built for live candidates.
    if not memo.feasible(ii, counters=counters, deadline=deadline):
        return ExactEncoding(ii, INFEASIBLE, reason="recurrence")
    dist, index = memo.mindist(ii, counters=counters, deadline=deadline)

    compiled_masks = getattr(machine, "compiled_masks", None)
    mask_set = (
        compiled_masks(ii)
        if compiled_masks is not None
        else CompiledMaskSet(machine, ii)
    )
    feasible: Dict[str, tuple] = {}
    for operation in graph.real_operations():
        if operation.opcode in feasible:
            continue
        usable = mask_set.feasible(operation.opcode)
        if not usable:
            return ExactEncoding(
                ii, INFEASIBLE, reason="no-feasible-alternative"
            )
        feasible[operation.opcode] = usable

    # ---- time windows (see the module docstring for the soundness
    # argument: the slack covers the worst-case residue rounding of
    # every edge on a longest path).
    start, stop = graph.START, graph.stop
    s_row = index[start]
    full_slack = (graph.n_ops - 1) * (ii - 1)
    slack = full_slack
    truncated = False
    if max_slack is not None and max_slack < full_slack:
        slack = max(max_slack, 0)
        truncated = True

    def from_start(op: int) -> int:
        value = dist[s_row, index[op]]
        return 0 if value == NO_PATH else int(max(0.0, value))

    lo = {op: from_start(op) for op in range(graph.n_ops)}
    lo[start] = 0
    horizon = lo[stop] + slack
    hi: Dict[int, int] = {}
    stop_col = index[stop]
    for op in range(graph.n_ops):
        if op == start:
            hi[op] = 0
            continue
        bound = lo[op] + slack
        to_stop = dist[index[op], stop_col]
        if to_stop != NO_PATH:
            bound = min(bound, horizon - int(to_stop))
        hi[op] = max(bound, lo[op])
    hi[start] = 0

    if max_time_vars is not None:
        window_sum = sum(hi[op] - lo[op] + 1 for op in range(graph.n_ops))
        if window_sum > max_time_vars:
            return ExactEncoding(
                ii,
                TOO_LARGE,
                reason=f"window sum {window_sum} > budget {max_time_vars}",
                truncated=truncated,
            )

    encoding = ExactEncoding(
        ii, ENCODED, truncated=truncated, lo=lo, hi=hi, feasible_alts=feasible
    )
    clauses = encoding.clauses
    counter = [0]

    def new_var() -> int:
        counter[0] += 1
        return counter[0]

    # ---- order variables g[op][t] ("t(op) >= t"), t in (lo, hi].
    g_vars: Dict[Tuple[int, int], int] = {}
    for op in range(graph.n_ops):
        if op == start:
            continue
        for t in range(lo[op] + 1, hi[op] + 1):
            g_vars[(op, t)] = new_var()
        for t in range(lo[op] + 2, hi[op] + 1):  # monotone chain
            clauses.append([-g_vars[(op, t)], g_vars[(op, t - 1)]])

    TRUE, FALSE = "true", "false"

    def g_lit(op: int, t: int):
        """Literal for t(op) >= t, or a constant at the window edges."""
        if t <= lo[op]:
            return TRUE
        if t > hi[op]:
            return FALSE
        return g_vars[(op, t)]

    # ---- exact-time variables x[op][t], channelled to the g chain.
    x_vars = encoding.x_vars
    for op in range(graph.n_ops):
        if op == start:
            continue
        for t in range(lo[op], hi[op] + 1):
            x = new_var()
            x_vars[(op, t)] = x
            above = g_lit(op, t)  # t(op) >= t
            beyond = g_lit(op, t + 1)  # t(op) >= t + 1
            if above not in (TRUE, FALSE):
                clauses.append([-x, above])
            if beyond is not FALSE:
                clauses.append([-x, -beyond])
            completion = [x]
            if above not in (TRUE, FALSE):
                completion.append(-above)
            if beyond is not FALSE:
                completion.append(beyond)
            clauses.append(completion)

    # ---- dependence constraints (deduped to the strongest per pair).
    strongest: Dict[Tuple[int, int], int] = {}
    for edge in graph.edges:
        if edge.pred == edge.succ:
            continue  # self-circuits are covered by the recurrence check
        weight = edge.delay - ii * edge.distance
        key = (edge.pred, edge.succ)
        if key not in strongest or weight > strongest[key]:
            strongest[key] = weight
    for (pred, succ), weight in strongest.items():
        if pred == start:
            continue  # START is pinned at 0; absorbed into the lo bounds
        for t in range(lo[pred] + 1, hi[pred] + 1):
            required = t + weight
            if required <= lo[succ]:
                continue  # implied by the windows
            if required > hi[succ]:
                clauses.append([-g_vars[(pred, t)]])
            else:
                clauses.append(
                    [-g_vars[(pred, t)], g_vars[(succ, required)]]
                )

    # ---- alternative selection (exactly one per real operation).
    alt_vars = encoding.alt_vars
    for operation in graph.real_operations():
        op = operation.index
        alternatives = feasible[operation.opcode]
        ids = [new_var() for _ in alternatives]
        for k, var in enumerate(ids):
            alt_vars[(op, k)] = var
        clauses.append(list(ids))
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                clauses.append([-ids[a], -ids[b]])

    # ---- placements p[op][alt][t % II] and mask-conflict clauses.
    placements: List[Tuple[int, int, int]] = []  # (op, var, mask)
    p_vars: Dict[Tuple[int, int, int], int] = {}
    for operation in graph.real_operations():
        op = operation.index
        alternatives = feasible[operation.opcode]
        for k, alternative in enumerate(alternatives):
            for t in range(lo[op], hi[op] + 1):
                slot = t % ii
                key = (op, k, slot)
                p = p_vars.get(key)
                if p is None:
                    p = new_var()
                    p_vars[key] = p
                    placements.append(
                        (op, p, alternative.slot_masks[slot])
                    )
                clauses.append(
                    [-x_vars[(op, t)], -alt_vars[(op, k)], p]
                )
    check_deadline(deadline, "exact encoding")
    # Each (resource, modulo-slot) MRT cell admits at most one placement.
    # The p variables are one-directional (x AND alt implies p), so a
    # model's true placements are exactly the implied ones and the
    # per-cell at-most-one is equivalent to pairwise mask disjointness —
    # at linear instead of quadratic clause count.
    cells: Dict[int, List[int]] = {}
    for _, var, mask in placements:
        bits = mask & ~1  # bit 0 is the self-conflict sentinel
        while bits:
            low = bits & -bits
            cells.setdefault(low.bit_length(), []).append(var)
            bits ^= low
    for cell in sorted(cells):
        _at_most_one(cells[cell], clauses, new_var)

    encoding.n_vars = counter[0]
    if max_clauses is not None and len(clauses) > max_clauses:
        return ExactEncoding(
            ii,
            TOO_LARGE,
            reason=f"{len(clauses)} clauses > budget {max_clauses}",
            truncated=truncated,
        )
    return encoding


def _at_most_one(lits: List[int], clauses: List[List[int]], new_var) -> None:
    """At most one of ``lits`` — pairwise when tiny, sequential beyond.

    The sequential (ladder) encoding introduces one auxiliary "some
    earlier literal is true" variable per position and three clauses per
    literal, versus O(n²) pairwise clauses.
    """
    n = len(lits)
    if n <= 1:
        return
    if n <= 4:
        for a in range(n):
            for b in range(a + 1, n):
                clauses.append([-lits[a], -lits[b]])
        return
    prev = new_var()
    clauses.append([-lits[0], prev])
    for i in range(1, n - 1):
        nxt = new_var()
        clauses.append([-lits[i], nxt])
        clauses.append([-prev, nxt])
        clauses.append([-lits[i], -prev])
        prev = nxt
    clauses.append([-lits[n - 1], -prev])


def decode_model(
    graph: DependenceGraph,
    encoding: ExactEncoding,
    model: Dict[int, bool],
) -> Schedule:
    """Turn a satisfying assignment back into a :class:`Schedule`."""
    times: Dict[int, int] = {graph.START: 0}
    alternatives: Dict[int, Optional[ReservationTable]] = {
        graph.START: None
    }
    for op in range(graph.n_ops):
        if op == graph.START:
            continue
        chosen = [
            t
            for t in range(encoding.lo[op], encoding.hi[op] + 1)
            if model[encoding.x_vars[(op, t)]]
        ]
        if len(chosen) != 1:  # pragma: no cover - encoder invariant
            raise AssertionError(
                f"operation {op} has {len(chosen)} assigned times"
            )
        times[op] = chosen[0]
        operation = graph.operation(op)
        if operation.is_pseudo:
            alternatives[op] = None
            continue
        usable = encoding.feasible_alts[operation.opcode]
        picked = [
            k
            for k in range(len(usable))
            if model[encoding.alt_vars[(op, k)]]
        ]
        if len(picked) != 1:  # pragma: no cover - encoder invariant
            raise AssertionError(
                f"operation {op} has {len(picked)} chosen alternatives"
            )
        compiled = usable[picked[0]]
        alternatives[op] = getattr(compiled, "table", compiled)
    return Schedule(graph, encoding.ii, times, alternatives)
