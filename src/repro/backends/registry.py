"""Name-based registry of scheduler backends.

Backends self-register at import time via the :func:`register`
decorator (the same pattern the lint passes use); consumers resolve
them with :func:`get_backend` and enumerate them with
:func:`backend_names` — which is what the CLI's ``--backend`` choices,
the engine's validation and the conformance suite's parametrization all
call, so a newly registered backend is automatically picked up by every
layer, tests included.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.backends.base import SchedulerBackend

_REGISTRY: Dict[str, Type[SchedulerBackend]] = {}


def register(cls: Type[SchedulerBackend]) -> Type[SchedulerBackend]:
    """Class decorator: register a backend under its ``name``."""
    if not cls.name:
        raise ValueError(f"backend class {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"backend {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_backend(name: str, **options) -> SchedulerBackend:
    """Instantiate the backend registered under ``name``.

    ``options`` are forwarded to the backend's constructor (e.g. the
    exact backend's ``solver=`` / ``max_conflicts=``).  Raises
    :class:`ValueError` for an unknown name — the engine and the CLI
    surface that as a clean configuration error.
    """
    _ensure_loaded()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler backend {name!r}; "
            f"choose from {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def _ensure_loaded() -> None:
    """Import the built-in backend modules (idempotent)."""
    from repro.backends import exact, ims, listsched  # noqa: F401
