"""Exact modulo scheduling by SAT, proving II minimality.

The backend first runs the paper's iterative modulo scheduler to get an
upper bound II_h (falling back to the acyclic list schedule when even
IMS fails — its SL is always an achievable II, so the search space is
closed).  When II_h already equals the MII the heuristic result is
returned as-is with ``optimal=True`` — the MII is a lower bound, so no
solver work is needed; on this repo's corpus that covers the large
majority of loops.

Otherwise every candidate II in ``[MII, II_h)`` is compiled to CNF
(:mod:`repro.backends.encode`) and solved, in increasing order.  The
first satisfiable II is therefore *proven* minimal: everything below it
carries a refutation — either a positive recurrence circuit found
during encoding or an UNSAT verdict from the solver — and those
refutations are kept per-II in ``result.certificates``.  Every schedule
decoded from a SAT model is re-validated from scratch by the
independent checker (:func:`repro.check.validate.check_schedule`)
before it is returned.

Solvers: the bundled pure-python CDCL solver
(:mod:`repro.backends.sat`) always works; z3 is used when installed and
selected (``solver="auto"`` prefers it, the ``REPRO_SAT_SOLVER``
environment variable overrides).  If the conflict budget runs out the
probe reports ``unknown``, the heuristic schedule is returned and
``optimal`` stays ``None`` — the backend never claims a proof it does
not hold.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.backends.base import AttemptRecord, IIPolicy, SchedulerBackend
from repro.backends.encode import (
    ENCODED,
    INFEASIBLE,
    TOO_LARGE,
    ExactEncoding,
    decode_model,
    encode_exact_ii,
)
from repro.backends.registry import register
from repro.backends.sat import SAT, UNSAT, SolverResult, solve as cdcl_solve
from repro.backends.z3bridge import SolverUnavailable, solve_with_z3, z3_available
from repro.baselines.list_scheduler import list_schedule
from repro.check.validate import check_schedule
from repro.core.deadline import Deadline, check_deadline
from repro.core.mii import MIIResult, compute_mii
from repro.core.mindist import MinDistMemo
from repro.core.scheduler import (
    ModuloScheduleResult,
    SchedulingFailure,
    modulo_schedule,
)
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph

#: Default conflict budget per candidate II for the CDCL solver.  The
#: corpus formulas are small (hundreds of variables); refutations land
#: in well under a thousand conflicts, so this is a safety valve, not a
#: tuning knob.
DEFAULT_MAX_CONFLICTS = 200_000

#: Cap on the summed time-window widths a single encoding may have.
#: The provably complete slack is (n_ops-1)*(II-1), which explodes for
#: deep loops at large II; beyond this budget the probe reports
#: ``too-large`` and the backend stops claiming a proof rather than
#: building a formula the pure-python solver cannot finish.
DEFAULT_MAX_TIME_VARS = 25_000

#: Companion cap on the built formula's clause count — large-II loops
#: with many reservation alternatives can blow up the placement side
#: even when their time windows fit the budget above.
DEFAULT_MAX_CLAUSES = 60_000

_SOLVERS = ("auto", "cdcl", "z3")


@register
class ExactBackend(SchedulerBackend):
    """SAT-based exact modulo scheduler (proves the minimal II)."""

    name = "exact"
    modulo = True
    proves_optimality = True

    def __init__(
        self,
        solver: str = "auto",
        max_conflicts: int = DEFAULT_MAX_CONFLICTS,
        max_time_vars: int = DEFAULT_MAX_TIME_VARS,
        max_clauses: int = DEFAULT_MAX_CLAUSES,
    ) -> None:
        if solver not in _SOLVERS:
            raise ValueError(
                f"unknown SAT solver {solver!r}; choose from "
                f"{', '.join(_SOLVERS)}"
            )
        if solver == "auto":
            solver = os.environ.get("REPRO_SAT_SOLVER", "auto")
            if solver not in _SOLVERS:
                raise ValueError(
                    f"REPRO_SAT_SOLVER={solver!r} is not one of "
                    f"{', '.join(_SOLVERS)}"
                )
        if solver == "auto":
            solver = "z3" if z3_available() else "cdcl"
        if solver == "z3" and not z3_available():
            raise SolverUnavailable(
                "solver='z3' was requested but the optional 'z3' package "
                "is not installed; use solver='cdcl' (built in) or "
                "solver='auto' to pick automatically"
            )
        self.solver = solver
        self.max_conflicts = int(max_conflicts)
        self.max_time_vars = int(max_time_vars)
        self.max_clauses = int(max_clauses)

    # ------------------------------------------------------------------

    def _solve_cnf(self, encoding: ExactEncoding) -> SolverResult:
        if self.solver == "z3":
            return solve_with_z3(
                encoding.n_vars, encoding.clauses, self.max_conflicts
            )
        return cdcl_solve(
            encoding.n_vars, encoding.clauses, max_conflicts=self.max_conflicts
        )

    @staticmethod
    def _certificate(
        encoding: ExactEncoding, result: Optional[SolverResult], status: str
    ) -> Dict[str, Any]:
        cert: Dict[str, Any] = {"status": status}
        if encoding.status == ENCODED:
            cert.update(encoding.shape())
            if encoding.truncated:
                cert["truncated"] = True
        else:
            cert["reason"] = encoding.reason
        if result is not None:
            cert["solver"] = result.stats.get("solver", "cdcl")
            if "conflicts" in result.stats:
                cert["conflicts"] = result.stats["conflicts"]
        return cert

    def _probe_ii(
        self, graph, machine, ii, memo, counters, deadline
    ) -> tuple:
        """Decide one candidate II.

        Returns ``(verdict, encoding, result)`` with verdict one of
        ``"sat"``, ``"unsat"``, ``"infeasible"``, ``"unknown"`` or
        ``"too-large"``.  The first encoding uses a cheap truncated
        horizon: SAT there is a real schedule, and the structural
        refutations (recurrence circuit, no feasible alternative) are
        horizon-independent — only a truncated UNSAT forces the
        escalation to the provably complete windows, and when those
        exceed the size budget the verdict honestly degrades to
        ``too-large`` instead of claiming a refutation.
        """
        full_slack = (graph.n_ops - 1) * (ii - 1)
        slack = 8
        last_result: Optional[SolverResult] = None
        while True:
            encoding = encode_exact_ii(
                graph,
                machine,
                ii,
                memo=memo,
                counters=counters,
                deadline=deadline,
                max_slack=slack,
                max_time_vars=self.max_time_vars,
                max_clauses=self.max_clauses,
            )
            if encoding.status == INFEASIBLE:
                return "infeasible", encoding, None
            if encoding.status == TOO_LARGE:
                # The windows a sound refutation would need are beyond
                # the solver's reach; SAT might still have been found at
                # a smaller slack, so only "unknown" remains.
                return "too-large", encoding, last_result
            if (
                encoding.truncated
                and slack < full_slack
                and len(encoding.clauses) > (self.max_clauses * 3) // 5
            ):
                # This intermediate rung already costs nearly as much as
                # the complete one — solve the conclusive formula instead
                # of burning an inconclusive refutation on this one.
                slack = full_slack
                continue
            result = self._solve_cnf(encoding)
            if result.status == SAT:
                return "sat", encoding, result
            if result.status != UNSAT:
                return "unknown", encoding, result
            if not encoding.truncated:
                return "unsat", encoding, result
            # Truncated UNSAT is inconclusive: deepen.  Schedules live
            # near the small end of the window, so widen gently — each
            # skipped rung risks paying for a needlessly wide SAT search.
            last_result = result
            slack = min(slack * 2, full_slack)

    def _validated(self, graph, machine, schedule) -> None:
        diagnostics = check_schedule(graph, machine, schedule)
        if diagnostics.errors:  # pragma: no cover - encoder invariant
            raise RuntimeError(
                "exact backend produced a schedule the independent "
                "checker rejects: "
                + "; ".join(str(f) for f in diagnostics.errors)
            )

    # ------------------------------------------------------------------

    def schedule(
        self,
        graph: DependenceGraph,
        machine,
        policy: Optional[IIPolicy] = None,
        *,
        mii_result: Optional[MIIResult] = None,
        counters: Optional[Counters] = None,
        obs=None,
        deadline: Optional[Deadline] = None,
        trace=None,
        mrt_impl: Optional[str] = None,
    ) -> ModuloScheduleResult:
        from repro.obs.context import NULL_OBS

        policy = policy if policy is not None else IIPolicy()
        obs = obs if obs is not None else NULL_OBS
        counters = counters if counters is not None else Counters()
        if mii_result is None:
            mii_result = compute_mii(
                graph, machine, counters, exact=policy.exact_mii, obs=obs,
                deadline=deadline,
            )
        mii = mii_result.mii
        memo = mii_result.mindist_memo or MinDistMemo(graph)

        # ---- heuristic upper bound (also the fallback schedule when a
        # probe comes back unknown).
        records: List[AttemptRecord] = []
        try:
            upper = modulo_schedule(
                graph,
                machine,
                budget_ratio=policy.budget_ratio,
                counters=counters,
                mii_result=mii_result,
                max_ii=policy.max_ii,
                exact_mii=policy.exact_mii,
                trace=trace,
                obs=obs,
                mrt_impl=mrt_impl,
                deadline=deadline,
            )
            records.extend(upper.attempt_records)
        except SchedulingFailure as exc:
            for ii in exc.attempted_iis:
                records.append(
                    AttemptRecord(
                        backend="ims",
                        ii=ii,
                        success=False,
                        steps=exc.steps_by_ii.get(ii, 0),
                        reason="budget",
                    )
                )
            fallback = list_schedule(
                graph, machine, counters, mrt_impl=mrt_impl
            )
            records.append(
                AttemptRecord(
                    backend="list",
                    ii=fallback.ii,
                    success=True,
                    steps=graph.n_ops,
                    reason="scheduled",
                )
            )
            upper = ModuloScheduleResult(
                schedule=fallback,
                mii_result=mii_result,
                budget_ratio=policy.budget_ratio,
                attempts=len(exc.attempted_iis) + 1,
                steps_total=sum(exc.steps_by_ii.values()) + graph.n_ops,
                steps_last=graph.n_ops,
                counters=counters,
                backend="list",
                attempt_records=list(records),
            )
        ii_h = upper.schedule.ii

        def finish(
            schedule,
            optimal: Optional[bool],
            certificates: Dict[int, Dict[str, Any]],
            steps_last: int,
        ) -> ModuloScheduleResult:
            exact_records = [r for r in records if r.backend == self.name]
            obs.counter("exact.loops").inc()
            obs.histogram("exact.ii").observe(schedule.ii)
            return ModuloScheduleResult(
                schedule=schedule,
                mii_result=mii_result,
                budget_ratio=policy.budget_ratio,
                attempts=len(exact_records),
                steps_total=sum(r.steps for r in exact_records),
                steps_last=steps_last,
                counters=counters,
                backend=self.name,
                optimal=optimal,
                attempt_records=list(records),
                certificates=certificates,
            )

        with obs.span(
            "schedule.exact", graph=graph.name, solver=self.solver
        ) as span:
            span.set("mii", mii)
            span.set("heuristic_ii", ii_h)
            if ii_h <= mii:
                # The MII is a lower bound, so matching it is a proof in
                # itself — no solver run needed.
                records.append(
                    AttemptRecord(
                        backend=self.name,
                        ii=ii_h,
                        success=True,
                        steps=0,
                        reason="matched-mii",
                    )
                )
                span.set("ii", ii_h)
                span.set("proof", "mii-bound")
                return finish(
                    upper.schedule,
                    True,
                    {ii_h: {"status": "sat", "witness": "mii-bound"}},
                    0,
                )

            certificates: Dict[int, Dict[str, Any]] = {}
            proof_lost = False
            for ii in range(mii, ii_h):
                check_deadline(deadline, "exact II probe")
                with obs.span("schedule.exact.attempt", ii=ii) as attempt:
                    verdict, encoding, result = self._probe_ii(
                        graph, machine, ii, memo, counters, deadline
                    )
                    conflicts = (
                        int(result.stats.get("conflicts", 0))
                        if result is not None
                        else 0
                    )
                    attempt.set("status", verdict)
                    attempt.set("conflicts", conflicts)
                    if verdict == "sat":
                        schedule = decode_model(graph, encoding, result.model)
                        self._validated(graph, machine, schedule)
                        certificates[ii] = self._certificate(
                            encoding, result, "sat"
                        )
                        records.append(
                            AttemptRecord(
                                backend=self.name,
                                ii=ii,
                                success=True,
                                steps=conflicts,
                                reason="sat",
                            )
                        )
                        span.set("ii", ii)
                        span.set("proof", "sat-search" if not proof_lost else "none")
                        # Optimal only if every lower II was *soundly*
                        # refuted; a skipped/unknown probe below voids it.
                        return finish(
                            schedule,
                            True if not proof_lost else None,
                            certificates,
                            conflicts,
                        )
                    if verdict == "infeasible":
                        certificates[ii] = self._certificate(
                            encoding, None, "infeasible"
                        )
                        records.append(
                            AttemptRecord(
                                backend=self.name,
                                ii=ii,
                                success=False,
                                steps=0,
                                reason=encoding.reason,
                            )
                        )
                        continue
                    if verdict == "unsat":
                        certificates[ii] = self._certificate(
                            encoding, result, "unsat"
                        )
                        records.append(
                            AttemptRecord(
                                backend=self.name,
                                ii=ii,
                                success=False,
                                steps=conflicts,
                                reason="unsat",
                            )
                        )
                        continue
                    # unknown / too-large: the proof is lost, but keep
                    # probing — a higher II may still beat the heuristic.
                    proof_lost = True
                    certificates[ii] = self._certificate(
                        encoding, result, verdict
                    )
                    records.append(
                        AttemptRecord(
                            backend=self.name,
                            ii=ii,
                            success=False,
                            steps=conflicts,
                            reason=verdict,
                        )
                    )

            # No II below the heuristic's is achievable (or provable):
            # the heuristic schedule stands, proven minimal only when
            # every lower II carries a sound refutation.
            records.append(
                AttemptRecord(
                    backend=self.name,
                    ii=ii_h,
                    success=True,
                    steps=0,
                    reason=(
                        "confirmed-heuristic" if not proof_lost else "unproven"
                    ),
                )
            )
            if not proof_lost:
                certificates[ii_h] = {"status": "sat", "witness": "heuristic"}
            span.set("ii", ii_h)
            span.set("proof", "exhausted-below" if not proof_lost else "none")
            return finish(
                upper.schedule,
                True if not proof_lost else None,
                certificates,
                0,
            )
