"""Optional z3 bridge for the exact backend.

z3 is an *extra*: nothing in the repo requires it, and every code path
degrades to the bundled pure-python CDCL solver
(:mod:`repro.backends.sat`) when it is not importable.  The bridge keeps
the import attempt in one place and translates z3's verdicts into the
same :class:`~repro.backends.sat.SolverResult` the CDCL solver returns,
so the exact backend is solver-agnostic above this line.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backends.sat import SAT, UNKNOWN, UNSAT, SolverResult, verify_model


class SolverUnavailable(RuntimeError):
    """Raised when the requested SAT solver cannot be used here."""


def z3_available() -> bool:
    """Whether the optional z3 extra is importable in this environment."""
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


def solve_with_z3(  # pragma: no cover - exercised only with the z3 extra
    n_vars: int,
    clauses: List[List[int]],
    max_conflicts: Optional[int] = None,
) -> SolverResult:
    """Solve a DIMACS-style CNF with z3, mirroring ``sat.solve``.

    Raises :class:`SolverUnavailable` when z3 is not installed — callers
    that want silent degradation should guard with :func:`z3_available`.
    """
    try:
        import z3
    except ImportError as exc:
        raise SolverUnavailable(
            "the z3 solver backend was requested but the 'z3' package is "
            "not installed; install the optional extra or use the "
            "built-in CDCL solver (solver='cdcl')"
        ) from exc

    solver = z3.Solver()
    if max_conflicts is not None:
        solver.set("max_conflicts", int(max_conflicts))
    variables = [z3.Bool(f"v{i}") for i in range(n_vars + 1)]
    for clause in clauses:
        solver.add(
            z3.Or(
                *[
                    variables[lit] if lit > 0 else z3.Not(variables[-lit])
                    for lit in clause
                ]
            )
        )
    verdict = solver.check()
    stats = {"solver": "z3"}
    if verdict == z3.sat:
        z3_model = solver.model()
        model: Dict[int, bool] = {}
        for i in range(1, n_vars + 1):
            value = z3_model.eval(variables[i], model_completion=True)
            model[i] = bool(value)
        if not verify_model(clauses, model):  # pragma: no cover - safety
            raise AssertionError("z3 returned a non-satisfying model")
        return SolverResult(status=SAT, model=model, stats=stats)
    if verdict == z3.unsat:
        return SolverResult(status=UNSAT, model=None, stats=stats)
    return SolverResult(status=UNKNOWN, model=None, stats=stats)
