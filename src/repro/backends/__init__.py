"""Pluggable scheduler backends.

One protocol (:class:`SchedulerBackend`), a name-based registry, and
three implementations: ``ims`` (the paper's algorithm), ``list`` (the
acyclic baseline) and ``exact`` (SAT-based, proves II minimality).
See ``docs/BACKENDS.md``.
"""

from repro.backends.base import AttemptRecord, IIPolicy, SchedulerBackend
from repro.backends.registry import backend_names, get_backend, register

__all__ = [
    "AttemptRecord",
    "IIPolicy",
    "SchedulerBackend",
    "backend_names",
    "get_backend",
    "register",
]
