"""Machine-visible loop state: arrays with halos, plus scalars."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


def floats_equal(a: float, b: float) -> bool:
    """Bit-for-bit equality, except that two NaNs compare equal.

    Speculative arithmetic legitimately produces NaN on both sides of an
    equivalence check (e.g. a guarded sqrt of a negative value), so NaN
    must equal NaN here.
    """
    if a == b:
        return True
    try:
        return math.isnan(a) and math.isnan(b)
    except TypeError:
        return False


class ArrayStore:
    """A one-dimensional array addressable at ``i + c`` for small ``c``.

    Indices from ``-halo`` to ``length + halo - 1`` are valid, so loop
    bodies using subscripts like ``a[i-2]`` or ``a[i+3]`` stay in bounds
    for every iteration.
    """

    def __init__(self, length: int, halo: int = 8, fill: float = 0.0) -> None:
        if length < 0:
            raise ValueError(f"array length must be >= 0, got {length}")
        if halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        self.length = length
        self.halo = halo
        self._data: List[float] = [fill] * (length + 2 * halo)

    def _position(self, index: int) -> int:
        position = index + self.halo
        if not 0 <= position < len(self._data):
            raise IndexError(
                f"index {index} outside [-{self.halo}, "
                f"{self.length + self.halo})"
            )
        return position

    def __getitem__(self, index: int) -> float:
        return self._data[self._position(index)]

    def __setitem__(self, index: int, value: float) -> None:
        self._data[self._position(index)] = float(value)

    def fill_from(self, values: Iterable[float]) -> "ArrayStore":
        """Fill positions 0..length-1 from an iterable (halo untouched)."""
        for index, value in enumerate(values):
            if index >= self.length:
                break
            self[index] = value
        return self

    def snapshot(self) -> Tuple[float, ...]:
        """The full backing store (halo included), for comparisons."""
        return tuple(self._data)

    def body(self) -> Tuple[float, ...]:
        """Just positions 0..length-1."""
        return tuple(self._data[self.halo : self.halo + self.length])

    def copy(self) -> "ArrayStore":
        """An independent deep copy (halo included)."""
        duplicate = ArrayStore(self.length, self.halo)
        duplicate._data = list(self._data)
        return duplicate


@dataclass
class LoopState:
    """All state a loop reads and writes: named arrays and scalars."""

    arrays: Dict[str, ArrayStore] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "LoopState":
        """An independent deep copy of all arrays and scalars."""
        return LoopState(
            arrays={name: array.copy() for name, array in self.arrays.items()},
            scalars=dict(self.scalars),
        )

    def differences(self, other: "LoopState") -> List[str]:
        """Describe where two states differ (empty when identical)."""
        problems: List[str] = []
        if set(self.arrays) != set(other.arrays):
            problems.append(
                f"array sets differ: {sorted(self.arrays)} vs "
                f"{sorted(other.arrays)}"
            )
            return problems
        if set(self.scalars) != set(other.scalars):
            problems.append(
                f"scalar sets differ: {sorted(self.scalars)} vs "
                f"{sorted(other.scalars)}"
            )
            return problems
        for name in sorted(self.arrays):
            mine, theirs = self.arrays[name], other.arrays[name]
            for index in range(-mine.halo, mine.length + mine.halo):
                if not floats_equal(mine[index], theirs[index]):
                    problems.append(
                        f"array {name}[{index}]: {mine[index]!r} vs "
                        f"{theirs[index]!r}"
                    )
        for name in sorted(self.scalars):
            if not floats_equal(self.scalars[name], other.scalars[name]):
                problems.append(
                    f"scalar {name}: {self.scalars[name]!r} vs "
                    f"{other.scalars[name]!r}"
                )
        return problems


def make_initial_state(
    lowered,
    n: int,
    seed: Optional[int] = 0,
    halo: Optional[int] = None,
) -> LoopState:
    """Random-but-reproducible initial state sized for ``n`` iterations.

    Array contents and live-in scalars are drawn from a seeded RNG so the
    equivalence check exercises data-dependent control flow; pass explicit
    values by mutating the returned state.
    """
    rng = random.Random(seed)
    if halo is None:
        halo = 4
        for op in lowered.graph.real_operations():
            offset = op.attrs.get("offset")
            if offset is not None:
                halo = max(halo, abs(offset) + 2)
    index_arrays = {
        op.attrs["index_array"]
        for op in lowered.graph.real_operations()
        if "index_array" in op.attrs
    }
    state = LoopState()
    for array in lowered.arrays:
        store = ArrayStore(n, halo=halo)
        if array in index_arrays:
            # Arrays used as indirect subscripts hold valid element
            # indices so gathers/scatters stay in bounds.
            for index in range(-halo, n + halo):
                store[index] = float(rng.randrange(max(1, n)))
        else:
            for index in range(-halo, n + halo):
                store[index] = round(rng.uniform(-4.0, 4.0), 3)
        state.arrays[array] = store
    for scalar in sorted(lowered.live_in_scalars):
        state.scalars[scalar] = round(rng.uniform(-4.0, 4.0), 3)
    return state
