"""Pipelined executor: runs a modulo schedule against real state.

Iteration ``k`` of a modulo schedule issues operation ``op`` at cycle
``k * II + time(op)``.  This executor plays all ``n`` iterations in global
time order — which covers the pipeline's fill (prologue), steady state
(kernel) and drain (epilogue) implicitly — with the memory semantics that
make dependence mistakes *observable*:

* a load samples memory at its issue cycle;
* a store evaluates its operands at its issue cycle and commits to memory
  one cycle later (its latency); commits at cycle ``t`` happen before
  samples at cycle ``t``.

So if the front end got a memory dependence distance wrong, or the
scheduler violated an edge, the final state differs from the sequential
reference.  Scalar dataflow follows the operand descriptors produced by
lowering (EVR semantics: instance ``k`` of a consumer at distance ``d``
reads instance ``k - d`` of the producer; negative instances read the
loop's initial state).  With ``check_ready=True`` every operand read also
asserts that the producing instance has completed, a dynamic re-statement
of the flow-dependence constraint.

Arithmetic beneath an untaken predicate executes speculatively (as the
hardware would); potentially-faulting speculative operations return IEEE
poison values (NaN/inf) instead of raising, and the ``select`` that merges
the result discards them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Schedule
from repro.loopir.lower import LoweredLoop
from repro.simulator.state import LoopState


class SimulationError(RuntimeError):
    """A dynamic dependence violation or an unexecutable operation."""


def _safe_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0:
            return math.nan
        return math.copysign(math.inf, a)
    return a / b


def _safe_sqrt(a: float) -> float:
    if a < 0.0:
        return math.nan
    return math.sqrt(a)


_ARITH = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _safe_div,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _safe_div,
    "aadd": lambda a, b: a + b,
    "asub": lambda a, b: a - b,
    "fmin": min,
    "fmax": max,
}
_UNARY = {
    "fabs": abs,
    "fneg": lambda a: -a,
    "fsqrt": _safe_sqrt,
    "copy": lambda a: a,
}
_COMPARE = {
    "cmp_lt": lambda a, b: a < b,
    "cmp_le": lambda a, b: a <= b,
    "cmp_eq": lambda a, b: a == b,
    "cmp_ne": lambda a, b: a != b,
    "cmp_gt": lambda a, b: a > b,
    "cmp_ge": lambda a, b: a >= b,
}
_PREDICATE = {
    "pand": lambda a, b: bool(a) and bool(b),
    "por": lambda a, b: bool(a) or bool(b),
}


class _Executor:
    def __init__(
        self,
        lowered: LoweredLoop,
        schedule: Schedule,
        state: LoopState,
        n: int,
        check_ready: bool,
    ) -> None:
        self.lowered = lowered
        self.schedule = schedule
        self.graph = lowered.graph
        self.state = state
        self.n = n
        self.check_ready = check_ready
        self.initial_scalars = dict(state.scalars)
        self.values: Dict[Tuple[int, int], object] = {}
        self.carried_by_op = {op: name for name, op in lowered.carried_defs.items()}

    # -- operand resolution ------------------------------------------------

    def _initial_value(self, op: int) -> float:
        operation = self.graph.operation(op)
        role = operation.attrs.get("role")
        if role in ("address", "ivar"):
            return 0.0
        if role == "alive":
            return True  # alive[-1]: the loop is entered
        name = self.carried_by_op.get(op)
        if name is not None:
            return self.initial_scalars[name]
        raise SimulationError(
            f"operation {op} read at a negative iteration but has no "
            "initial value"
        )

    def _flow_edge(self, producer: int, consumer: int, distance: int):
        """The graph's flow edge behind an operand read, if it has one."""
        for edge in self.graph.succ_edges(producer):
            if (
                edge.succ == consumer
                and edge.distance == distance
                and edge.kind.value == "flow"
            ):
                return edge
        return None

    def _operand(self, descriptor: tuple, k: int, use_time: int, consumer: int):
        kind = descriptor[0]
        if kind == "const":
            return descriptor[1]
        if kind == "livein":
            try:
                return self.initial_scalars[descriptor[1]]
            except KeyError:
                raise SimulationError(
                    f"live-in scalar {descriptor[1]!r} missing from state"
                ) from None
        if kind != "op":
            raise SimulationError(f"unresolved operand descriptor {descriptor!r}")
        _, producer, distance = descriptor
        j = k - distance
        if j < 0:
            return self._initial_value(producer)
        if self.check_ready:
            available = (
                j * self.schedule.ii
                + self.schedule.times[producer]
                + self.graph.latency(producer)
            )
            if use_time < available:
                edge = self._flow_edge(producer, consumer, distance)
                edge_text = (
                    f"edge {edge.pred}->{edge.succ} distance={edge.distance} "
                    f"delay={edge.delay}"
                    if edge is not None
                    else f"implicit flow {producer}->{consumer} "
                    f"distance={distance} "
                    f"latency={self.graph.latency(producer)}"
                )
                raise SimulationError(
                    f"dynamic dependence violated at cycle {use_time}: op "
                    f"{consumer} ({self.graph.operation(consumer).opcode!r}, "
                    f"iteration {k}, t={self.schedule.times[consumer]}) reads "
                    f"op {producer} "
                    f"({self.graph.operation(producer).opcode!r}, iteration "
                    f"{j}, t={self.schedule.times[producer]}) before it "
                    f"completes at cycle {available}; violated {edge_text}"
                )
        try:
            return self.values[(producer, j)]
        except KeyError:
            raise SimulationError(
                f"op {consumer} at cycle {use_time} requested the value of "
                f"op {producer} iteration {j} before it executed"
            ) from None

    # -- one operation instance ---------------------------------------------

    def _execute(self, op: int, k: int, issue: int, commits: List) -> None:
        operation = self.graph.operation(op)
        opcode = operation.opcode
        operands = operation.attrs.get("operands", ())
        if opcode == "load":
            array = self.state.arrays[operation.attrs["array"]]
            # Touch the address operand so readiness is checked.
            self._operand(operands[0], k, issue, op)
            if operation.attrs.get("indirect"):
                position = int(self._operand(operands[1], k, issue, op))
            else:
                position = k + operation.attrs["offset"]
            self.values[(op, k)] = array[position]
            return
        if opcode == "store":
            address, value = operands[0], operands[1]
            self._operand(address, k, issue, op)
            committed = self._operand(value, k, issue, op)
            cursor = 2
            if operation.attrs.get("indirect"):
                position = int(self._operand(operands[cursor], k, issue, op))
                cursor += 1
            else:
                position = k + operation.attrs["offset"]
            take = True
            if operation.attrs.get("predicated"):
                take = bool(self._operand(operands[cursor], k, issue, op))
            if take:
                commits.append(
                    (
                        issue + self.graph.latency(op),
                        operation.attrs["array"],
                        position,
                        committed,
                    )
                )
            self.values[(op, k)] = None
            return
        if opcode == "brtop":
            self.values[(op, k)] = None
            return
        if opcode == "limm":
            self.values[(op, k)] = operands[0][1]
            return
        if operation.attrs.get("role") in ("address", "ivar"):
            # Address/induction recurrences produce the iteration index.
            self._operand(operands[0], k, issue, op)
            self.values[(op, k)] = float(k + 1)
            return
        args = [self._operand(d, k, issue, op) for d in operands]
        if opcode == "select":
            predicate, if_true, if_false = args
            self.values[(op, k)] = if_true if bool(predicate) else if_false
        elif opcode == "pnot":
            self.values[(op, k)] = not bool(args[0])
        elif opcode in _COMPARE:
            self.values[(op, k)] = _COMPARE[opcode](args[0], args[1])
        elif opcode in _PREDICATE:
            self.values[(op, k)] = _PREDICATE[opcode](args[0], args[1])
        elif opcode in _UNARY:
            self.values[(op, k)] = _UNARY[opcode](args[0])
        elif opcode in _ARITH:
            self.values[(op, k)] = _ARITH[opcode](args[0], args[1])
        else:
            raise SimulationError(f"no semantics for opcode {opcode!r}")

    # -- the run -------------------------------------------------------------

    def run(self) -> LoopState:
        """Play every operation instance in global time order."""
        events: List[Tuple[int, int, int, int]] = []
        for op in range(self.graph.n_ops):
            if self.graph.operation(op).is_pseudo:
                continue
            t = self.schedule.times[op]
            for k in range(self.n):
                events.append((k * self.schedule.ii + t, k, op))
        # Stable order: by cycle, then iteration, then operation index.
        events.sort()
        pending_commits: List[Tuple[int, str, int, float]] = []
        for issue, k, op in events:
            # Commit every store due at or before this cycle first: a load
            # sampling at cycle t sees stores committed at cycle <= t.
            if pending_commits:
                due = [c for c in pending_commits if c[0] <= issue]
                if due:
                    due.sort()
                    for _, array, index, value in due:
                        self.state.arrays[array][index] = value
                    pending_commits = [c for c in pending_commits if c[0] > issue]
            self._execute(op, k, issue, pending_commits)
        pending_commits.sort()
        for _, array, index, value in pending_commits:
            self.state.arrays[array][index] = value
        # WHILE-loops: find the exit iteration from the alive predicate.
        # Iterations at and beyond it executed speculatively — their
        # stores were suppressed by the alive guard, and their scalar
        # values must not be written back.
        last = self.n
        alive = self.lowered.alive_op
        if alive is not None:
            for k in range(self.n):
                if not self.values[(alive, k)]:
                    last = k
                    break
        # Write back the final value of every assigned scalar.
        if last > 0:
            for name, op in self.lowered.final_defs.items():
                self.state.scalars[name] = self.values[(op, last - 1)]
        return self.state


def run_pipelined(
    lowered: LoweredLoop,
    schedule: Schedule,
    state: LoopState,
    n: int,
    check_ready: bool = True,
) -> LoopState:
    """Execute ``n`` iterations of ``schedule``, mutating and returning state.

    With ``check_ready=True`` (the default) every operand read asserts the
    producing instance has completed — a dynamic flow-dependence check on
    top of the value-level equivalence the caller compares.
    """
    if n < 0:
        raise ValueError(f"iteration count must be >= 0, got {n}")
    return _Executor(lowered, schedule, state, n, check_ready).run()
