"""Execution substrate: sequential reference and pipelined simulation.

The modulo scheduler's output is verified *end-to-end* by executing it:

* :mod:`repro.simulator.state` — the machine-visible state: arrays (with a
  halo for ``i +/- c`` subscripts) and scalars;
* :mod:`repro.simulator.reference` — a direct interpreter of the loop AST,
  the independent oracle;
* :mod:`repro.simulator.pipeline` — executes a schedule with iteration
  ``k`` issuing at ``k * II + time(op)``: loads sample memory at their
  issue cycle and stores commit one cycle later, in global time order, so
  a missing or mis-distanced memory dependence edge produces a *different
  answer* rather than going unnoticed;
* :func:`check_equivalence` — runs both and compares the final state.
"""

from repro.simulator.state import ArrayStore, LoopState, make_initial_state
from repro.simulator.reference import run_reference
from repro.simulator.pipeline import run_pipelined, SimulationError
from repro.simulator.check import check_equivalence, EquivalenceReport

__all__ = [
    "ArrayStore",
    "LoopState",
    "make_initial_state",
    "run_reference",
    "run_pipelined",
    "SimulationError",
    "check_equivalence",
    "EquivalenceReport",
]
