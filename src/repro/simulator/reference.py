"""Sequential reference executor: interprets the loop AST directly.

This is the oracle for the end-to-end check.  It shares no code with the
lowering pass or the pipelined executor — it walks the original AST one
iteration at a time, so a bug anywhere in IF-conversion, lowering,
dependence analysis, scheduling or pipelined execution shows up as a state
mismatch.
"""

from __future__ import annotations

import math
from typing import Union

from repro.loopir.ast import (
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    If,
    IndirectRef,
    IndirectStore,
    IVar,
    Loop,
    NotOp,
    Num,
    Scalar,
    Store,
)
from repro.simulator.state import LoopState


def _eval_expr(expr, state: LoopState, i: int) -> float:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Scalar):
        try:
            return state.scalars[expr.name]
        except KeyError:
            raise KeyError(
                f"scalar {expr.name!r} read but absent from the state"
            ) from None
    if isinstance(expr, IVar):
        return float(i)
    if isinstance(expr, ArrayRef):
        return state.arrays[expr.array][i + expr.offset]
    if isinstance(expr, IndirectRef):
        index = int(_eval_expr(expr.index, state, i))
        return state.arrays[expr.array][index]
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, state, i)
        right = _eval_expr(expr.right, state, i)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            # IEEE semantics (the hardware's): x/0 is inf/NaN, not a trap.
            if right == 0.0:
                return math.nan if left == 0.0 else math.copysign(math.inf, left)
            return left / right
        raise ValueError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Call):
        args = [_eval_expr(a, state, i) for a in expr.args]
        if expr.fn == "sqrt":
            # IEEE semantics: sqrt of a negative value is NaN, not a trap.
            return math.sqrt(args[0]) if args[0] >= 0.0 else math.nan
        if expr.fn == "abs":
            return abs(args[0])
        if expr.fn == "neg":
            return -args[0]
        if expr.fn == "min":
            return min(args)
        if expr.fn == "max":
            return max(args)
        raise ValueError(f"unknown intrinsic {expr.fn!r}")
    raise TypeError(f"cannot evaluate {expr!r}")


def _eval_cond(cond, state: LoopState, i: int) -> bool:
    if isinstance(cond, Compare):
        left = _eval_expr(cond.left, state, i)
        right = _eval_expr(cond.right, state, i)
        return {
            "<": left < right,
            "<=": left <= right,
            "==": left == right,
            "!=": left != right,
            ">": left > right,
            ">=": left >= right,
        }[cond.op]
    if isinstance(cond, BoolOp):
        left = _eval_cond(cond.left, state, i)
        right = _eval_cond(cond.right, state, i)
        return (left and right) if cond.op == "and" else (left or right)
    if isinstance(cond, NotOp):
        return not _eval_cond(cond.operand, state, i)
    raise TypeError(f"cannot evaluate condition {cond!r}")


def _run_statement(statement, state: LoopState, i: int) -> None:
    if isinstance(statement, Assign):
        state.scalars[statement.target] = _eval_expr(statement.value, state, i)
    elif isinstance(statement, Store):
        state.arrays[statement.array][i + statement.offset] = _eval_expr(
            statement.value, state, i
        )
    elif isinstance(statement, IndirectStore):
        index = int(_eval_expr(statement.index, state, i))
        state.arrays[statement.array][index] = _eval_expr(
            statement.value, state, i
        )
    elif isinstance(statement, If):
        branch = (
            statement.then_body
            if _eval_cond(statement.cond, state, i)
            else statement.else_body
        )
        for inner in branch:
            _run_statement(inner, state, i)
    else:
        raise TypeError(f"cannot execute {statement!r}")


def run_reference(loop: Loop, state: LoopState, n: int) -> LoopState:
    """Execute up to ``n`` iterations sequentially (early exit for
    WHILE-loops), mutating and returning the state."""
    for i in range(n):
        if loop.while_cond is not None and not _eval_cond(
            loop.while_cond, state, i
        ):
            break
        for statement in loop.body:
            _run_statement(statement, state, i)
    return state
