"""End-to-end equivalence: pipelined execution versus the sequential oracle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.schedule import Schedule
from repro.loopir.lower import LoweredLoop
from repro.simulator.pipeline import run_pipelined
from repro.simulator.reference import run_reference
from repro.simulator.state import LoopState, make_initial_state


@dataclass
class EquivalenceReport:
    """Result of one equivalence check."""

    loop_name: str
    n: int
    ii: int
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the two executions produced identical state."""
        return not self.problems

    def describe(self) -> str:
        """One-line verdict plus the first mismatches, if any."""
        status = "OK" if self.ok else f"{len(self.problems)} mismatches"
        head = f"{self.loop_name}: n={self.n}, II={self.ii}: {status}"
        if self.ok:
            return head
        return head + "\n  " + "\n  ".join(self.problems[:20])


def check_equivalence(
    lowered: LoweredLoop,
    schedule: Schedule,
    n: int = 40,
    seed: int = 0,
    state: Optional[LoopState] = None,
) -> EquivalenceReport:
    """Run both executors from the same initial state and diff the results.

    The initial state is random but seeded (see
    :func:`repro.simulator.state.make_initial_state`) unless one is
    supplied; the supplied state is not mutated.
    """
    if state is None:
        state = make_initial_state(lowered, n, seed)
    reference = run_reference(lowered.loop, state.copy(), n)
    pipelined = run_pipelined(lowered, schedule, state.copy(), n)
    return EquivalenceReport(
        loop_name=lowered.loop.name,
        n=n,
        ii=schedule.ii,
        problems=reference.differences(pipelined),
    )
