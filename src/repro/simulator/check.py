"""End-to-end equivalence: pipelined execution versus the sequential oracle.

Two failure modes are distinguished and reported through the shared
diagnostics framework (:mod:`repro.check.diagnostics`):

* ``SIM001`` — the executions both completed but final state differs
  (a value-level mismatch: wrong array cell, wrong scalar);
* ``SIM002`` — the pipelined executor aborted with a dynamic dependence
  violation (an operand read before its producer completed), whose
  message names the offending operations, the cycle, and the violated
  edge's distance/delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.schedule import Schedule
from repro.loopir.lower import LoweredLoop
from repro.simulator.pipeline import SimulationError, run_pipelined
from repro.simulator.reference import run_reference
from repro.simulator.state import LoopState, make_initial_state


@dataclass
class EquivalenceReport:
    """Result of one equivalence check.

    ``problems`` lists value-level state mismatches; ``error`` carries
    the :class:`SimulationError` message when the pipelined execution
    aborted before state could be compared.
    """

    loop_name: str
    n: int
    ii: int
    problems: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the two executions produced identical state."""
        return not self.problems and self.error is None

    def diagnostics(self):
        """The findings as a :class:`~repro.check.Diagnostics` set."""
        from repro.check import Diagnostics

        diags = Diagnostics()
        if self.error is not None:
            diags.add(
                "SIM002", self.error, unit=self.loop_name, n=self.n,
                ii=self.ii,
            )
        for problem in self.problems:
            diags.add(
                "SIM001", problem, unit=self.loop_name, n=self.n,
                ii=self.ii,
            )
        return diags

    def describe(self) -> str:
        """One-line verdict plus the rendered findings, if any."""
        if self.ok:
            status = "OK"
        elif self.error is not None:
            status = "simulation aborted"
        else:
            status = f"{len(self.problems)} mismatches"
        head = f"{self.loop_name}: n={self.n}, II={self.ii}: {status}"
        if self.ok:
            return head
        return head + "\n" + self.diagnostics().render(limit=20)


def check_equivalence(
    lowered: LoweredLoop,
    schedule: Schedule,
    n: int = 40,
    seed: int = 0,
    state: Optional[LoopState] = None,
    check_ready: bool = True,
) -> EquivalenceReport:
    """Run both executors from the same initial state and diff the results.

    The initial state is random but seeded (see
    :func:`repro.simulator.state.make_initial_state`) unless one is
    supplied; the supplied state is not mutated.  A dynamic dependence
    violation in the pipelined run becomes the report's ``error`` rather
    than propagating (``check_ready=False`` disables that detector, so
    an edge violation shows up as state mismatches instead).
    """
    if state is None:
        state = make_initial_state(lowered, n, seed)
    reference = run_reference(lowered.loop, state.copy(), n)
    try:
        pipelined = run_pipelined(
            lowered, schedule, state.copy(), n, check_ready=check_ready
        )
    except SimulationError as exc:
        return EquivalenceReport(
            loop_name=lowered.loop.name, n=n, ii=schedule.ii, error=str(exc)
        )
    return EquivalenceReport(
        loop_name=lowered.loop.name,
        n=n,
        ii=schedule.ii,
        problems=reference.differences(pipelined),
    )
