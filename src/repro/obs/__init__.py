"""Unified observability: spans, metrics, and trace exporters.

See ``docs/OBSERVABILITY.md`` for the span model, metric names, the
``repro.obs.v1`` record schema, and the Perfetto how-to.

* :class:`repro.obs.context.ObsContext` — one run's collector: nested
  ``span()``s plus a counter/gauge/histogram registry, with views over
  the older :class:`~repro.core.trace.PhaseTimer` and
  :class:`~repro.core.stats.Counters` fragments;
* :data:`repro.obs.context.NULL_OBS` — the no-op context every
  instrumented call site defaults to (``obs = obs or NULL_OBS``);
* :mod:`repro.obs.exporters` — JSONL and Chrome-trace writers;
* :mod:`repro.obs.schema` — the ``repro.obs.v1`` record schema and its
  validator (also run by CI via ``python -m repro.obs.check``).
"""

from repro.obs.context import (
    Histogram,
    MetricsRegistry,
    NULL_OBS,
    NullObsContext,
    ObsContext,
    Span,
)
from repro.obs.exporters import (
    FORMATS,
    to_chrome_trace,
    write_chrome_trace,
    write_export,
    write_jsonl,
)
from repro.obs.schema import (
    FORMAT,
    records_from_snapshot,
    validate_jsonl,
    validate_record,
    validate_records,
)

__all__ = [
    "FORMAT",
    "FORMATS",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObsContext",
    "ObsContext",
    "Span",
    "records_from_snapshot",
    "to_chrome_trace",
    "validate_jsonl",
    "validate_record",
    "validate_records",
    "write_chrome_trace",
    "write_export",
    "write_jsonl",
]
