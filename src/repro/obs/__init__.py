"""Unified observability: spans, metrics, exporters, and the observatory.

See ``docs/OBSERVABILITY.md`` for the span model, metric names, the
``repro.obs.v2`` record schema, and the observatory workflow.

* :class:`repro.obs.context.ObsContext` — one run's collector: nested
  ``span()``s plus a counter/gauge/histogram registry, with views over
  the older :class:`~repro.core.trace.PhaseTimer` and
  :class:`~repro.core.stats.Counters` fragments;
* :data:`repro.obs.context.NULL_OBS` — the no-op context every
  instrumented call site defaults to (``obs = obs or NULL_OBS``);
* :mod:`repro.obs.exporters` — JSONL and Chrome-trace writers (labeled
  worker lanes);
* :mod:`repro.obs.schema` — the ``repro.obs.v2`` record schema, its
  validator, and the back-compat v1 reader (also run by CI via
  ``python -m repro.obs.check``);
* :mod:`repro.obs.store` — the SQLite run store every export ingests
  into (:class:`~repro.obs.store.RunStore`);
* :mod:`repro.obs.analyze` — phase profiles, top-loop attribution,
  run-to-run diffs and baseline budgets over the store;
* :mod:`repro.obs.flame` — collapsed-stack flamegraph export;
* :mod:`repro.obs.profile` — the opt-in sampling profiler
  (``--profile``) for engine workers;
* :mod:`repro.obs.cli` — the ``repro obs`` command family.
"""

from repro.obs.context import (
    Histogram,
    MetricsRegistry,
    NULL_OBS,
    NullObsContext,
    ObsContext,
    Span,
)
from repro.obs.exporters import (
    FORMATS,
    lane_label,
    to_chrome_trace,
    write_chrome_trace,
    write_export,
    write_jsonl,
)
from repro.obs.schema import (
    FORMAT,
    FORMAT_V1,
    FORMAT_V2,
    KNOWN_FORMATS,
    content_record_count,
    parse_jsonl,
    records_from_snapshot,
    validate_jsonl,
    validate_record,
    validate_records,
    worker_lanes,
)

__all__ = [
    "FORMAT",
    "FORMAT_V1",
    "FORMAT_V2",
    "FORMATS",
    "KNOWN_FORMATS",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObsContext",
    "ObsContext",
    "Span",
    "content_record_count",
    "lane_label",
    "parse_jsonl",
    "records_from_snapshot",
    "to_chrome_trace",
    "validate_jsonl",
    "validate_record",
    "validate_records",
    "worker_lanes",
    "write_chrome_trace",
    "write_export",
    "write_jsonl",
]
