"""The observability context: structured spans plus a metrics registry.

Rau's evaluation is *empirical* — Table 4 counts algorithm steps, Table 3
and Figure 6 measure the scheduler at work — so the reproduction needs
first-class telemetry.  An :class:`ObsContext` is one run's collector:

* **spans** — nested, timed regions (``with obs.span("scheduling")``)
  that form a tree: every span records its parent, a wall-clock start,
  a monotonic duration, and free-form attributes (the candidate II, the
  budget burn-down of an attempt, ...);
* **metrics** — a registry of named counters, gauges and histograms.
  Only *deterministic* quantities go in here (algorithm step counts,
  IIs, attempt sizes), never wall-clock time, so two runs of the same
  corpus produce byte-identical metric snapshots regardless of ``jobs``;
* **views over the older fragments** — :meth:`ObsContext.timer` returns
  a :class:`repro.core.trace.PhaseTimer` whose phases additionally open
  spans, and :meth:`ObsContext.absorb_counters` folds a
  :class:`repro.core.stats.Counters` snapshot into the registry, so the
  pre-existing mechanisms feed the unified record instead of competing
  with it.

Process safety: a worker builds its own ``ObsContext``, serializes it
with :meth:`ObsContext.to_dict` (plain JSON types only), and the parent
merges it with :meth:`ObsContext.absorb`, which re-assigns span ids and
re-parents the worker's root spans — exactly the JSON round-trip the
corpus engine already uses for evaluation payloads.

When observability is off, every instrumented call site receives
:data:`NULL_OBS`, whose ``span``/``counter``/``histogram`` return
preallocated do-nothing singletons — no allocation, no branching in the
caller, unmeasurable overhead (asserted by ``tests/obs/test_context.py``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.stats import Counters
from repro.core.trace import PhaseTimer

#: Attribute/metric values must be JSON-representable scalars.
_SCALARS = (str, int, float, bool, type(None))


@dataclass
class Span:
    """One finished (or in-flight) timed region of the pipeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float  # wall-clock (epoch seconds): comparable across processes
    dur: float = 0.0  # monotonic-clock duration, seconds
    pid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, key: str, value) -> None:
        """Attach an attribute (must be a JSON scalar)."""
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"span attribute {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the shape the exporters consume)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "dur": self.dur,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


@dataclass
class Histogram:
    """Mergeable summary of an observed distribution (no raw samples).

    Storing only ``count/total/min/max`` keeps histograms order-independent
    under merge, which is what makes the metric snapshot byte-identical
    for any ``jobs`` fan-out.
    """

    count: int = 0
    total: float = 0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold another histogram's dict form into this one."""
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["total"]
        self.min = (
            other["min"] if self.min is None else min(self.min, other["min"])
        )
        self.max = (
            other["max"] if self.max is None else max(self.max, other["max"])
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class _CounterHandle:
    """Write handle for one named counter."""

    __slots__ = ("_counters", "_name")

    def __init__(self, counters: Dict[str, float], name: str) -> None:
        self._counters = counters
        self._name = name

    def inc(self, amount=1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self._counters[self._name] = self._counters.get(self._name, 0) + amount


class _GaugeHandle:
    """Write handle for one named gauge (last write wins)."""

    __slots__ = ("_gauges", "_name")

    def __init__(self, gauges: Dict[str, float], name: str) -> None:
        self._gauges = gauges
        self._name = name

    def set(self, value) -> None:
        """Record the gauge's current value."""
        self._gauges[self._name] = value


class MetricsRegistry:
    """Named counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> _CounterHandle:
        """A handle that increments ``name``."""
        return _CounterHandle(self.counters, name)

    def gauge(self, name: str) -> _GaugeHandle:
        """A handle that sets ``name``."""
        return _GaugeHandle(self.gauges, name)

    def histogram(self, name: str) -> Histogram:
        """The (created-on-demand) histogram called ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(data)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic (sorted, JSON-compatible) copy of every metric."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
        }


class _SpanPhaseTimer(PhaseTimer):
    """A :class:`PhaseTimer` view over an :class:`ObsContext`.

    Each ``phase(name)`` both charges seconds to the timer (preserving the
    engine's timing dicts exactly) and opens a span named ``name`` — one
    mechanism observed two ways, not two mechanisms.
    """

    def __init__(self, ctx: "ObsContext") -> None:
        super().__init__()
        self._ctx = ctx

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as both a phase charge and a span."""
        with self._ctx.span(name):
            with super().phase(name):
                yield


class ObsContext:
    """Collector for one observed run (spans + metrics).

    The context is *not* thread-safe; the pipeline uses one per process
    (the corpus engine gives every worker its own and merges snapshots).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self._next_id = 1
        self._pid = os.getpid()

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; attributes may be passed now or via ``set``."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=time.time(),
            pid=self._pid,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.dur = time.perf_counter() - started
            self._stack.pop()
            self.spans.append(span)

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> _CounterHandle:
        """A write handle for the counter called ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> _GaugeHandle:
        """A write handle for the gauge called ``name``."""
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``."""
        return self.metrics.histogram(name)

    # -- views over the older instrumentation fragments ------------------

    def timer(self) -> PhaseTimer:
        """A PhaseTimer whose phases also open spans on this context."""
        return _SpanPhaseTimer(self)

    def absorb_counters(self, counters: Counters, prefix: str = "algo.") -> None:
        """Fold a :class:`Counters` snapshot into the metric counters."""
        for name, value in counters.snapshot().items():
            self.counter(prefix + name).inc(value)

    # -- process-portable snapshots --------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot of every span and metric."""
        return {
            "spans": [span.to_dict() for span in self.spans],
            "metrics": self.metrics.snapshot(),
        }

    def absorb(
        self,
        snapshot: Optional[Dict[str, Any]],
        parent: Optional[Span] = None,
        **extra_attrs,
    ) -> None:
        """Merge another context's :meth:`to_dict` into this one.

        Span ids are re-assigned (worker contexts all start at id 1) and
        the snapshot's *root* spans are re-parented under ``parent`` (or
        the currently open span, if any).  ``extra_attrs`` are attached
        to the re-parented roots, which is how the engine labels a
        worker's spans with the loop they belong to.
        """
        if not snapshot:
            return
        if parent is None and self._stack:
            parent = self._stack[-1]
        id_map: Dict[int, int] = {}
        for data in snapshot.get("spans", ()):
            id_map[data["span_id"]] = self._next_id
            self._next_id += 1
        for data in snapshot.get("spans", ()):
            old_parent = data.get("parent_id")
            attrs = dict(data.get("attrs", {}))
            if old_parent is None:
                parent_id = parent.span_id if parent is not None else None
                attrs.update(extra_attrs)
            else:
                parent_id = id_map[old_parent]
            self.spans.append(
                Span(
                    name=data["name"],
                    span_id=id_map[data["span_id"]],
                    parent_id=parent_id,
                    start=data["start"],
                    dur=data["dur"],
                    pid=data.get("pid", 0),
                    attrs=attrs,
                )
            )
        self.metrics.merge(snapshot.get("metrics", {}))


# ----------------------------------------------------------------------
# The disabled context: preallocated no-ops all the way down.


class _NullSpan:
    """Inert span: accepts attributes, records nothing."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


class _NullMetric:
    """Inert counter/gauge/histogram handle."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        """Discard the increment."""

    def set(self, value) -> None:
        """Discard the value."""

    def observe(self, value) -> None:
        """Discard the sample."""


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullObsContext:
    """Do-nothing stand-in used whenever observability is disabled.

    Every method returns a preallocated singleton, so instrumented code
    pays one attribute lookup and one call — nothing else.  The pipeline
    treats ``obs or NULL_OBS`` as the universal entry idiom.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """A reusable inert context manager."""
        return _NULL_SPAN

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def timer(self) -> PhaseTimer:
        """A plain PhaseTimer (timing stays on even when tracing is off)."""
        return PhaseTimer()

    def absorb_counters(self, counters: Counters, prefix: str = "algo.") -> None:
        """Discard the counters."""

    def absorb(self, snapshot, parent=None, **extra_attrs) -> None:
        """Discard the snapshot."""

    def to_dict(self) -> Dict[str, Any]:
        """An empty snapshot."""
        return {"spans": [], "metrics": MetricsRegistry().snapshot()}


#: The shared disabled context.
NULL_OBS = NullObsContext()
