"""Exporters: JSONL (``repro.obs.v2``) and Chrome trace-event format.

Both exporters consume the same ``ObsContext.to_dict()`` snapshot.  The
JSONL form is the archival/diffable one (schema in
:mod:`repro.obs.schema`, ingestible by :mod:`repro.obs.store`); the
Chrome form loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` for a visual timeline of the whole corpus run,
workers included.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.schema import records_from_snapshot, worker_lanes

#: The ``--obs-format`` spellings the CLI accepts.
FORMATS = ("jsonl", "chrome")


def write_jsonl(snapshot: Dict[str, Any], path, run=None) -> Path:
    """Write a snapshot as ``repro.obs.v2`` JSON Lines; returns the path."""
    path = Path(path)
    records = records_from_snapshot(snapshot, run=run)
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    return path


def lane_label(lane: int, pid: int) -> str:
    """Human-readable name of one worker lane."""
    if lane == 0:
        return f"engine (pid {pid})"
    return f"worker {lane} (pid {pid})"


def to_chrome_trace(
    snapshot: Dict[str, Any], run: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Convert a snapshot to a Chrome trace-event document.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; wall-clock starts are used, so spans from different
    worker processes line up on one timeline.  All events share one
    trace-level pid (the run) and fan out over *stable worker-lane
    tids* — lane 0 is the engine process, lanes 1..N the workers in
    sorted-pid order — with ``process_name``/``thread_name`` metadata
    events, so a multi-worker trace renders as labeled lanes instead of
    anonymous recycled pids.  Metrics ride along in ``otherData`` (the
    trace-event format has no timeless metric notion).
    """
    spans = snapshot.get("spans", ())
    lanes = worker_lanes(spans)
    root_pid = next((pid for pid, lane in lanes.items() if lane == 0), 0)
    events = []
    for span in spans:
        args = {k: v for k, v in span.get("attrs", {}).items()}
        args["span_id"] = span["span_id"]
        args["pid"] = span["pid"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": span["dur"] * 1e6,
                "pid": root_pid,
                "tid": lanes.get(span.get("pid", 0), 0),
                "cat": "repro",
                "args": args,
            }
        )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": root_pid,
            "tid": 0,
            "args": {"name": "repro run"},
        }
    )
    for pid, lane in sorted(lanes.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": root_pid,
                "tid": lane,
                "args": {"name": lane_label(lane, pid)},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run": dict(run or {}),
            "metrics": snapshot.get("metrics", {}),
        },
    }


def write_chrome_trace(snapshot: Dict[str, Any], path, run=None) -> Path:
    """Write a snapshot as a Chrome/Perfetto trace file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(snapshot, run=run)))
    return path


def write_export(snapshot: Dict[str, Any], path, fmt: str, run=None) -> Path:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "jsonl":
        return write_jsonl(snapshot, path, run=run)
    if fmt == "chrome":
        return write_chrome_trace(snapshot, path, run=run)
    raise ValueError(
        f"unknown obs format {fmt!r}; choose from {', '.join(FORMATS)}"
    )
