"""Exporters: JSONL (``repro.obs.v1``) and Chrome trace-event format.

Both exporters consume the same ``ObsContext.to_dict()`` snapshot.  The
JSONL form is the archival/diffable one (schema in
:mod:`repro.obs.schema`); the Chrome form loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` for a visual timeline
of the whole corpus run, workers included.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.schema import records_from_snapshot

#: The ``--obs-format`` spellings the CLI accepts.
FORMATS = ("jsonl", "chrome")


def write_jsonl(snapshot: Dict[str, Any], path, run=None) -> Path:
    """Write a snapshot as ``repro.obs.v1`` JSON Lines; returns the path."""
    path = Path(path)
    records = records_from_snapshot(snapshot, run=run)
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    return path


def to_chrome_trace(
    snapshot: Dict[str, Any], run: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Convert a snapshot to a Chrome trace-event document.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; wall-clock starts are used, so spans from different
    worker processes line up on one timeline.  Metrics ride along in
    ``otherData`` (the trace-event format has no timeless metric notion).
    """
    events = []
    pids = set()
    for span in snapshot.get("spans", ()):
        pids.add(span["pid"])
        args = {k: v for k, v in span.get("attrs", {}).items()}
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": span["dur"] * 1e6,
                "pid": span["pid"],
                "tid": span["pid"],
                "cat": "repro",
                "args": args,
            }
        )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"repro worker {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run": dict(run or {}),
            "metrics": snapshot.get("metrics", {}),
        },
    }


def write_chrome_trace(snapshot: Dict[str, Any], path, run=None) -> Path:
    """Write a snapshot as a Chrome/Perfetto trace file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(snapshot, run=run)))
    return path


def write_export(snapshot: Dict[str, Any], path, fmt: str, run=None) -> Path:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "jsonl":
        return write_jsonl(snapshot, path, run=run)
    if fmt == "chrome":
        return write_chrome_trace(snapshot, path, run=run)
    raise ValueError(
        f"unknown obs format {fmt!r}; choose from {', '.join(FORMATS)}"
    )
