"""The scheduling observatory's persistent run store (SQLite).

Every export the pipeline produces — ``repro.obs.v1``/``v2`` JSONL
traces, engine timing reports (``repro.engine-timing.v1``), append-only
journals (``repro.journal.v1``), and ``BENCH_*.json`` trajectories — is
write-only on its own: you can validate it, but not aggregate two runs,
diff them, or ask "which loops got slower".  :class:`RunStore` ingests
all of them into one normalized SQLite database so those questions
become queries:

``runs``
    One row per ingested run.  The ``run_id`` is content-addressed — the
    SHA-256 of the canonical record stream — so ingesting the same
    export twice is a no-op (dedupe by construction), while two *runs*
    of the same corpus (whose span clocks differ) are distinct rows.

``spans``
    Every span, with its **self time** precomputed at ingest: the
    span's duration minus the summed durations of its direct children —
    the quantity flamegraphs and per-phase attribution are built on.
    Each span also resolves its *owning loop* (the nearest ancestor
    ``loop`` span's name) so per-loop attribution needs no tree walks
    at query time.

``metrics``
    The deterministic counter/gauge/histogram registry, one row per
    metric (histogram summaries stored as JSON).

``loops``
    Per-loop outcomes merged from every source that knows something
    about the loop: the timing report (wall seconds, per-phase seconds,
    cache hit/resume flags, failures), the span tree (achieved II, MII,
    attempts, displacement/forced counts), and the journal (ok/failure
    records).

``profile_samples``
    Collapsed call stacks from the sampling profiler
    (:mod:`repro.obs.profile`), when the run was profiled.

``bench_runs``
    ``BENCH_*.json`` trajectory entries (one row per benchmark run),
    keyed by (bench, unix_time) so re-ingesting a trajectory file only
    adds the new tail.

The derived views — phase profiles with p50/p95/p99, top-N loop
attribution, statistical run-to-run diffs — live in
:mod:`repro.obs.analyze`; the flamegraph exporter in
:mod:`repro.obs.flame`; the CLI family (``repro obs ingest|report|
diff|top|flame``) in :mod:`repro.obs.cli`.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.schema import (
    KNOWN_FORMATS,
    parse_jsonl,
    records_from_snapshot,
    validate_records,
    worker_lanes,
)

#: Engine timing-report format marker (kept in sync with analysis.engine).
_TIMING_FORMAT = "repro.engine-timing.v1"
_JOURNAL_FORMAT = "repro.journal.v1"

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    seq         INTEGER,
    source      TEXT,
    format      TEXT,
    run_json    TEXT NOT NULL DEFAULT '{}',
    n_spans     INTEGER NOT NULL DEFAULT 0,
    n_loops     INTEGER NOT NULL DEFAULT 0,
    n_failures  INTEGER NOT NULL DEFAULT 0,
    wall_seconds REAL,
    cache_hits  INTEGER,
    cache_misses INTEGER,
    resilience_json TEXT,
    counters_json TEXT
);
CREATE TABLE IF NOT EXISTS spans (
    run_id    TEXT NOT NULL,
    span_id   INTEGER NOT NULL,
    parent_id INTEGER,
    name      TEXT NOT NULL,
    start     REAL NOT NULL,
    dur       REAL NOT NULL,
    self_dur  REAL NOT NULL,
    pid       INTEGER NOT NULL,
    tid       INTEGER NOT NULL,
    loop      TEXT,
    attrs_json TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, span_id)
);
CREATE INDEX IF NOT EXISTS spans_by_name ON spans (run_id, name);
CREATE TABLE IF NOT EXISTS metrics (
    run_id    TEXT NOT NULL,
    kind      TEXT NOT NULL,
    name      TEXT NOT NULL,
    value     REAL,
    value_json TEXT,
    PRIMARY KEY (run_id, kind, name)
);
CREATE TABLE IF NOT EXISTS loops (
    run_id    TEXT NOT NULL,
    idx       INTEGER NOT NULL,
    name      TEXT,
    key       TEXT,
    cache_hit INTEGER,
    resumed   INTEGER,
    ok        INTEGER,
    wall      REAL,
    seconds_json TEXT,
    ii        INTEGER,
    mii       INTEGER,
    attempts  INTEGER,
    displaced INTEGER,
    forced    INTEGER,
    degraded  TEXT,
    failure_kind TEXT,
    failure_phase TEXT,
    PRIMARY KEY (run_id, idx)
);
CREATE TABLE IF NOT EXISTS profile_samples (
    run_id TEXT NOT NULL,
    stack  TEXT NOT NULL,
    count  INTEGER NOT NULL,
    PRIMARY KEY (run_id, stack)
);
CREATE TABLE IF NOT EXISTS bench_runs (
    bench     TEXT NOT NULL,
    unix_time REAL NOT NULL,
    source    TEXT,
    payload_json TEXT NOT NULL,
    PRIMARY KEY (bench, unix_time)
);
"""


def run_id_for_records(records: Sequence[Any]) -> str:
    """Content-addressed run id: SHA-256 of the canonical record stream.

    Stable across processes and re-serialization (sorted keys, compact
    separators), so the same export always lands on the same id and the
    store dedupes it; any semantic difference — a span's clock included —
    yields a new id.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def run_id_for_texts(texts: Iterable[str]) -> str:
    """Content-addressed run id over raw artifact texts (ingest grouping)."""
    digest = hashlib.sha256()
    for text in texts:
        digest.update(text.encode("utf-8", "replace"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingest call."""

    run_id: str
    created: bool
    kind: str
    source: str = ""

    def describe(self) -> str:
        verb = "ingested" if self.created else "already present (deduped)"
        return f"{self.kind} {self.source or '<memory>'}: run {self.run_id} {verb}"


class StoreError(ValueError):
    """A file could not be ingested or a run could not be resolved."""


class RunStore:
    """SQLite-backed store over every observability artifact of a repo.

    Open with a filesystem path (created on demand) or ``":memory:"``.
    All writes are transactional per ingest call; the store is safe to
    re-open concurrently for reads.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._db = sqlite3.connect(self.path)
            self._db.row_factory = sqlite3.Row
            self._db.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            raise StoreError(f"{self.path}: not a usable store ({exc})")
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._db.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
        elif version != _SCHEMA_VERSION:
            raise StoreError(
                f"{self.path}: store schema version {version}, "
                f"this build reads {_SCHEMA_VERSION}"
            )
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run bookkeeping ------------------------------------------------

    def has_run(self, run_id: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return row is not None

    def runs(self) -> List[Dict[str, Any]]:
        """Every run, oldest first, as plain dicts."""
        rows = self._db.execute(
            "SELECT * FROM runs ORDER BY seq"
        ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["run"] = json.loads(record.pop("run_json") or "{}")
            record["resilience"] = json.loads(
                record.pop("resilience_json") or "null"
            )
            record["counters"] = json.loads(
                record.pop("counters_json") or "null"
            )
            out.append(record)
        return out

    def resolve_run(self, ref: Optional[str] = None) -> str:
        """Resolve a run reference to a run id.

        ``None``, ``""`` and ``"latest"`` mean the most recently ingested
        run; otherwise ``ref`` must be a run id or a unique prefix.
        """
        if not ref or ref == "latest":
            row = self._db.execute(
                "SELECT run_id FROM runs ORDER BY seq DESC LIMIT 1"
            ).fetchone()
            if row is None:
                raise StoreError(f"{self.path}: store holds no runs")
            return row["run_id"]
        rows = self._db.execute(
            "SELECT run_id FROM runs WHERE run_id LIKE ? ORDER BY seq",
            (ref + "%",),
        ).fetchall()
        if not rows:
            raise StoreError(f"no run matches {ref!r}")
        if len(rows) > 1:
            matches = ", ".join(r["run_id"] for r in rows)
            raise StoreError(f"run reference {ref!r} is ambiguous: {matches}")
        return rows[0]["run_id"]

    def _create_run(self, run_id: str, source: str, fmt: str) -> None:
        seq = self._db.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM runs"
        ).fetchone()[0]
        self._db.execute(
            "INSERT INTO runs (run_id, seq, source, format) VALUES (?,?,?,?)",
            (run_id, seq, source, fmt),
        )

    def _ensure_run(self, run_id: str, source: str, fmt: str) -> bool:
        """True when the run row was just created (False: already there)."""
        if self.has_run(run_id):
            return False
        self._create_run(run_id, source, fmt)
        return True

    # -- ingest: obs record streams -------------------------------------

    def ingest_records(
        self,
        records: Sequence[Dict[str, Any]],
        run_id: Optional[str] = None,
        source: str = "",
    ) -> IngestResult:
        """Ingest a validated ``repro.obs`` record stream as one run.

        Re-ingesting a stream whose content hash (or explicit
        ``run_id``) is already present is a no-op — the dedupe the
        determinism tests assert.
        """
        errors = validate_records(records)
        if errors:
            raise StoreError(
                f"{source or 'records'}: not a valid obs export: "
                + "; ".join(errors[:5])
            )
        run_id = run_id or run_id_for_records(records)
        if self.has_run(run_id):
            return IngestResult(run_id, False, "obs", source)
        meta = records[0]
        fmt = meta.get("format", KNOWN_FORMATS[0])
        self._create_run(run_id, source, fmt)
        self._db.execute(
            "UPDATE runs SET run_json = ? WHERE run_id = ?",
            (json.dumps(meta.get("run", {}), sort_keys=True), run_id),
        )
        spans = [r for r in records if r.get("type") == "span"]
        self._insert_spans(run_id, spans)
        for record in records:
            if record.get("type") != "metric":
                continue
            value = record.get("value")
            if isinstance(value, dict):
                self._db.execute(
                    "INSERT OR REPLACE INTO metrics "
                    "(run_id, kind, name, value, value_json) "
                    "VALUES (?,?,?,?,?)",
                    (
                        run_id,
                        record["kind"],
                        record["name"],
                        None,
                        json.dumps(value, sort_keys=True),
                    ),
                )
            else:
                self._db.execute(
                    "INSERT OR REPLACE INTO metrics "
                    "(run_id, kind, name, value, value_json) "
                    "VALUES (?,?,?,?,?)",
                    (run_id, record["kind"], record["name"], value, None),
                )
        self._derive_loops_from_spans(run_id, spans)
        self._db.execute(
            "UPDATE runs SET n_spans = ? WHERE run_id = ?",
            (len(spans), run_id),
        )
        self._db.commit()
        return IngestResult(run_id, True, "obs", source)

    def _insert_spans(
        self, run_id: str, spans: Sequence[Dict[str, Any]]
    ) -> None:
        """Insert spans with derived self time, lane tid and owning loop."""
        lanes = worker_lanes(spans)
        child_dur: Dict[Any, float] = {}
        for span in spans:
            parent = span.get("parent_id")
            if parent is not None:
                child_dur[parent] = child_dur.get(parent, 0.0) + span["dur"]
        by_id = {span["span_id"]: span for span in spans}

        def owning_loop(span: Dict[str, Any]) -> Optional[str]:
            seen = set()
            node: Optional[Dict[str, Any]] = span
            while node is not None and node["span_id"] not in seen:
                seen.add(node["span_id"])
                if node.get("name") == "loop":
                    return node.get("attrs", {}).get("loop")
                parent = node.get("parent_id")
                node = by_id.get(parent) if parent is not None else None
            return None

        rows = []
        for span in spans:
            self_dur = max(
                0.0, span["dur"] - child_dur.get(span["span_id"], 0.0)
            )
            rows.append(
                (
                    run_id,
                    span["span_id"],
                    span.get("parent_id"),
                    span["name"],
                    span["start"],
                    span["dur"],
                    self_dur,
                    span.get("pid", 0),
                    span.get("tid", lanes.get(span.get("pid", 0), 0)),
                    owning_loop(span),
                    json.dumps(span.get("attrs", {}), sort_keys=True),
                )
            )
        self._db.executemany(
            "INSERT OR REPLACE INTO spans VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            rows,
        )

    def _derive_loops_from_spans(
        self, run_id: str, spans: Sequence[Dict[str, Any]]
    ) -> None:
        """Fold per-loop attribution out of the span tree.

        The ``loop`` span carries the loop's identity and outcome; its
        ``schedule`` descendant the achieved II/MII/attempt count; the
        ``schedule.attempt`` descendants the displacement and forcing
        tallies.  Retried loops keep the *last* attempt's outcome (the
        one that stuck) but accumulate attempt-level tallies across the
        whole span set, matching how the engine charges work.
        """
        by_id = {span["span_id"]: span for span in spans}

        def loop_ancestor(span: Dict[str, Any]) -> Optional[Dict[str, Any]]:
            node, seen = span, set()
            while node is not None and node["span_id"] not in seen:
                seen.add(node["span_id"])
                if node.get("name") == "loop":
                    return node
                parent = node.get("parent_id")
                node = by_id.get(parent) if parent is not None else None
            return None

        per_loop: Dict[str, Dict[str, Any]] = {}
        for span in spans:
            if span.get("name") != "loop":
                continue
            attrs = span.get("attrs", {})
            name = attrs.get("loop")
            if name is None:
                continue
            entry = per_loop.setdefault(name, {"displaced": 0, "forced": 0})
            entry["name"] = name
            entry["idx"] = attrs.get("index", entry.get("idx"))
            entry["wall"] = entry.get("wall", 0.0) + span["dur"]
            if "ok" in attrs:
                entry["ok"] = bool(attrs["ok"])
            if "ii" in attrs:
                entry["ii"] = attrs["ii"]
            if "degraded" in attrs:
                entry["degraded"] = attrs["degraded"]
            if "failed_phase" in attrs:
                entry["failure_phase"] = attrs["failed_phase"]
        for span in spans:
            owner = loop_ancestor(span)
            if owner is None:
                continue
            name = owner.get("attrs", {}).get("loop")
            entry = per_loop.get(name)
            if entry is None:
                continue
            attrs = span.get("attrs", {})
            if span.get("name") == "schedule":
                if "mii" in attrs:
                    entry["mii"] = attrs["mii"]
                if "ii" in attrs:
                    entry.setdefault("ii", attrs["ii"])
                if "attempts" in attrs:
                    entry["attempts"] = max(
                        entry.get("attempts", 0), attrs["attempts"]
                    )
            elif span.get("name") == "schedule.attempt":
                entry["displaced"] += attrs.get("displaced", 0)
                entry["forced"] += attrs.get("forced", 0)
        fallback = max(
            (e.get("idx") for e in per_loop.values()
             if isinstance(e.get("idx"), int)),
            default=-1,
        )
        for entry in per_loop.values():
            if not isinstance(entry.get("idx"), int):
                fallback += 1
                entry["idx"] = fallback
            self.upsert_loop(run_id, entry["idx"], **{
                k: v for k, v in entry.items() if k != "idx"
            })

    def upsert_loop(self, run_id: str, idx: int, **fields) -> None:
        """Merge non-None fields into the (run, idx) loop row."""
        allowed = (
            "name", "key", "cache_hit", "resumed", "ok", "wall",
            "seconds_json", "ii", "mii", "attempts", "displaced",
            "forced", "degraded", "failure_kind", "failure_phase",
        )
        self._db.execute(
            "INSERT OR IGNORE INTO loops (run_id, idx) VALUES (?, ?)",
            (run_id, idx),
        )
        for field in allowed:
            if field in fields and fields[field] is not None:
                value = fields[field]
                if isinstance(value, bool):
                    value = int(value)
                self._db.execute(
                    f"UPDATE loops SET {field} = ? WHERE run_id = ? AND idx = ?",
                    (value, run_id, idx),
                )
        self._db.execute(
            "UPDATE runs SET n_loops = "
            "(SELECT COUNT(*) FROM loops WHERE run_id = ?) WHERE run_id = ?",
            (run_id, run_id),
        )

    # -- ingest: engine timing reports ----------------------------------

    def ingest_timing_report(
        self,
        report: Dict[str, Any],
        run_id: Optional[str] = None,
        source: str = "",
    ) -> IngestResult:
        """Ingest a ``repro.engine-timing.v1`` document.

        Without an explicit ``run_id`` the report is content-addressed
        on its own; pass the run id of the matching obs export to merge
        both artifacts into one run (what ``corpus --obs-db`` does).
        """
        if report.get("format") != _TIMING_FORMAT:
            raise StoreError(
                f"{source or 'report'}: not an engine timing report "
                f"(format {report.get('format')!r})"
            )
        run_id = run_id or run_id_for_records([report])
        created = self._ensure_run(run_id, source, _TIMING_FORMAT)
        merged_run = {
            "machine": report.get("machine"),
            "jobs": report.get("jobs"),
        }
        row = self._db.execute(
            "SELECT run_json FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        existing = json.loads(row["run_json"] or "{}")
        existing.update({k: v for k, v in merged_run.items() if v is not None})
        self._db.execute(
            "UPDATE runs SET run_json = ?, wall_seconds = ?, "
            "cache_hits = ?, cache_misses = ?, resilience_json = ?, "
            "counters_json = ?, n_failures = ? WHERE run_id = ?",
            (
                json.dumps(existing, sort_keys=True),
                report.get("wall_seconds"),
                (report.get("cache") or {}).get("hits"),
                (report.get("cache") or {}).get("misses"),
                json.dumps(report.get("resilience") or {}, sort_keys=True),
                json.dumps(report.get("counters") or {}, sort_keys=True),
                len(report.get("failures") or ()),
                run_id,
            ),
        )
        for loop in report.get("loops", ()):
            seconds = loop.get("seconds") or {}
            self.upsert_loop(
                run_id,
                loop["index"],
                name=loop.get("loop"),
                key=loop.get("key"),
                cache_hit=loop.get("cache_hit"),
                resumed=loop.get("resumed"),
                wall=seconds.get("total"),
                seconds_json=json.dumps(seconds, sort_keys=True),
            )
        for failure in report.get("failures", ()):
            self.upsert_loop(
                run_id,
                failure["index"],
                name=failure.get("loop"),
                ok=False,
                failure_kind=failure.get("kind"),
                failure_phase=failure.get("phase"),
            )
        self._db.commit()
        return IngestResult(run_id, created, "timing", source)

    # -- ingest: journals -----------------------------------------------

    def ingest_journal(
        self,
        path,
        run_id: Optional[str] = None,
        source: str = "",
    ) -> IngestResult:
        """Ingest a ``repro.journal.v1`` checkpoint journal's outcomes."""
        path = Path(path)
        text = path.read_text()
        records, _ = parse_jsonl(text)
        journal = [
            r
            for r in records
            if isinstance(r, dict) and r.get("format") == _JOURNAL_FORMAT
        ]
        if not journal:
            raise StoreError(f"{path}: no repro.journal.v1 records")
        run_id = run_id or run_id_for_texts([text])
        created = self._ensure_run(run_id, source or str(path), _JOURNAL_FORMAT)
        for record in journal:
            failure = record.get("failure") or {}
            self.upsert_loop(
                run_id,
                record["index"],
                name=record.get("loop"),
                key=record.get("key"),
                ok=bool(record.get("ok")),
                failure_kind=failure.get("kind"),
                failure_phase=failure.get("phase"),
            )
        self._db.commit()
        return IngestResult(run_id, created, "journal", source or str(path))

    # -- ingest: bench trajectories -------------------------------------

    def ingest_bench_trajectory(self, path) -> int:
        """Ingest a ``BENCH_*.json`` trajectory; returns new rows added.

        Keyed by (bench, unix_time): re-ingesting an extended trajectory
        adds only the new tail, turning the one-shot JSON blob into a
        tracked time series.
        """
        path = Path(path)
        data = json.loads(path.read_text())
        runs = data.get("runs")
        if not isinstance(runs, list):
            raise StoreError(f"{path}: not a BENCH_*.json trajectory")
        added = 0
        for entry in runs:
            if not isinstance(entry, dict) or "bench" not in entry:
                continue
            cursor = self._db.execute(
                "INSERT OR IGNORE INTO bench_runs "
                "(bench, unix_time, source, payload_json) VALUES (?,?,?,?)",
                (
                    entry["bench"],
                    float(entry.get("unix_time", 0.0)),
                    str(path),
                    json.dumps(entry, sort_keys=True),
                ),
            )
            added += cursor.rowcount
        self._db.commit()
        return added

    def bench_series(self, bench: str) -> List[Dict[str, Any]]:
        """The time series of one benchmark, oldest first."""
        rows = self._db.execute(
            "SELECT payload_json FROM bench_runs WHERE bench = ? "
            "ORDER BY unix_time",
            (bench,),
        ).fetchall()
        return [json.loads(row["payload_json"]) for row in rows]

    # -- ingest: profiler samples ---------------------------------------

    def ingest_profile(
        self, run_id: str, samples: Dict[str, int]
    ) -> None:
        """Merge collapsed-stack sample counts into a run."""
        for stack, count in samples.items():
            self._db.execute(
                "INSERT INTO profile_samples (run_id, stack, count) "
                "VALUES (?,?,?) ON CONFLICT (run_id, stack) "
                "DO UPDATE SET count = count + excluded.count",
                (run_id, stack, int(count)),
            )
        self._db.commit()

    def profile_samples(self, run_id: str) -> Dict[str, int]:
        rows = self._db.execute(
            "SELECT stack, count FROM profile_samples WHERE run_id = ? "
            "ORDER BY stack",
            (run_id,),
        ).fetchall()
        return {row["stack"]: row["count"] for row in rows}

    # -- ingest: anything (file sniffing) -------------------------------

    def ingest_path(
        self, path, run_id: Optional[str] = None
    ) -> IngestResult:
        """Ingest one artifact file, sniffing its format.

        Recognizes obs JSONL exports, engine timing reports, journals
        and bench trajectories; raises :class:`StoreError` otherwise.
        """
        path = Path(path)
        text = path.read_text()
        stripped = text.lstrip()
        if stripped.startswith("{") and "\n{" not in stripped.rstrip():
            # A single JSON document: timing report or bench trajectory.
            try:
                data = json.loads(text)
            except ValueError as exc:
                raise StoreError(f"{path}: not JSON ({exc})") from None
            if isinstance(data, dict):
                if data.get("format") == _TIMING_FORMAT:
                    return self.ingest_timing_report(
                        data, run_id=run_id, source=str(path)
                    )
                if data.get("format") == _JOURNAL_FORMAT:
                    return self.ingest_journal(path, run_id=run_id)
                if isinstance(data.get("runs"), list):
                    added = self.ingest_bench_trajectory(path)
                    return IngestResult(
                        f"bench:{path.stem}", added > 0, "bench", str(path)
                    )
            raise StoreError(f"{path}: unrecognized JSON document")
        records, errors = parse_jsonl(text)
        if records and all(
            isinstance(r, dict) and r.get("format") == _JOURNAL_FORMAT
            for r in records
        ):
            return self.ingest_journal(path, run_id=run_id)
        if errors:
            raise StoreError(f"{path}: {errors[0]}")
        return self.ingest_records(records, run_id=run_id, source=str(path))

    def ingest_run_artifacts(
        self,
        snapshot: Dict[str, Any],
        run: Optional[Dict[str, Any]] = None,
        timing_report: Optional[Dict[str, Any]] = None,
        profile: Optional[Dict[str, int]] = None,
        source: str = "",
    ) -> IngestResult:
        """Record one live engine run (snapshot + report + profile).

        This is the ``corpus --obs-db`` entry point: everything the run
        produced lands under a single content-addressed run id.
        """
        records = records_from_snapshot(snapshot, run=run)
        result = self.ingest_records(records, source=source)
        if timing_report is not None:
            self.ingest_timing_report(
                timing_report, run_id=result.run_id, source=source
            )
        if profile:
            self.ingest_profile(result.run_id, profile)
        return result

    # -- queries the analyzers build on ---------------------------------

    def span_rows(self, run_id: str) -> List[sqlite3.Row]:
        return self._db.execute(
            "SELECT * FROM spans WHERE run_id = ? ORDER BY span_id",
            (run_id,),
        ).fetchall()

    def loop_rows(self, run_id: str) -> List[sqlite3.Row]:
        return self._db.execute(
            "SELECT * FROM loops WHERE run_id = ? ORDER BY idx",
            (run_id,),
        ).fetchall()

    def run_row(self, run_id: str) -> Dict[str, Any]:
        row = self._db.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no run {run_id!r}")
        record = dict(row)
        record["run"] = json.loads(record.pop("run_json") or "{}")
        record["resilience"] = json.loads(
            record.pop("resilience_json") or "null"
        )
        record["counters"] = json.loads(record.pop("counters_json") or "null")
        return record

    def metric_rows(self, run_id: str) -> List[sqlite3.Row]:
        return self._db.execute(
            "SELECT * FROM metrics WHERE run_id = ? ORDER BY kind, name",
            (run_id,),
        ).fetchall()

    def counters(self, run_id: str) -> Dict[str, float]:
        """The run's counter metrics as a plain dict."""
        return {
            row["name"]: row["value"]
            for row in self._db.execute(
                "SELECT name, value FROM metrics "
                "WHERE run_id = ? AND kind = 'counter' ORDER BY name",
                (run_id,),
            )
        }

    def phase_durations(self, run_id: str) -> Dict[str, List[float]]:
        """Per-span-name lists of (self-time) durations, name-sorted."""
        out: Dict[str, List[float]] = {}
        for row in self._db.execute(
            "SELECT name, self_dur FROM spans WHERE run_id = ? "
            "ORDER BY name, span_id",
            (run_id,),
        ):
            out.setdefault(row["name"], []).append(row["self_dur"])
        return out
