"""The ``repro obs`` command family: the observatory's front door.

::

    repro obs ingest --db obs.db run1.jsonl timings.json journal.jsonl
    repro obs runs   --db obs.db
    repro obs report --db obs.db [RUN] [--baseline FILE] [--json]
    repro obs diff   --db obs.db BASE OTHER [--json]
    repro obs top    --db obs.db [RUN] --by wall|displaced|attempts|slack
    repro obs flame  --db obs.db [RUN] -o out.folded

Runs are addressed by id prefix or ``latest`` (the default).  Every
reporting command takes ``--json`` for machine consumption next to the
rendered table default.  Exit codes follow the repo convention: ``0``
success, ``1`` a *finding* (a non-clean diff, a baseline breach), ``2``
a configuration error (bad path, unknown run, unreadable file).

The handlers live here rather than in :mod:`repro.cli` so the top-level
CLI only pays for the observatory when it is used; :func:`register`
grafts the subtree onto the main parser.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def _open_store(args, out):
    from repro.obs.store import RunStore, StoreError

    try:
        return RunStore(args.db)
    except (StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _resolve(store, ref, *, what="run"):
    from repro.obs.store import StoreError

    try:
        return store.resolve_run(ref)
    except StoreError as exc:
        print(f"error: {what}: {exc}", file=sys.stderr)
        return None


def _cmd_obs_ingest(args, out) -> int:
    from repro.obs.store import StoreError

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        status = 0
        for path in args.files:
            try:
                result = store.ingest_path(path)
            except (StoreError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                status = 2
                continue
            print(result.describe(), file=out)
    return status


def _cmd_obs_runs(args, out) -> int:
    from repro.analysis.report import render_table

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        runs = store.runs()
    if args.json:
        print(json.dumps(runs, indent=2, default=str), file=out)
        return 0
    rows = [
        [
            run["run_id"],
            run.get("format") or "",
            str(run.get("n_spans") or 0),
            str(run.get("n_loops") or 0),
            str(run.get("n_failures") or 0),
            f"{run['wall_seconds']:.2f}" if run.get("wall_seconds") else "",
            run.get("source") or "",
        ]
        for run in runs
    ]
    print(
        render_table(
            ["run", "format", "spans", "loops", "failures", "wall s",
             "source"],
            rows,
            title=f"{len(runs)} run(s) in {args.db}:",
        ),
        file=out,
    )
    return 0


def _cmd_obs_report(args, out) -> int:
    from repro.obs.analyze import check_baseline, make_baseline, phase_profile
    from repro.analysis.report import render_phase_profile

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        run_id = _resolve(store, args.run)
        if run_id is None:
            return 2
        profile = phase_profile(store, run_id)
        run = store.run_row(run_id)
        if args.make_baseline:
            baseline = make_baseline(store, run_id, headroom=args.headroom)
            Path(args.make_baseline).write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n"
            )
            print(f"baseline written to {args.make_baseline}", file=out)
        breaches: List[str] = []
        if args.baseline:
            try:
                baseline = json.loads(Path(args.baseline).read_text())
            except (OSError, ValueError) as exc:
                print(f"error: baseline unreadable: {exc}", file=sys.stderr)
                return 2
            breaches = check_baseline(store, run_id, baseline)
    if args.json:
        print(
            json.dumps(
                {
                    "run": run_id,
                    "wall_seconds": run.get("wall_seconds"),
                    "n_loops": run.get("n_loops"),
                    "n_failures": run.get("n_failures"),
                    "phases": [stat.to_dict() for stat in profile],
                    "baseline_breaches": breaches,
                },
                indent=2,
            ),
            file=out,
        )
    else:
        print(render_phase_profile(run_id, run, profile), file=out)
        for breach in breaches:
            print(f"BASELINE BREACH: {breach}", file=out)
        if args.baseline and not breaches:
            print(f"baseline {args.baseline}: within budget", file=out)
    return 1 if breaches else 0


def _cmd_obs_diff(args, out) -> int:
    from repro.obs.analyze import (
        DEFAULT_NOISE_FLOOR,
        DEFAULT_NOISE_RATIO,
        diff_runs,
    )
    from repro.analysis.report import render_run_diff

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        base_id = _resolve(store, args.base, what="base run")
        if base_id is None:
            return 2
        other_id = _resolve(store, args.other, what="other run")
        if other_id is None:
            return 2
        diff = diff_runs(
            store,
            base_id,
            other_id,
            noise_ratio=(
                args.noise_ratio
                if args.noise_ratio is not None
                else DEFAULT_NOISE_RATIO
            ),
            noise_floor=(
                args.noise_floor
                if args.noise_floor is not None
                else DEFAULT_NOISE_FLOOR
            ),
        )
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2), file=out)
    else:
        print(render_run_diff(diff), file=out)
    return 0 if diff.clean else 1


def _cmd_obs_top(args, out) -> int:
    from repro.obs.analyze import top_loops
    from repro.analysis.report import render_top_loops

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        run_id = _resolve(store, args.run)
        if run_id is None:
            return 2
        try:
            ranked = top_loops(store, run_id, by=args.by, n=args.n)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(ranked, indent=2), file=out)
    else:
        print(render_top_loops(run_id, args.by, ranked), file=out)
    return 0


def _cmd_obs_flame(args, out) -> int:
    from repro.obs.flame import flamegraph_from_store, write_flamegraph

    store = _open_store(args, out)
    if store is None:
        return 2
    with store:
        run_id = _resolve(store, args.run)
        if run_id is None:
            return 2
        try:
            lines = flamegraph_from_store(store, run_id, source=args.source)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if not lines:
        print(
            f"error: run {run_id} has no {args.source} data to fold",
            file=sys.stderr,
        )
        return 2
    if args.output:
        path = write_flamegraph(lines, args.output)
        print(
            f"flamegraph ({len(lines)} stacks) written to {path}", file=out
        )
    else:
        for line in lines:
            print(line, file=out)
    return 0


def _db_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", default="obs.db", metavar="FILE",
        help="run-store database (default: obs.db)",
    )


def _json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the rendered table",
    )


def register(commands) -> None:
    """Graft the ``obs`` subtree onto the main CLI's subparsers."""
    obs = commands.add_parser(
        "obs",
        help="the scheduling observatory: ingest, profile and diff runs",
    )
    sub = obs.add_subparsers(dest="obs_command", required=True)

    ingest = sub.add_parser(
        "ingest",
        help="ingest obs JSONL / timing reports / journals / BENCH "
             "trajectories into the run store",
    )
    _db_argument(ingest)
    ingest.add_argument("files", nargs="+", metavar="FILE")
    ingest.set_defaults(handler=_cmd_obs_ingest)

    runs = sub.add_parser("runs", help="list the runs in the store")
    _db_argument(runs)
    _json_argument(runs)
    runs.set_defaults(handler=_cmd_obs_runs)

    report = sub.add_parser(
        "report",
        help="self-time phase profile (p50/p95/p99) of one run",
    )
    _db_argument(report)
    _json_argument(report)
    report.add_argument(
        "run", nargs="?", default=None,
        help="run id, unique prefix, or 'latest' (default)",
    )
    report.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="check the profile against a repro.obs.baseline.v1 budget "
             "(breaches exit 1)",
    )
    report.add_argument(
        "--make-baseline", default=None, metavar="FILE",
        help="derive and write a baseline budget document from this run",
    )
    report.add_argument(
        "--headroom", type=float, default=3.0,
        help="budget headroom factor for --make-baseline (default 3.0)",
    )
    report.set_defaults(handler=_cmd_obs_report)

    diff = sub.add_parser(
        "diff",
        help="statistical run-to-run diff (exit 1 on regressions)",
    )
    _db_argument(diff)
    _json_argument(diff)
    diff.add_argument("base", help="baseline run id/prefix")
    diff.add_argument(
        "other", nargs="?", default=None,
        help="run to measure (default: latest)",
    )
    diff.add_argument(
        "--noise-ratio", type=float, default=None,
        help="relative noise gate on phase deltas (default 0.25)",
    )
    diff.add_argument(
        "--noise-floor", type=float, default=None,
        help="absolute noise gate in seconds (default 0.05)",
    )
    diff.set_defaults(handler=_cmd_obs_diff)

    top = sub.add_parser(
        "top", help="top-N loop attribution for one run"
    )
    _db_argument(top)
    _json_argument(top)
    top.add_argument("run", nargs="?", default=None)
    top.add_argument(
        "--by", default="wall",
        choices=("wall", "displaced", "attempts", "slack"),
        help="attribution key (default: wall clock)",
    )
    top.add_argument("-n", type=int, default=10, help="how many loops")
    top.set_defaults(handler=_cmd_obs_top)

    flame = sub.add_parser(
        "flame",
        help="export a collapsed-stack flamegraph of one run",
    )
    _db_argument(flame)
    flame.add_argument("run", nargs="?", default=None)
    flame.add_argument(
        "--source", default="spans", choices=("spans", "profile"),
        help="fold span self time (default) or sampling-profiler stacks",
    )
    flame.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the folded file here (default: stdout)",
    )
    flame.set_defaults(handler=_cmd_obs_flame)
