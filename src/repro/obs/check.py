"""Schema checker for ``repro.obs.v1`` JSONL files.

Usage::

    python -m repro.obs.check obs.jsonl [more.jsonl ...]

Exit code 0 when every file validates, 1 otherwise (errors on stderr).
The CI smoke step runs this against a traced corpus run; the test suite
calls :func:`check_paths` directly, so both gatekeepers share one
validator (:func:`repro.obs.schema.validate_jsonl`).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs.schema import validate_jsonl


def check_paths(paths: Sequence, err=None) -> int:
    """Validate each JSONL file; returns the number of invalid files."""
    err = err if err is not None else sys.stderr
    bad = 0
    for path in paths:
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=err)
            bad += 1
            continue
        errors = validate_jsonl(text)
        if errors:
            bad += 1
            for problem in errors[:20]:
                print(f"{path}: {problem}", file=err)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more errors", file=err)
        else:
            lines = sum(1 for line in text.splitlines() if line.strip())
            print(f"{path}: OK ({lines} records)", file=err)
    return bad


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.check FILE [FILE ...]",
              file=sys.stderr)
        return 2
    return 1 if check_paths(argv) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
