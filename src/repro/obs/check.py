"""Schema checker for ``repro.obs.v1``/``v2`` JSONL files.

Usage::

    python -m repro.obs.check obs.jsonl [more.jsonl ...]

Exit codes: ``0`` when every file validates and carries content, ``1``
when any file is schema-invalid (or unreadable), ``2`` when every
failure is an *empty* export — a file with no records, or a meta-only
file with no span/metric records.  An empty export used to validate as
clean, which let a mis-wired producer (tracing requested, nothing
instrumented) sail through CI; it is now a hard failure with its own
exit code so pipelines can tell "garbage" from "hollow".

The CI smoke step runs this against a traced corpus run; the test suite
calls :func:`check_paths` directly, so both gatekeepers share one
validator (:func:`repro.obs.schema.validate_jsonl`).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs.schema import (
    content_record_count,
    parse_jsonl,
    validate_records,
)


def check_paths(paths: Sequence, err=None) -> int:
    """Validate each JSONL file; returns the process exit code.

    ``0`` all files valid and non-empty, ``1`` at least one file is
    schema-invalid or unreadable, ``2`` the only failures are empty or
    meta-only exports.
    """
    err = err if err is not None else sys.stderr
    invalid = 0
    empty = 0
    for path in paths:
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=err)
            invalid += 1
            continue
        records, decode_errors = parse_jsonl(text)
        if not records and not decode_errors:
            print(f"{path}: empty export (no records at all)", file=err)
            empty += 1
            continue
        errors = decode_errors + validate_records(records)
        if errors:
            invalid += 1
            for problem in errors[:20]:
                print(f"{path}: {problem}", file=err)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more errors", file=err)
            continue
        content = content_record_count(records)
        if content == 0:
            print(
                f"{path}: meta-only export (no span or metric records)",
                file=err,
            )
            empty += 1
            continue
        print(f"{path}: OK ({len(records)} records)", file=err)
    if invalid:
        return 1
    if empty:
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.check FILE [FILE ...]",
              file=sys.stderr)
        return 2
    return check_paths(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
