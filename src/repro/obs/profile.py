"""Lightweight sampling profiler for engine workers (``--profile``).

The span layer attributes time to *phases the code declares*; the
profiler attributes it to *code that actually ran* — the complement
needed when a phase is slow and the spans can't say why.  Design
constraints, in order:

1. **Off by default, zero cost when off.**  The engine's disabled path
   must stay byte-identical in behavior to today's ``NULL_OBS``
   benchmark assertion; when no profiler is requested the worker does
   one ``None`` check and nothing else.
2. **Cheap when on.**  SIGPROF via ``signal.setitimer(ITIMER_PROF)``
   fires on consumed CPU time; the handler walks the interrupted frame
   to a ``file:function`` stack and bumps one dict counter.  The
   overhead guard in the test suite holds profiled runs within 10% of
   unprofiled wall clock.
3. **No fights with the watchdog.**  The engine's SIGALRM backstop uses
   ``ITIMER_REAL``; the profiler uses ``ITIMER_PROF`` — distinct timers,
   distinct signals, safely nested.
4. **Degrade silently.**  Off the main thread, on platforms without
   SIGPROF, or when another component owns the signal, the profiler
   falls back to a daemon sampling thread; if that fails too it becomes
   a no-op.  Profiling must never take a run down.

Samples collapse to the flamegraph's folded form (``a;b;c count``) so
:mod:`repro.obs.flame` and the run store ingest them directly; dicts
from many workers merge by plain addition.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from types import FrameType
from typing import Dict, Iterable, Optional

#: Default sampling interval: 5ms ≈ 200 samples/CPU-second — enough
#: resolution for per-phase attribution at well under 1% overhead.
DEFAULT_INTERVAL = 0.005

def _frame_stack(frame: Optional[FrameType], limit: int = 64) -> str:
    """Collapse a frame chain into ``file:func;file:func;...`` (root first)."""
    frames = []
    depth = 0
    while frame is not None and depth < limit:
        code = frame.f_code
        name = os.path.splitext(os.path.basename(code.co_filename))[0]
        frames.append(f"{name}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    return ";".join(reversed(frames))


def merge_samples(
    into: Dict[str, int], samples: Iterable[Dict[str, int]]
) -> Dict[str, int]:
    """Fold sample dicts together by addition (worker merge)."""
    for sample in samples:
        if not sample:
            continue
        for stack, count in sample.items():
            into[stack] = into.get(stack, 0) + count
    return into


class SamplingProfiler:
    """Collapsed-stack sampler; use as a context manager around the work.

    ``mode`` after ``start()`` reports what actually engaged:
    ``"sigprof"``, ``"thread"``, or ``"off"`` (silent degradation).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = float(interval)
        self.samples: Dict[str, int] = {}
        self.mode = "off"
        self._previous_handler = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- SIGPROF path ---------------------------------------------------

    def _on_sigprof(self, signum, frame) -> None:
        stack = _frame_stack(frame)
        if stack:
            self.samples[stack] = self.samples.get(stack, 0) + 1

    def _start_sigprof(self) -> bool:
        if not hasattr(signal, "SIGPROF") or not hasattr(signal, "setitimer"):
            return False
        try:
            self._previous_handler = signal.signal(
                signal.SIGPROF, self._on_sigprof
            )
            signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
            return True
        except (ValueError, OSError):
            # Not the main thread, or the platform refused the timer.
            if self._previous_handler is not None:
                try:
                    signal.signal(signal.SIGPROF, self._previous_handler)
                except (ValueError, OSError):
                    pass
                self._previous_handler = None
            return False

    def _stop_sigprof(self) -> None:
        try:
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
        except (ValueError, OSError):
            pass
        self._previous_handler = None

    # -- thread fallback ------------------------------------------------

    def _sample_thread(self, target_id: int) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(target_id)
            if frame is None:
                continue
            stack = _frame_stack(frame)
            if stack:
                self.samples[stack] = self.samples.get(stack, 0) + 1

    def _start_thread(self) -> bool:
        try:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._sample_thread,
                args=(threading.get_ident(),),
                name="repro-obs-sampler",
                daemon=True,
            )
            self._thread.start()
            return True
        except Exception:
            self._thread = None
            return False

    def _stop_thread(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=1.0)
            self._thread = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._start_sigprof():
            self.mode = "sigprof"
        elif self._start_thread():
            self.mode = "thread"
        else:
            self.mode = "off"
        return self

    def stop(self) -> Dict[str, int]:
        if self.mode == "sigprof":
            self._stop_sigprof()
        elif self.mode == "thread":
            self._stop_thread()
        self.mode = "off"
        return self.samples

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @staticmethod
    def _collapse(samples: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for stack, count in samples.items():
            frames = [
                frame
                for frame in stack.split(";")
                if not frame.startswith("profile:")
            ]
            if not frames:
                continue
            cleaned = ";".join(frames)
            out[cleaned] = out.get(cleaned, 0) + count
        return out

    def collapsed(self) -> Dict[str, int]:
        """The samples so far, profiler-internal frames stripped.

        In thread mode the sampler keeps inserting while we read; the
        dict is snapshotted first so iteration never races a resize.
        """
        return self._collapse(dict(self.samples))

    def take(self) -> Dict[str, int]:
        """Harvest and reset the samples, leaving the timer armed.

        This is how the engine carves one long-lived profiler into
        per-task sample sets: the interval timer keeps running across
        harvests, so tasks shorter than one interval still accumulate
        samples statistically over a worker's lifetime (a per-task
        profiler would re-arm the timer each task and never fire).

        The reset swaps the dict out atomically (one store under the
        GIL) before collapsing, so a concurrently sampling thread lands
        its next sample in the fresh dict instead of racing the read.
        """
        harvested, self.samples = self.samples, {}
        return self._collapse(harvested)


# ----------------------------------------------------------------------
# The per-process shared profiler the engine workers use.

_shared: Optional[SamplingProfiler] = None


def shared_profiler(interval: float = DEFAULT_INTERVAL) -> SamplingProfiler:
    """The process-wide profiler, started on first use.

    Engine workers call this once per task: the profiler (and its
    timer) survives from task to task, so sampling statistics build up
    across a worker's whole lifetime.  In pool workers it dies with the
    process; the serial path calls :func:`stop_shared` when the run
    ends.
    """
    global _shared
    if _shared is None:
        _shared = SamplingProfiler(interval=interval).start()
    return _shared


def stop_shared() -> None:
    """Disarm and drop the process-wide profiler (no-op when absent)."""
    global _shared
    if _shared is not None:
        _shared.stop()
        _shared = None
