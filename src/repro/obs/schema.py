"""The ``repro.obs.v2`` record schema, its validator, and the v1 reader.

A traced run is exported as JSON Lines: one self-describing record per
line, each carrying ``"format": "repro.obs.v2"`` and a ``"type"``:

``meta``
    Exactly one, first: ``{"format", "type", "run": {...}}`` — free-form
    run description (command, machine, jobs, ...).

``span``
    ``{"format", "type", "name", "span_id", "parent_id", "start",
    "dur", "pid", "tid", "attrs"}``.  ``parent_id`` is ``null`` for a
    root span; ``start`` is wall-clock epoch seconds (comparable across
    worker processes); ``dur`` is a monotonic-clock duration; ``tid`` is
    the span's *worker lane* — a stable small integer (0 for the
    coordinating process, 1..N for workers in sorted-pid order) that
    survives pid recycling across runs and gives trace viewers labeled,
    reproducible tracks.

``metric``
    ``{"format", "type", "kind", "name", "value"}`` with ``kind`` one
    of ``counter``/``gauge``/``histogram``; a histogram ``value`` is the
    summary dict ``{"count", "total", "min", "max"}``.

Version 1 (``repro.obs.v1``) is identical except that spans carry no
``tid``; the validator and every reader (the run store, the regression
loaders, ``python -m repro.obs.check``) accept both, so archived v1
exports stay ingestible.  A stream must not mix format markers.

:func:`validate_records` is the single source of truth for the schema —
the test suite and the CI smoke step (via :mod:`repro.obs.check`) both
call it, so a schema drift fails fast in both places.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

FORMAT_V1 = "repro.obs.v1"
FORMAT_V2 = "repro.obs.v2"
#: The format new exports are written in.
FORMAT = FORMAT_V2
#: Every format marker the readers accept (newest first).
KNOWN_FORMATS = (FORMAT_V2, FORMAT_V1)

_SPAN_FIELDS = {
    "name": str,
    "span_id": int,
    "start": (int, float),
    "dur": (int, float),
    "pid": int,
    "attrs": dict,
}
_METRIC_KINDS = ("counter", "gauge", "histogram")
_HISTOGRAM_FIELDS = ("count", "total", "min", "max")


def worker_lanes(spans: Iterable[Dict[str, Any]]) -> Dict[int, int]:
    """Stable pid -> lane numbering for a snapshot's spans.

    Lane 0 is the coordinating process — the pid of the first root span
    (``parent_id`` is null) in stream order, which is the engine's own
    process for any traced corpus run.  Worker pids get lanes 1..N in
    ascending pid order.  The numbering depends only on the *set* of
    pids and the root span, so re-exporting the same snapshot always
    yields the same lanes.
    """
    pids: List[int] = []
    root_pid: Optional[int] = None
    for span in spans:
        pid = span.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
        if root_pid is None and span.get("parent_id") is None:
            root_pid = pid
    if root_pid is None:
        root_pid = min(pids) if pids else 0
    lanes = {root_pid: 0}
    for pid in sorted(pids):
        if pid not in lanes:
            lanes[pid] = len(lanes)
    return lanes


def records_from_snapshot(
    snapshot: Dict[str, Any], run: Optional[Dict[str, Any]] = None
) -> List[Dict[str, Any]]:
    """Flatten an ``ObsContext.to_dict()`` snapshot into v2 records.

    The record list starts with the ``meta`` record, then every span (in
    the snapshot's order, each with its worker-lane ``tid``), then every
    metric (sorted by kind and name — the snapshot is already
    deterministic).
    """
    records: List[Dict[str, Any]] = [
        {"format": FORMAT, "type": "meta", "run": dict(run or {})}
    ]
    lanes = worker_lanes(snapshot.get("spans", ()))
    for span in snapshot.get("spans", ()):
        records.append(
            {
                "format": FORMAT,
                "type": "span",
                "tid": lanes.get(span.get("pid", 0), 0),
                **span,
            }
        )
    metrics = snapshot.get("metrics", {})
    for kind in _METRIC_KINDS:
        plural = kind + "s"
        for name, value in metrics.get(plural, {}).items():
            records.append(
                {
                    "format": FORMAT,
                    "type": "metric",
                    "kind": kind,
                    "name": name,
                    "value": value,
                }
            )
    return records


def validate_record(record: Any) -> List[str]:
    """Schema errors of one decoded record ([] means valid).

    Structural only — cross-record checks (parent resolution, meta
    placement, format mixing) live in :func:`validate_records`.
    """
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    errors: List[str] = []
    fmt = record.get("format")
    if fmt not in KNOWN_FORMATS:
        errors.append(
            f"format is {fmt!r}, not one of {'/'.join(KNOWN_FORMATS)}"
        )
    kind = record.get("type")
    if kind == "meta":
        if not isinstance(record.get("run"), dict):
            errors.append("meta record lacks a 'run' object")
    elif kind == "span":
        for name, expected in _SPAN_FIELDS.items():
            if not isinstance(record.get(name), expected):
                errors.append(f"span field {name!r} missing or mistyped")
        if fmt == FORMAT_V2 and not isinstance(record.get("tid"), int):
            errors.append("v2 span field 'tid' missing or mistyped")
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            errors.append("span parent_id must be an int or null")
        if isinstance(record.get("dur"), (int, float)) and record["dur"] < 0:
            errors.append("span dur is negative")
    elif kind == "metric":
        if record.get("kind") not in _METRIC_KINDS:
            errors.append(f"unknown metric kind {record.get('kind')!r}")
        if not isinstance(record.get("name"), str):
            errors.append("metric field 'name' missing or mistyped")
        value = record.get("value")
        if record.get("kind") == "histogram":
            if not isinstance(value, dict) or not all(
                field in value for field in _HISTOGRAM_FIELDS
            ):
                errors.append(
                    "histogram value must be an object with "
                    + "/".join(_HISTOGRAM_FIELDS)
                )
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append("metric value must be a number")
    else:
        errors.append(f"unknown record type {kind!r}")
    return errors


def validate_records(records: Iterable[Any]) -> List[str]:
    """Schema errors across a whole record stream ([] means valid).

    Beyond per-record structure: the stream must be non-empty, start
    with exactly one ``meta`` record, carry a single format marker
    throughout, use unique span ids, and every non-null ``parent_id``
    must name a span in the stream.
    """
    errors: List[str] = []
    span_ids = set()
    parents: List[tuple] = []
    formats = set()
    n = 0
    for index, record in enumerate(records):
        n += 1
        for problem in validate_record(record):
            errors.append(f"record {index}: {problem}")
        if not isinstance(record, dict):
            continue
        if record.get("format") in KNOWN_FORMATS:
            formats.add(record["format"])
        if (record.get("type") == "meta") != (index == 0):
            errors.append(
                f"record {index}: exactly one meta record, first, expected"
            )
        if record.get("type") == "span" and isinstance(
            record.get("span_id"), int
        ):
            if record["span_id"] in span_ids:
                errors.append(
                    f"record {index}: duplicate span_id {record['span_id']}"
                )
            span_ids.add(record["span_id"])
            if record.get("parent_id") is not None:
                parents.append((index, record["parent_id"]))
    if n == 0:
        errors.append("no records")
    if len(formats) > 1:
        errors.append(
            "mixed format markers in one stream: "
            + ", ".join(sorted(formats))
        )
    for index, parent in parents:
        if parent not in span_ids:
            errors.append(
                f"record {index}: parent_id {parent} names no span"
            )
    return errors


def content_record_count(records: Iterable[Any]) -> int:
    """How many span/metric records the stream carries.

    A schema-valid export with zero content records (a bare ``meta``
    line) is almost always a bug in the producer — nothing was traced —
    so :mod:`repro.obs.check` treats it as a distinct failure mode.
    """
    return sum(
        1
        for record in records
        if isinstance(record, dict) and record.get("type") in ("span", "metric")
    )


def parse_jsonl(text: str):
    """Decode a JSONL document into ``(records, decode_errors)``."""
    records: List[Any] = []
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    for number, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            errors.append(f"line {number + 1}: not JSON ({exc})")
    return records, errors


def validate_jsonl(text: str) -> List[str]:
    """Validate a JSONL document (undecodable lines are schema errors)."""
    records, errors = parse_jsonl(text)
    return errors + validate_records(records)
